//! Dialect lowerings: tensor → linalg (the torch-mlir / polygeist stand-in)
//! and the affine → scf finalization.
//!
//! The sdpa decomposition follows the phase structure the paper reports for
//! BERT (Fig. 5): a compute-bound `Q·Kᵀ` matmul, a run of **seven**
//! bandwidth-bound ops (row-max, broadcast, subtract, exp, row-sum,
//! broadcast, divide), and a final compute-bound `P·V` matmul. The 1/√d
//! scale is fused into the first matmul, matching common lowering practice.

use crate::linalg::{LinalgOp, LinalgProgram};
use crate::scf::{ScfOp, ScfProgram};
use crate::tensor::{TensorGraph, TensorOpKind};
use crate::types::ElemType;
use crate::AffineProgram;

/// Lowers a tensor graph to a linalg program.
///
/// Buffer shapes are derived from the op kinds; intermediate buffers are
/// declared on first use. Outputs are assumed pre-zeroed (no `linalg.fill`
/// ops are emitted for accumulator initialization).
///
/// # Panics
///
/// Panics if an op's buffer names collide with incompatible shapes.
pub fn lower_tensor_to_linalg(graph: &TensorGraph, elem: ElemType) -> LinalgProgram {
    let mut lp = LinalgProgram::new(graph.name.clone(), elem);
    for op in &graph.ops {
        match &op.kind {
            TensorOpKind::MatMul { m, n, k } => {
                let (a, b) = (&op.inputs[0], &op.inputs[1]);
                lp.buffer(a, &[*m, *k])
                    .buffer(b, &[*k, *n])
                    .buffer(&op.output, &[*m, *n]);
                lp.push(LinalgOp::matmul(
                    op.name.clone(),
                    a,
                    b,
                    &op.output,
                    *m,
                    *n,
                    *k,
                    false,
                ));
            }
            TensorOpKind::Conv2d {
                n,
                c,
                h,
                w,
                f,
                kh,
                kw,
                stride,
            } => {
                let (i, wts) = (&op.inputs[0], &op.inputs[1]);
                let oh = (h - kh) / stride + 1;
                let ow = (w - kw) / stride + 1;
                lp.buffer(i, &[*n, *c, *h, *w])
                    .buffer(wts, &[*f, *c, *kh, *kw])
                    .buffer(&op.output, &[*n, *f, oh, ow]);
                lp.push(LinalgOp::conv2d_nchw_fchw(
                    op.name.clone(),
                    i,
                    wts,
                    &op.output,
                    *n,
                    *c,
                    *h,
                    *w,
                    *f,
                    *kh,
                    *kw,
                    *stride,
                ));
            }
            TensorOpKind::Softmax { dims } => {
                let x = &op.inputs[0];
                let red: Vec<usize> = dims[..dims.len() - 1].to_vec();
                let mx = format!("{}_max", op.name);
                let bmx = format!("{}_bmax", op.name);
                let e = format!("{}_exp", op.name);
                let z = format!("{}_sum", op.name);
                let bz = format!("{}_bsum", op.name);
                lp.buffer(x, dims)
                    .buffer(&mx, &red)
                    .buffer(&bmx, dims)
                    .buffer(&e, dims)
                    .buffer(&z, &red)
                    .buffer(&bz, dims)
                    .buffer(&op.output, dims);
                lp.push(LinalgOp::reduce(format!("{}_rmax", op.name), x, &mx, dims));
                lp.push(LinalgOp::broadcast(
                    format!("{}_bcast_max", op.name),
                    &mx,
                    &bmx,
                    dims,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_sub", op.name),
                    &[x, &bmx],
                    &e,
                    dims,
                    1,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_exp", op.name),
                    &[&e],
                    &e,
                    dims,
                    1,
                ));
                lp.push(LinalgOp::reduce(format!("{}_rsum", op.name), &e, &z, dims));
                lp.push(LinalgOp::broadcast(
                    format!("{}_bcast_sum", op.name),
                    &z,
                    &bz,
                    dims,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_div", op.name),
                    &[&e, &bz],
                    &op.output,
                    dims,
                    1,
                ));
            }
            TensorOpKind::Sdpa { b, h, s, d } => {
                let bh = b * h;
                let (q, k, v) = (&op.inputs[0], &op.inputs[1], &op.inputs[2]);
                let scores = format!("{}_scores", op.name);
                let probs = format!("{}_probs", op.name);
                lp.buffer(q, &[bh, *s, *d])
                    .buffer(k, &[bh, *s, *d])
                    .buffer(v, &[bh, *s, *d])
                    .buffer(&scores, &[bh, *s, *s])
                    .buffer(&probs, &[bh, *s, *s])
                    .buffer(&op.output, &[bh, *s, *d]);
                // CB: scaled Q·Kᵀ.
                lp.push(LinalgOp::batch_matmul_bt(
                    format!("{}_qk", op.name),
                    q,
                    k,
                    &scores,
                    bh,
                    *s,
                    *s,
                    *d,
                    true,
                ));
                // BB*: softmax over rows of the score matrix (7 ops).
                let sm_dims = vec![bh, *s, *s];
                let red: Vec<usize> = vec![bh, *s];
                let mx = format!("{}_max", op.name);
                let bmx = format!("{}_bmax", op.name);
                let e = format!("{}_exp", op.name);
                let z = format!("{}_sum", op.name);
                let bz = format!("{}_bsum", op.name);
                lp.buffer(&mx, &red)
                    .buffer(&bmx, &sm_dims)
                    .buffer(&e, &sm_dims)
                    .buffer(&z, &red)
                    .buffer(&bz, &sm_dims);
                lp.push(LinalgOp::reduce(
                    format!("{}_rmax", op.name),
                    &scores,
                    &mx,
                    &sm_dims,
                ));
                lp.push(LinalgOp::broadcast(
                    format!("{}_bcast_max", op.name),
                    &mx,
                    &bmx,
                    &sm_dims,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_sub", op.name),
                    &[&scores, &bmx],
                    &e,
                    &sm_dims,
                    1,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_expf", op.name),
                    &[&e],
                    &e,
                    &sm_dims,
                    1,
                ));
                lp.push(LinalgOp::reduce(
                    format!("{}_rsum", op.name),
                    &e,
                    &z,
                    &sm_dims,
                ));
                lp.push(LinalgOp::broadcast(
                    format!("{}_bcast_sum", op.name),
                    &z,
                    &bz,
                    &sm_dims,
                ));
                lp.push(LinalgOp::elementwise(
                    format!("{}_div", op.name),
                    &[&e, &bz],
                    &probs,
                    &sm_dims,
                    1,
                ));
                // CB: P·V.
                lp.push(LinalgOp::batch_matmul(
                    format!("{}_pv", op.name),
                    &probs,
                    v,
                    &op.output,
                    bh,
                    *s,
                    *d,
                    *s,
                    false,
                ));
            }
            TensorOpKind::Add { dims } => {
                let (a, b) = (&op.inputs[0], &op.inputs[1]);
                lp.buffer(a, dims).buffer(b, dims).buffer(&op.output, dims);
                lp.push(LinalgOp::elementwise(
                    op.name.clone(),
                    &[a, b],
                    &op.output,
                    dims,
                    1,
                ));
            }
            TensorOpKind::Relu { dims } => {
                let a = &op.inputs[0];
                lp.buffer(a, dims).buffer(&op.output, dims);
                lp.push(LinalgOp::elementwise(
                    op.name.clone(),
                    &[a],
                    &op.output,
                    dims,
                    1,
                ));
            }
        }
    }
    lp
}

/// Final lowering: wraps an affine program as an scf program (kernels in
/// order, no caps yet — PolyUFC's capping pass inserts them).
pub fn lower_affine_to_scf(p: &AffineProgram) -> ScfProgram {
    ScfProgram {
        name: p.name.clone(),
        arrays: p.arrays.clone(),
        ops: p.kernels.iter().map(|k| ScfOp::Kernel(k.clone())).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorOp;
    use crate::LinalgKind;

    fn sdpa_graph() -> TensorGraph {
        let mut g = TensorGraph::new("bert_sdpa");
        g.push(TensorOp {
            name: "sdpa".into(),
            kind: TensorOpKind::Sdpa {
                b: 2,
                h: 12,
                s: 128,
                d: 64,
            },
            inputs: vec!["Q".into(), "K".into(), "V".into()],
            output: "O".into(),
        });
        g
    }

    #[test]
    fn sdpa_decomposes_cb_bb7_cb() {
        let lp = lower_tensor_to_linalg(&sdpa_graph(), ElemType::F32);
        assert_eq!(lp.ops.len(), 9, "matmul + 7 + matmul");
        assert_eq!(lp.ops[0].kind, LinalgKind::BatchMatmul);
        assert_eq!(lp.ops[8].kind, LinalgKind::BatchMatmul);
        for mid in &lp.ops[1..8] {
            assert_ne!(mid.kind, LinalgKind::BatchMatmul);
        }
    }

    #[test]
    fn sdpa_lowers_to_affine_validly() {
        let lp = lower_tensor_to_linalg(&sdpa_graph(), ElemType::F32);
        let ap = lp.lower_to_affine();
        assert!(ap.validate().is_ok());
        assert_eq!(ap.kernels.len(), 9);
        // Q·Kᵀ flop count: bh*s*s*d*3 (scaled).
        assert_eq!(
            ap.kernels[0].total_flops().unwrap(),
            24 * 128 * 128 * 64 * 3
        );
    }

    #[test]
    fn softmax_is_seven_ops() {
        let mut g = TensorGraph::new("sm");
        g.push(TensorOp {
            name: "sm".into(),
            kind: TensorOpKind::Softmax { dims: vec![8, 16] },
            inputs: vec!["X".into()],
            output: "Y".into(),
        });
        let lp = lower_tensor_to_linalg(&g, ElemType::F32);
        assert_eq!(lp.ops.len(), 7);
    }

    #[test]
    fn matmul_and_conv_lower() {
        let mut g = TensorGraph::new("mix");
        g.push(TensorOp {
            name: "lm_head".into(),
            kind: TensorOpKind::MatMul {
                m: 4,
                n: 50257,
                k: 768,
            },
            inputs: vec!["X".into(), "W".into()],
            output: "Y".into(),
        });
        g.push(TensorOp {
            name: "conv1".into(),
            kind: TensorOpKind::Conv2d {
                n: 1,
                c: 3,
                h: 224,
                w: 224,
                f: 64,
                kh: 11,
                kw: 11,
                stride: 4,
            },
            inputs: vec!["I".into(), "F".into()],
            output: "O".into(),
        });
        let lp = lower_tensor_to_linalg(&g, ElemType::F32);
        assert_eq!(lp.ops.len(), 2);
        let ap = lp.lower_to_affine();
        assert!(ap.validate().is_ok());
        let scf = lower_affine_to_scf(&ap);
        assert_eq!(scf.ops.len(), 2);
    }
}
