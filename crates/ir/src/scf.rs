//! The scf dialect: the lowered output program — affine kernels
//! interleaved with `set_uncore_cap` runtime calls, ready for "execution"
//! on the machine model.

use std::fmt;

use crate::affine::{AffineKernel, ArrayDecl};

/// One operation of an scf program.
#[derive(Debug, Clone)]
pub enum ScfOp {
    /// Runtime call `func.call @set_uncore_cap(mhz)`. Uses MHz so the
    /// paper's 0.1 GHz search granularity is exactly representable.
    SetUncoreCap {
        /// Requested uncore frequency cap in MHz.
        mhz: u32,
    },
    /// Execution of one affine kernel.
    Kernel(AffineKernel),
}

/// The lowered program: a sequence of cap calls and kernels over a shared
/// array table.
#[derive(Debug, Clone, Default)]
pub struct ScfProgram {
    /// Program name.
    pub name: String,
    /// Array symbol table (shared with the originating affine program).
    pub arrays: Vec<ArrayDecl>,
    /// Operations in execution order.
    pub ops: Vec<ScfOp>,
}

impl ScfProgram {
    /// Number of `set_uncore_cap` calls.
    pub fn cap_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, ScfOp::SetUncoreCap { .. }))
            .count()
    }

    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, ScfOp::Kernel(_)))
            .count()
    }

    /// Iterator over `(cap in effect, kernel)` pairs, tracking the most
    /// recent cap call (`None` before the first call).
    pub fn kernels_with_caps(&self) -> Vec<(Option<u32>, &AffineKernel)> {
        let mut cap = None;
        let mut out = Vec::new();
        for op in &self.ops {
            match op {
                ScfOp::SetUncoreCap { mhz } => cap = Some(*mhz),
                ScfOp::Kernel(k) => out.push((cap, k)),
            }
        }
        out
    }
}

impl fmt::Display for ScfProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// scf program `{}`", self.name)?;
        for op in &self.ops {
            match op {
                ScfOp::SetUncoreCap { mhz } => {
                    writeln!(f, "func.call @set_uncore_cap({mhz} : MHz)")?;
                }
                ScfOp::Kernel(k) => {
                    writeln!(f, "scf.execute @{} // depth {}", k.name, k.depth())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::Loop;

    fn kernel(name: &str) -> AffineKernel {
        AffineKernel {
            name: name.into(),
            loops: vec![Loop::range(4)],
            statements: vec![],
        }
    }

    #[test]
    fn caps_track_kernels() {
        let p = ScfProgram {
            name: "t".into(),
            arrays: vec![],
            ops: vec![
                ScfOp::SetUncoreCap { mhz: 1200 },
                ScfOp::Kernel(kernel("a")),
                ScfOp::Kernel(kernel("b")),
                ScfOp::SetUncoreCap { mhz: 2800 },
                ScfOp::Kernel(kernel("c")),
            ],
        };
        assert_eq!(p.cap_count(), 2);
        assert_eq!(p.kernel_count(), 3);
        let kc = p.kernels_with_caps();
        assert_eq!(kc[0].0, Some(1200));
        assert_eq!(kc[1].0, Some(1200));
        assert_eq!(kc[2].0, Some(2800));
        assert!(p.to_string().contains("set_uncore_cap(1200"));
    }
}
