//! OpenSCoP emission (Bastoul's polyhedral exchange format) for affine
//! kernels — the representation PolyUFC's flow passes between tools
//! (paper Fig. 3: "the code is converted to OpenSCoP and PET
//! representations for analyses").
//!
//! The emitter produces the textual OpenSCoP 1.0 layout: one `<statement>`
//! per kernel statement with DOMAIN, SCATTERING and READ/WRITE access
//! relations in the standard `e/i | iterators | parameters | constant`
//! matrix encoding. Problem sizes are concrete in this reproduction, so
//! the parameter column block is empty.

use std::fmt::Write as _;

use crate::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::LinExpr;

/// Renders one kernel as an OpenSCoP `<OpenScop>` document.
///
/// # Panics
///
/// Panics if the kernel references arrays outside `program`.
pub fn emit_kernel(program: &AffineProgram, kernel: &AffineKernel) -> String {
    let depth = kernel.depth();
    let mut out = String::new();
    let _ = writeln!(out, "<OpenScop>");
    let _ = writeln!(
        out,
        "# =============================================== Global"
    );
    let _ = writeln!(out, "# Language\nC\n");
    let _ = writeln!(out, "# Context");
    let _ = writeln!(out, "CONTEXT\n0 2 0 0 0 0\n");
    let _ = writeln!(out, "# Parameters are not provided\n0\n");
    let _ = writeln!(out, "# Number of statements\n{}\n", kernel.statements.len());

    for (si, s) in kernel.statements.iter().enumerate() {
        let _ = writeln!(
            out,
            "# =============================================== Statement {}",
            si + 1
        );
        let _ = writeln!(out, "# Number of relations describing the statement:");
        let n_rel = 2 + s.accesses.len();
        let _ = writeln!(out, "{n_rel}\n");

        // DOMAIN: rows = 2 per loop (lb, ub components expanded).
        let mut rows: Vec<(i64, Vec<i64>, i64)> = Vec::new(); // (e/i, iter coeffs, const)
        for (d, l) in kernel.loops.iter().enumerate() {
            for e in &l.lb.exprs {
                // i_d - e >= 0
                let mut c = vec![0i64; depth];
                c[d] = 1;
                for (v, k) in e.terms() {
                    c[v] -= k;
                }
                rows.push((1, c, -e.constant_term()));
            }
            for e in &l.ub.exprs {
                // e - i_d - 1 >= 0
                let mut c = vec![0i64; depth];
                c[d] = -1;
                for (v, k) in e.terms() {
                    c[v] += k;
                }
                rows.push((1, c, e.constant_term() - 1));
            }
        }
        let _ = writeln!(out, "DOMAIN");
        let _ = writeln!(out, "{} {} {} 0 0 0", rows.len(), depth + 2, depth);
        for (ei, coeffs, k) in &rows {
            let body: Vec<String> = coeffs.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "{ei} {} {k}", body.join(" "));
        }
        let _ = writeln!(out);

        // SCATTERING: 2d+1 dims, identity schedule with statement position.
        let sdim = 2 * depth + 1;
        let _ = writeln!(out, "SCATTERING");
        let _ = writeln!(out, "{} {} {} {} 0 0", sdim, sdim + depth + 2, sdim, depth);
        for r in 0..sdim {
            let mut row = vec![0i64; sdim + depth + 1];
            row[r] = -1; // -c_r
            if r % 2 == 1 {
                row[sdim + r / 2] = 1; // + i_{r/2}
            }
            let k = if r == sdim - 1 { si as i64 } else { 0 };
            let body: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "0 {} {k}", body.join(" "));
        }
        let _ = writeln!(out);

        // Accesses.
        for a in &s.accesses {
            let decl = program.array(a.array);
            let kind = if a.is_write { "WRITE" } else { "READ" };
            let adim = a.indices.len() + 1; // Arr id row + per-dim rows
            let _ = writeln!(out, "{kind}");
            let _ = writeln!(out, "{} {} {} {} 0 0", adim, adim + depth + 2, adim, depth);
            // First row: Arr = array id + 1.
            {
                let mut row = vec![0i64; adim + depth + 1];
                row[0] = -1;
                let body: Vec<String> = row.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "0 {} {}", body.join(" "), a.array.0 + 1);
            }
            for (j, idx) in a.indices.iter().enumerate() {
                let mut row = vec![0i64; adim + depth + 1];
                row[j + 1] = -1;
                for (v, k) in idx.terms() {
                    row[adim + v] = k;
                }
                let body: Vec<String> = row.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "0 {} {}", body.join(" "), idx.constant_term());
            }
            let _ = writeln!(out, "# accessed array: {}", decl.name);
            let _ = writeln!(out);
        }
        // Statement body metadata.
        let _ = writeln!(out, "<body>");
        let iters: Vec<String> = (0..depth).map(|d| format!("i{d}")).collect();
        let _ = writeln!(out, "# Number of original iterators\n{depth}");
        let _ = writeln!(out, "# List of original iterators\n{}", iters.join(" "));
        let _ = writeln!(
            out,
            "# Statement body expression\n{} // {} flops",
            s.name, s.flops
        );
        let _ = writeln!(out, "</body>\n");
    }
    let _ = writeln!(out, "</OpenScop>");
    out
}

/// Emits every kernel of a program, concatenated with separators.
pub fn emit_program(program: &AffineProgram) -> String {
    let mut out = String::new();
    for k in &program.kernels {
        let _ = writeln!(out, "# ---- kernel {} ----", k.name);
        out.push_str(&emit_kernel(program, k));
        out.push('\n');
    }
    out
}

/// Round-trip helper used in tests: extracts the DOMAIN row count of each
/// statement from emitted text.
pub fn domain_row_counts(scop: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut lines = scop.lines();
    while let Some(l) = lines.next() {
        if l.trim() == "DOMAIN" {
            if let Some(h) = lines.next() {
                if let Some(n) = h.split_whitespace().next().and_then(|x| x.parse().ok()) {
                    out.push(n);
                }
            }
        }
    }
    out
}

// Suppress an unused-import lint when LinExpr is only used via terms().
#[allow(unused)]
fn _type_anchor(_: &LinExpr) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::{Access, AffineKernel, Bound, Loop, Statement};
    use crate::types::ElemType;
    use polyufc_presburger::LinExpr;

    fn sample() -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("s");
        let a = p.add_array("A", vec![8, 8], ElemType::F64);
        let k = AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(8),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0), LinExpr::var(1)]),
                    Access::write(a, vec![LinExpr::var(1), LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn emits_wellformed_scop() {
        let (p, k) = sample();
        let s = emit_kernel(&p, &k);
        assert!(s.starts_with("<OpenScop>"));
        assert!(s.trim_end().ends_with("</OpenScop>"));
        assert!(s.contains("DOMAIN"));
        assert!(s.contains("SCATTERING"));
        assert!(s.contains("READ"));
        assert!(s.contains("WRITE"));
        assert!(s.contains("accessed array: A"));
    }

    #[test]
    fn domain_rows_match_bound_count() {
        let (p, k) = sample();
        let s = emit_kernel(&p, &k);
        // 2 loops × (1 lb + 1 ub) = 4 rows.
        assert_eq!(domain_row_counts(&s), vec![4]);
    }

    #[test]
    fn statement_count_scales() {
        let (mut p, mut k) = sample();
        k.statements.push(k.statements[0].clone());
        p.kernels[0] = k.clone();
        let s = emit_kernel(&p, &k);
        assert_eq!(s.matches("<body>").count(), 2);
        assert_eq!(domain_row_counts(&s).len(), 2);
    }

    #[test]
    fn program_emission_separates_kernels() {
        let (p, _) = sample();
        let s = emit_program(&p);
        assert!(s.contains("# ---- kernel tri ----"));
    }
}
