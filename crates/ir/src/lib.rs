//! A small multi-dialect intermediate representation modeled on the MLIR
//! dialects that PolyUFC operates on.
//!
//! The paper's flow lowers PyTorch / C programs through MLIR's `torch`,
//! `linalg`, and `affine` dialects, analyzes the affine form with polyhedral
//! tools, and emits `scf`-level code with uncore-frequency-cap runtime
//! calls. This crate reproduces that structure:
//!
//! * [`tensor`] — the torch stand-in: a graph of high-level tensor ops
//!   (`matmul`, `conv2d`, `softmax`, `sdpa`, ...).
//! * [`linalg`] — structured operations with explicit iteration spaces;
//!   one tensor op lowers to one *or several* linalg ops (e.g. `sdpa`
//!   decomposes into a CB matmul, seven bandwidth-bound elementwise /
//!   reduction ops, and a final CB matmul — Fig. 5).
//! * [`affine`] — loop nests with affine bounds and affine array accesses;
//!   the dialect on which PolyUFC-CM and the OI analysis run.
//! * [`scf`] — the lowered output program: kernels interleaved with
//!   `set_uncore_cap` runtime calls.
//!
//! The [`interp`] module walks affine kernels at their concrete problem
//! sizes and streams memory-access/flop events; it drives both the exact
//! cache simulator and the machine simulator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affine;
pub mod interp;
pub mod linalg;
pub mod lower;
pub mod openscop;
pub mod scf;
pub mod tensor;
pub mod textual;
pub mod types;

pub use affine::{Access, AffineKernel, AffineProgram, ArrayDecl, Bound, Loop, Statement};
pub use interp::{AccessEvent, TraceSink};
pub use linalg::{LinalgKind, LinalgOp, LinalgProgram};
pub use scf::{ScfOp, ScfProgram};
pub use tensor::{TensorGraph, TensorOp, TensorOpKind};
pub use types::{ArrayId, ElemType};
