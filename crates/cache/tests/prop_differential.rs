//! Differential property tests for the coalesced trace simulator: on
//! random affine kernels — strides of 0, negative coefficients, several
//! statements, low associativities, multi-level hierarchies with
//! non-power-of-two set counts — the run-length/line-coalesced path must
//! produce *exactly* the same [`SimStats`] as the per-event path, counter
//! for counter. A second property pins the stamp-LRU + fastmod core
//! against the frozen pre-optimization simulator on single-level
//! hierarchies (where the historical write-back bug cannot manifest).

use proptest::prelude::*;

use polyufc_cache::{CacheHierarchy, CacheLevelConfig, CacheSim, RefSim, SimStats};
use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
use polyufc_ir::interp::interpret_program;
use polyufc_ir::types::ElemType;
use polyufc_presburger::LinExpr;

const ARRAY_ELEMS: usize = 4096;

/// Builds an in-bounds index expression from per-iterator coefficients:
/// the constant is shifted so the minimum offset over the (rectangular)
/// domain is zero.
fn in_bounds_expr(coeffs: &[i64], extents: &[i64]) -> LinExpr {
    let mut e = LinExpr::constant(0);
    let mut min = 0i64;
    for (v, (&c, &ext)) in coeffs.iter().zip(extents).enumerate() {
        if c != 0 {
            e = e + LinExpr::var(v) * c;
        }
        min += (c * (ext - 1)).min(0);
    }
    e + LinExpr::constant(-min)
}

/// One access: per-iterator index coefficients and whether it writes.
type AccessSpec = (Vec<i64>, bool);

#[derive(Debug, Clone)]
struct KernelSpec {
    extents: Vec<i64>,
    /// Per statement: flops and its accesses.
    stmts: Vec<(u64, Vec<AccessSpec>)>,
}

const MAX_DEPTH: usize = 3;

fn kernel_spec() -> impl Strategy<Value = KernelSpec> {
    // The vendored proptest has no `prop_flat_map`: draw everything at the
    // maximum depth and truncate to the drawn depth in `prop_map`.
    let coeff = prop_oneof![
        Just(0i64),
        Just(1),
        Just(-1),
        Just(2),
        Just(-2),
        Just(3),
        Just(9),
        Just(-9),
    ];
    let accesses = proptest::collection::vec(
        (proptest::collection::vec(coeff, MAX_DEPTH), any::<bool>()),
        1..5,
    );
    let stmts = proptest::collection::vec((0u64..4, accesses), 1..3);
    (
        2usize..=MAX_DEPTH,
        proptest::collection::vec(1i64..10, MAX_DEPTH),
        stmts,
    )
        .prop_map(|(depth, mut extents, mut stmts)| {
            extents.truncate(depth);
            for (_, accesses) in &mut stmts {
                for (coeffs, _) in accesses {
                    coeffs.truncate(depth);
                }
            }
            KernelSpec { extents, stmts }
        })
}

fn build_program(spec: &KernelSpec) -> AffineProgram {
    let mut p = AffineProgram::new("diff");
    let a = p.add_array("A", vec![ARRAY_ELEMS], ElemType::F64);
    let b = p.add_array("B", vec![ARRAY_ELEMS], ElemType::F32);
    let statements = spec
        .stmts
        .iter()
        .enumerate()
        .map(|(si, (flops, accesses))| Statement {
            name: format!("S{si}"),
            accesses: accesses
                .iter()
                .enumerate()
                .map(|(ai, (coeffs, is_write))| {
                    let arr = if (si + ai) % 2 == 0 { a } else { b };
                    let idx = in_bounds_expr(coeffs, &spec.extents);
                    if *is_write {
                        Access::write(arr, vec![idx])
                    } else {
                        Access::read(arr, vec![idx])
                    }
                })
                .collect(),
            flops: *flops,
        })
        .collect();
    p.kernels.push(AffineKernel {
        name: "k".into(),
        loops: spec.extents.iter().map(|&e| Loop::range(e)).collect(),
        statements,
    });
    p
}

/// Hierarchies chosen to exercise every simulator regime: direct-mapped
/// (fast-hit fallback since group size > assoc), non-power-of-two set
/// counts (fastmod), and three levels (write-back cascades).
fn hierarchies() -> Vec<CacheHierarchy> {
    let lvl = |lines: u64, assoc: u32, shared| CacheLevelConfig {
        size_bytes: lines * 64,
        line_bytes: 64,
        assoc,
        shared,
    };
    vec![
        CacheHierarchy::new(vec![lvl(4, 1, false)]),
        CacheHierarchy::new(vec![lvl(6, 2, false)]), // 3 sets: fastmod
        CacheHierarchy::new(vec![lvl(2, 2, false), lvl(12, 2, true)]), // 6 sets
        CacheHierarchy::new(vec![lvl(2, 1, false), lvl(8, 2, false), lvl(24, 4, true)]),
        // High associativity, tiny set counts: every group runs the
        // fast-hit regime with constant set collisions, stressing the
        // deferred-stamp materialization.
        CacheHierarchy::new(vec![lvl(8, 8, false), lvl(32, 8, true)]), // 1 set L1
        CacheHierarchy::new(vec![lvl(16, 8, false)]),                  // 2 sets
    ]
}

fn run_stats(h: &CacheHierarchy, p: &AffineProgram, per_event: bool) -> SimStats {
    let mut sim = CacheSim::new(h, p);
    sim.use_per_event_path(per_event);
    interpret_program(p, &mut sim);
    sim.stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coalesced_equals_per_event(spec in kernel_spec()) {
        let p = build_program(&spec);
        for h in hierarchies() {
            let fast = run_stats(&h, &p, false);
            let slow = run_stats(&h, &p, true);
            prop_assert_eq!(&fast, &slow, "hierarchy {:?} spec {:?}", h.levels, &spec);
        }
    }

    #[test]
    fn stamp_lru_matches_frozen_reference_single_level(spec in kernel_spec()) {
        // On a single level the frozen simulator's write-back handling is
        // sound, so all counters must agree — this pins the stamp-LRU
        // replacement and the fastmod set indexing against the original
        // MRU-ordering + `%` implementation.
        let p = build_program(&spec);
        let lvl = |lines: u64, assoc: u32| CacheHierarchy::new(vec![CacheLevelConfig {
            size_bytes: lines * 64,
            line_bytes: 64,
            assoc,
            shared: false,
        }]);
        for h in [lvl(4, 1), lvl(6, 2), lvl(12, 4), lvl(40, 8)] {
            let mut sim = CacheSim::new(&h, &p);
            interpret_program(&p, &mut sim);
            let mut reference = RefSim::new(&h, &p);
            interpret_program(&p, &mut reference);
            prop_assert_eq!(&sim.stats, &reference.stats, "hierarchy {:?}", h.levels);
        }
    }
}
