//! Property tests: the optimized cache simulator must agree exactly with
//! a naive reference LRU implementation on random traces, and basic
//! conservation laws must hold.

use proptest::prelude::*;

use polyufc_cache::{CacheHierarchy, CacheLevelConfig, CacheSim};
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{AccessEvent, TraceSink};
use polyufc_ir::types::{ArrayId, ElemType};

/// A naive, obviously-correct single-level LRU set-associative cache.
struct RefCache {
    n_sets: u64,
    assoc: usize,
    sets: Vec<Vec<u64>>, // MRU first
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(n_sets: u64, assoc: usize) -> Self {
        RefCache {
            n_sets,
            assoc,
            sets: vec![Vec::new(); n_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    fn access(&mut self, line: u64) {
        let s = (line % self.n_sets) as usize;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.hits += 1;
        } else {
            self.misses += 1;
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, line);
        }
    }
}

fn one_level(n_sets: u64, assoc: u32) -> CacheHierarchy {
    CacheHierarchy::new(vec![CacheLevelConfig {
        size_bytes: n_sets * assoc as u64 * 64,
        line_bytes: 64,
        assoc,
        shared: false,
    }])
}

fn program(elems: usize) -> AffineProgram {
    let mut p = AffineProgram::new("prop");
    p.add_array("A", vec![elems], ElemType::F64);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_matches_reference_lru(
        trace in proptest::collection::vec((0u64..512, any::<bool>()), 1..400),
        n_sets in prop_oneof![Just(1u64), Just(2), Just(4), Just(8)],
        assoc in 1u32..5,
    ) {
        let p = program(512);
        let mut sim = CacheSim::new(&one_level(n_sets, assoc), &p);
        let mut reference = RefCache::new(n_sets, assoc as usize);
        for &(offset, write) in &trace {
            sim.access(AccessEvent { array: ArrayId(0), offset, bytes: 8, is_write: write });
            reference.access(offset * 8 / 64);
        }
        prop_assert_eq!(sim.stats.hits[0], reference.hits);
        prop_assert_eq!(sim.stats.misses[0], reference.misses);
    }

    #[test]
    fn conservation_laws(
        trace in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        let p = program(4096);
        let h = CacheHierarchy::new(vec![
            CacheLevelConfig { size_bytes: 8 * 64, line_bytes: 64, assoc: 2, shared: false },
            CacheLevelConfig { size_bytes: 64 * 64, line_bytes: 64, assoc: 8, shared: true },
        ]);
        let mut sim = CacheSim::new(&h, &p);
        for &(offset, write) in &trace {
            sim.access(AccessEvent { array: ArrayId(0), offset, bytes: 8, is_write: write });
        }
        let st = &sim.stats;
        // Every access either hits or misses L1.
        prop_assert_eq!(st.hits[0] + st.misses[0], st.accesses);
        // L2 sees exactly the L1 misses.
        prop_assert_eq!(st.hits[1] + st.misses[1], st.misses[0]);
        // DRAM fills = L2 misses; write-backs never exceed fills.
        prop_assert_eq!(st.dram_line_fills, st.misses[1]);
        prop_assert!(st.dram_writebacks <= st.dram_line_fills);
        // Misses are at least the distinct lines touched... at L2 they are
        // at least the compulsory count.
        let distinct: std::collections::BTreeSet<u64> =
            trace.iter().map(|&(o, _)| o * 8 / 64).collect();
        prop_assert!(st.misses[1] as usize >= distinct.len());
    }

    #[test]
    fn capacity_monotone_in_size(
        trace in proptest::collection::vec(0u64..2048, 50..250),
    ) {
        // A bigger fully-indexed cache never misses more (same assoc &
        // sets scale, LRU inclusion property per set).
        let p = program(2048);
        let mut small = CacheSim::new(&one_level(4, 4), &p);
        let mut big = CacheSim::new(&one_level(4, 16), &p);
        for &o in &trace {
            let ev = AccessEvent { array: ArrayId(0), offset: o, bytes: 8, is_write: false };
            small.access(ev);
            big.access(ev);
        }
        prop_assert!(big.stats.misses[0] <= small.stats.misses[0]);
    }
}
