//! Regression contrast for the lost-write-back bug.
//!
//! The pre-coalescing simulator (frozen as [`RefSim`]) silently dropped a
//! dirty L1 victim whose next-level copy had already been displaced: the
//! write-back was neither absorbed by L2 nor counted toward DRAM. The
//! production [`CacheSim`] re-installs such victims into the next level
//! (allocate-on-write-back), so the dirty data eventually reaches DRAM.
//!
//! This test drives *both* simulators through the identical hand-traced
//! event sequence and asserts the divergence: the frozen reference loses
//! the write-back (0 reaches DRAM), the fixed simulator retains it
//! (exactly 1 reaches DRAM). Running the old logic against this sequence
//! therefore fails the production-side assertion.

use polyufc_cache::{CacheHierarchy, CacheLevelConfig, CacheSim, RefSim};
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{AccessEvent, TraceSink};
use polyufc_ir::types::{ArrayId, ElemType};

fn hierarchy() -> CacheHierarchy {
    // L1: 1 set x 2 ways. L2: 2 sets x 2 ways (4 lines).
    CacheHierarchy::new(vec![
        CacheLevelConfig {
            size_bytes: 2 * 64,
            line_bytes: 64,
            assoc: 2,
            shared: false,
        },
        CacheLevelConfig {
            size_bytes: 4 * 64,
            line_bytes: 64,
            assoc: 2,
            shared: true,
        },
    ])
}

fn program() -> AffineProgram {
    let mut p = AffineProgram::new("wb");
    p.add_array("A", vec![2048], ElemType::F64);
    p
}

fn ev(offset: u64, is_write: bool) -> AccessEvent {
    AccessEvent {
        array: ArrayId(0),
        offset,
        bytes: 8,
        is_write,
    }
}

/// The hand-traced sequence (element offsets, 8-byte elements, 64-byte
/// lines — line = offset / 8):
///
/// 1. write line 0  -> dirty in L1, clean copy in L2 set 0
/// 2. read lines 2, 4 (L2 set 0), keeping line 0 MRU in L1 in between
///    -> L2 set 0 now holds {2, 4}; line 0 exists *only* in L1, dirty
/// 3. read lines 6, 8 -> line 0 evicted dirty from L1, absent from L2
/// 4. flush sweep over 2048 elements -> every cached line is displaced,
///    so the dirty line-0 data must reach DRAM iff the simulator kept it.
fn drive<S: TraceSink>(sink: &mut S) {
    sink.access(ev(0, true));
    sink.access(ev(16, false));
    sink.access(ev(0, false));
    sink.access(ev(32, false));
    sink.access(ev(0, false));
    sink.access(ev(48, false));
    sink.access(ev(64, false));
    for o in (0..2048).step_by(8) {
        sink.access(ev(o, false));
    }
}

#[test]
fn fixed_simulator_retains_the_writeback_the_frozen_one_loses() {
    let h = hierarchy();
    let p = program();

    let mut fixed = CacheSim::new(&h, &p);
    drive(&mut fixed);
    assert_eq!(
        fixed.stats.dram_writebacks, 1,
        "allocate-on-write-back must carry the dirty victim to DRAM exactly once"
    );

    let mut frozen = RefSim::new(&h, &p);
    drive(&mut frozen);
    assert_eq!(
        frozen.stats.dram_writebacks, 0,
        "the frozen reference must exhibit the historical lost-write-back bug"
    );

    // Same trace, same hierarchy. Beyond the write-back itself, the fix
    // also changes residency: re-installing the dirty victim in L2 lets
    // the flush sweep's revisit of line 0 hit L2 instead of refetching
    // from DRAM — one fewer DRAM fill than the frozen reference.
    assert_eq!(fixed.stats.accesses, frozen.stats.accesses);
    assert_eq!(
        fixed.stats.dram_line_fills + 1,
        frozen.stats.dram_line_fills
    );
}
