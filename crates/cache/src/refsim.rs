//! The *frozen* pre-coalescing reference simulator.
//!
//! This is the simulator exactly as it stood before the run-length/
//! line-coalesced rewrite of [`crate::sim`]: per-event probing, MRU-first
//! sets reordered with `copy_within`, hardware `%` set indexing — and the
//! historical write-back bug, preserved on purpose: a dirty victim
//! evicted from a private level whose next-level copy was already
//! displaced is silently dropped.
//!
//! It exists for two jobs and must not be "improved":
//!
//! * `sim_microbench` measures the production simulator's throughput
//!   against it (the pre-optimization baseline of the perf trajectory);
//! * the write-back regression test demonstrates the lost-write-back bug
//!   on it, proving the test would fail on the old logic.
//!
//! It consumes traces through the default per-event [`TraceSink::run`]
//! expansion, so it sees the exact event stream the old interpreter
//! produced.

use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{AccessEvent, TraceSink};

use crate::config::CacheHierarchy;
use crate::sim::SimStats;

struct Level {
    n_sets: u64,
    assoc: usize,
    /// Flat `n_sets × assoc` entries, MRU first within each set;
    /// `(tag, dirty)` with `EMPTY` marking unused ways.
    entries: Vec<(u64, bool)>,
}

const EMPTY: u64 = u64::MAX;

impl Level {
    fn new(n_sets: u64, assoc: usize) -> Self {
        Level {
            n_sets,
            assoc,
            entries: vec![(EMPTY, false); n_sets as usize * assoc],
        }
    }

    /// Returns `true` on hit; updates LRU order and dirtiness.
    #[inline]
    fn access(&mut self, line: u64, write: bool) -> bool {
        let s = (line % self.n_sets) as usize * self.assoc;
        let set = &mut self.entries[s..s + self.assoc];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            let (_, d) = set[pos];
            set.copy_within(0..pos, 1);
            set[0] = (line, d || write);
            true
        } else {
            false
        }
    }

    /// Inserts a line (after a miss); returns the evicted `(line, dirty)`
    /// if a valid way was displaced.
    #[inline]
    fn insert(&mut self, line: u64, write: bool) -> Option<(u64, bool)> {
        let s = (line % self.n_sets) as usize * self.assoc;
        let set = &mut self.entries[s..s + self.assoc];
        let victim = set[self.assoc - 1];
        set.copy_within(0..self.assoc - 1, 1);
        set[0] = (line, write);
        (victim.0 != EMPTY).then_some(victim)
    }
}

/// The frozen pre-optimization simulator (see the module docs). Fed
/// per-event through the default [`TraceSink::run`] expansion.
pub struct RefSim {
    levels: Vec<Level>,
    line_bytes: u64,
    base_addrs: Vec<u64>,
    /// Statistics accumulated so far.
    pub stats: SimStats,
}

impl std::fmt::Debug for RefSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefSim")
            .field("levels", &self.levels.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RefSim {
    /// Builds the reference simulator with the same array layout rules as
    /// [`crate::CacheSim`].
    pub fn new(hierarchy: &CacheHierarchy, program: &AffineProgram) -> Self {
        let line = hierarchy.line_bytes();
        let mut base_addrs = Vec::with_capacity(program.arrays.len());
        let mut next = 0u64;
        for a in &program.arrays {
            base_addrs.push(next);
            let sz = a.size_bytes() as u64;
            next += sz.div_ceil(line) * line;
        }
        let levels = hierarchy
            .levels
            .iter()
            .map(|l| Level::new(l.n_sets(), l.assoc as usize))
            .collect::<Vec<_>>();
        let n = levels.len();
        RefSim {
            levels,
            line_bytes: line,
            base_addrs,
            stats: SimStats {
                hits: vec![0; n],
                misses: vec![0; n],
                ..SimStats::default()
            },
        }
    }

    fn touch(&mut self, line: u64, write: bool) {
        let n = self.levels.len();
        for i in 0..n {
            if self.levels[i].access(line, write && i == 0) {
                self.stats.hits[i] += 1;
                // Fill the line into the faster levels it missed in.
                for j in (0..i).rev() {
                    if let Some((ev, d)) = self.levels[j].insert(line, write && j == 0) {
                        // A dirty eviction from a private level is absorbed
                        // by the next level (write-back). NOTE (frozen
                        // bug): if the next level no longer holds the
                        // line, the write-back is silently lost.
                        if d && j + 1 < n {
                            self.levels[j + 1].access(ev, true);
                        }
                    }
                }
                return;
            }
            self.stats.misses[i] += 1;
        }
        // Missed everywhere: fetch from DRAM, fill all levels.
        self.stats.dram_line_fills += 1;
        for j in (0..n).rev() {
            if let Some((ev, d)) = self.levels[j].insert(line, write && j == 0) {
                if d {
                    if j + 1 < n {
                        self.levels[j + 1].access(ev, true);
                    } else {
                        self.stats.dram_writebacks += 1;
                    }
                }
            }
        }
    }
}

impl TraceSink for RefSim {
    fn access(&mut self, ev: AccessEvent) {
        let addr = self.base_addrs[ev.array.0] + ev.offset * ev.bytes as u64;
        let line = addr / self.line_bytes;
        self.stats.accesses += 1;
        self.stats.bytes_requested += ev.bytes as u64;
        self.touch(line, ev.is_write);
    }

    fn flops(&mut self, n: u64) {
        self.stats.flops += n;
    }
}
