//! PolyUFC-CM: the scalable static cache model.
//!
//! For every reference of an affine kernel the model computes, per loop
//! level ℓ, the number of **distinct cache lines** the reference touches
//! inside one execution of the loop body at ℓ (the *footprint*). The
//! outermost level whose combined footprint fits the cache determines
//! where reuse is realized:
//!
//! * **fully-associative mode** — a footprint fits iff its total line
//!   count is at most the level's capacity in lines;
//! * **set-associative mode** (the paper's contribution) — lines are
//!   spread over the cache sets they map to (contiguous footprints cover
//!   `min(lines, n_sets)` sets; strided footprints only
//!   `n_sets / gcd(stride, n_sets)`), and the footprint fits iff each
//!   set's share is at most the associativity. This is what exposes the
//!   conflict misses of power-of-two leading dimensions (Fig. 8).
//!
//! Misses of a reference are then `|outer iterations the data depends
//! on| × |body footprint|`, with spatial reuse across the immediately
//! enclosing loop collapsed at line granularity, and are never less than
//! the compulsory (distinct-line) count. Dependence of data on outer
//! loops includes *bound* dependence (tile loops), so Pluto-tiled kernels
//! are modeled faithfully.
//!
//! Counting uses the Presburger layer on the (concrete-size) iteration
//! domains; nested-consistent representative iterators stand in for fixed
//! outer dimensions, mirroring the paper's duplicate-elimination
//! approximation that trades exactness for compile time (Sec. VIII).
//!
//! Set `POLYUFC_CM_DEBUG=1` to trace per-reference fit levels, footprints
//! and miss estimates to stderr.

use std::collections::BTreeMap;
use std::fmt;

use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::{BasicSet, CountCache, LinExpr, Set, Space};

use crate::config::{AssocMode, CacheHierarchy};

/// Error type of the static model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The Presburger layer failed (budget, unbounded, ...).
    Presburger(String),
    /// The kernel is malformed for analysis.
    Malformed(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Presburger(e) => write!(f, "presburger failure: {e}"),
            ModelError::Malformed(e) => write!(f, "malformed kernel: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<polyufc_presburger::Error> for ModelError {
    fn from(e: polyufc_presburger::Error) -> Self {
        ModelError::Presburger(e.to_string())
    }
}

/// Per-cache-level results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelStats {
    /// Accesses reaching this level.
    pub accesses: f64,
    /// Hits at this level.
    pub hits: f64,
    /// Misses at this level (cold + capacity/conflict).
    pub misses: f64,
    /// The loop level at which the footprint first fits this cache
    /// (0 = whole kernel fits; depth = nothing fits).
    pub fit_level: usize,
}

impl LevelStats {
    /// Hit ratio `ρ^h` at this level.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses <= 0.0 {
            0.0
        } else {
            self.hits / self.accesses
        }
    }

    /// Miss ratio `ρ^m` at this level.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses <= 0.0 {
            0.0
        } else {
            self.misses / self.accesses
        }
    }
}

/// The full result of analyzing one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCacheStats {
    /// One entry per cache level (L1 first).
    pub levels: Vec<LevelStats>,
    /// Compulsory misses (distinct lines over all arrays).
    pub cold_lines: f64,
    /// Bytes moved between LLC and DRAM: `Miss_LLC · ℓ` (paper Sec. IV-C).
    pub q_dram_bytes: f64,
    /// Total flops `Ω`.
    pub flops: f64,
    /// Total accesses issued by the kernel.
    pub total_accesses: f64,
}

impl KernelCacheStats {
    /// Operational intensity `I = Ω / Q_DRAM` in flops per byte (Eqn. 1).
    pub fn operational_intensity(&self) -> f64 {
        if self.q_dram_bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.q_dram_bytes
        }
    }

    /// Applies the paper's loop-parallel sharing heuristic: sequential
    /// miss counts divided by the number of threads (Sec. IV-B). Returns a
    /// scaled copy.
    pub fn with_thread_sharing(&self, threads: u32) -> KernelCacheStats {
        let t = threads.max(1) as f64;
        let mut out = self.clone();
        for l in &mut out.levels {
            l.misses /= t;
            l.hits = (l.accesses - l.misses).max(0.0);
        }
        out.cold_lines /= t;
        out.q_dram_bytes /= t;
        out
    }
}

/// One deduplicated reference (array + affine element offset).
#[derive(Debug, Clone)]
struct Ref {
    /// Element-offset coefficients per iterator.
    coeffs: Vec<i64>,
    /// Element size in bytes.
    elem_bytes: i64,
    /// Array index (for cold-miss grouping).
    array: usize,
    /// How many statement accesses map to this reference (multiplicity for
    /// access counting; footprint/misses are counted once).
    multiplicity: u64,
    /// Size of the underlying array in bytes — a hard cap on any footprint
    /// estimate (dense-width approximations on skewed/triangular accesses
    /// can otherwise overshoot).
    array_bytes: f64,
    /// Iterators the data depends on: nonzero coefficient, or transitively
    /// via loop bounds of a dependent iterator.
    relevant: Vec<usize>,
}

/// The static cache model.
///
/// ```
/// use polyufc_cache::{AssocMode, CacheHierarchy, CacheLevelConfig, CacheModel};
/// use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
/// use polyufc_ir::types::ElemType;
/// use polyufc_presburger::LinExpr;
///
/// let mut p = AffineProgram::new("sum");
/// let a = p.add_array("A", vec![4096], ElemType::F64);
/// p.kernels.push(AffineKernel {
///     name: "sum".into(),
///     loops: vec![Loop::range(4096)],
///     statements: vec![Statement {
///         name: "S".into(),
///         accesses: vec![Access::read(a, vec![LinExpr::var(0)])],
///         flops: 1,
///     }],
/// });
/// let h = CacheHierarchy::new(vec![CacheLevelConfig {
///     size_bytes: 32 << 10, line_bytes: 64, assoc: 8, shared: false,
/// }]);
/// let model = CacheModel::new(h, AssocMode::SetAssociative);
/// let stats = model.analyze_kernel(&p, &p.kernels[0])?;
/// // A streaming read misses once per line: 4096 · 8 / 64 = 512.
/// assert_eq!(stats.levels[0].misses, 512.0);
/// assert_eq!(stats.q_dram_bytes, 512.0 * 64.0);
/// # Ok::<(), polyufc_cache::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// The hierarchy to model.
    pub hierarchy: CacheHierarchy,
    /// Associativity treatment.
    pub mode: AssocMode,
}

impl CacheModel {
    /// Creates a model.
    pub fn new(hierarchy: CacheHierarchy, mode: AssocMode) -> Self {
        CacheModel { hierarchy, mode }
    }

    /// Analyzes one kernel of a program.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the kernel is malformed or a Presburger
    /// query fails.
    pub fn analyze_kernel(
        &self,
        program: &AffineProgram,
        kernel: &AffineKernel,
    ) -> Result<KernelCacheStats, ModelError> {
        self.analyze_kernel_cached(program, kernel, &mut CountCache::new())
    }

    /// [`CacheModel::analyze_kernel`] with an explicit Presburger counting
    /// cache.
    ///
    /// The per-level/per-reference analysis below issues the same counting
    /// query many times (`count_prefix_trips`/`count_outer` across
    /// references and cache levels); memoizing on the canonical constraint
    /// system answers the repeats directly. The caller may share one cache
    /// across kernels of a program — iteration domains recur between
    /// kernels of the same nest — and read hit/miss totals afterwards.
    ///
    /// # Errors
    ///
    /// Same contract as [`CacheModel::analyze_kernel`].
    pub fn analyze_kernel_cached(
        &self,
        program: &AffineProgram,
        kernel: &AffineKernel,
        count_cache: &mut CountCache,
    ) -> Result<KernelCacheStats, ModelError> {
        let depth = kernel.depth();
        if depth == 0 {
            return Err(ModelError::Malformed(format!(
                "kernel `{}` has no loops",
                kernel.name
            )));
        }
        let domain = kernel.domain();
        let dom_basic = domain
            .basics()
            .first()
            .ok_or_else(|| ModelError::Malformed("empty iteration domain".into()))?
            .clone();
        let iv = dom_basic
            .var_intervals()?
            .ok_or_else(|| ModelError::Malformed("empty iteration domain".into()))?;
        let mut bounds = Vec::with_capacity(depth);
        for v in iv.iter().take(depth) {
            match v {
                (Some(lo), Some(hi)) => bounds.push((*lo, *hi)),
                _ => return Err(ModelError::Malformed("unbounded iteration domain".into())),
            }
        }
        // Nested-consistent representative iterators: each midpoint is
        // computed with the *outer representatives already fixed*, so
        // triangular ranges keep their expected extents (the global
        // interval midpoints would make e.g. `k in [n-1-i', j)` collapse
        // to an empty range at the global mids).
        let mut mids: Vec<i64> = vec![0; depth];
        for d in 0..depth {
            let l = &kernel.loops[d];
            let lo =
                l.lb.exprs
                    .iter()
                    .map(|e| eval_with(e, &mids))
                    .max()
                    .unwrap_or(bounds[d].0);
            let hi =
                l.ub.exprs
                    .iter()
                    .map(|e| eval_with(e, &mids))
                    .min()
                    .unwrap_or(bounds[d].1 + 1)
                    - 1;
            mids[d] = if hi >= lo {
                (lo + hi) / 2
            } else {
                lo.min(bounds[d].1)
            };
        }

        let refs = collect_refs(program, kernel, depth)?;
        let domain_size = domain.count_cached(count_cache)? as f64;
        let per_point_accesses: f64 = kernel
            .statements
            .iter()
            .map(|s| s.accesses.len() as f64)
            .sum();
        let total_accesses = domain_size * per_point_accesses;
        // Same formula as `AffineKernel::total_flops`, reusing the domain
        // count from above instead of re-issuing the query.
        let per_point_flops: f64 = kernel.statements.iter().map(|s| s.flops as f64).sum();
        let flops = domain_size * per_point_flops;

        // Compulsory misses: distinct lines per array (capped at the
        // array's own line count).
        let line = self.hierarchy.line_bytes() as f64;
        let mut cold_by_array: BTreeMap<usize, f64> = BTreeMap::new();
        for r in &refs {
            let dl = distinct_lines(
                r,
                kernel,
                &bounds,
                &mids,
                0,
                self.hierarchy.line_bytes(),
                count_cache,
            )?;
            let e = cold_by_array.entry(r.array).or_insert(0.0);
            // References to the same array usually overlap heavily (shifted
            // stencil taps, read+write pairs after dedup): take the max,
            // capped below at each ref's own lines.
            *e = e.max(dl.lines);
        }
        let mut cold_lines = 0.0;
        for (arr, lines) in &cold_by_array {
            let cap = (program.arrays[*arr].size_bytes() as f64 / line).ceil();
            cold_lines += lines.min(cap);
        }

        // Per-level analysis.
        let mut levels = Vec::with_capacity(self.hierarchy.n_levels());
        let mut prev_misses = total_accesses;
        for lc in &self.hierarchy.levels {
            // Footprints per loop level; pick the outermost that fits.
            let mut fit_level = depth; // nothing fits by default
            for l in 0..=depth {
                let mut per_set_load = 0.0;
                let mut total_lines = 0.0;
                for r in &refs {
                    let dl = distinct_lines(
                        r,
                        kernel,
                        &bounds,
                        &mids,
                        l,
                        self.hierarchy.line_bytes(),
                        count_cache,
                    )?;
                    total_lines += dl.lines;
                    let sets = dl.set_coverage(lc.n_sets());
                    per_set_load += dl.lines / sets.max(1.0);
                }
                let fits = match self.mode {
                    AssocMode::FullyAssociative => total_lines <= lc.n_lines() as f64,
                    AssocMode::SetAssociative => per_set_load <= lc.assoc as f64,
                };
                if fits {
                    fit_level = l;
                    break;
                }
            }

            // Misses per reference. Reuse across loop `fit_level-1` is
            // realized (its body footprint fits); reuse across any loop
            // above that is lost because the intervening footprint exceeds
            // capacity — the data is re-fetched on every iteration of
            // those loops, whether or not the reference depends on them.
            let mut misses = 0.0;
            for r in &refs {
                let body = distinct_lines(
                    r,
                    kernel,
                    &bounds,
                    &mids,
                    fit_level,
                    self.hierarchy.line_bytes(),
                    count_cache,
                )?;
                let cold_r = distinct_lines(
                    r,
                    kernel,
                    &bounds,
                    &mids,
                    0,
                    self.hierarchy.line_bytes(),
                    count_cache,
                )?
                .lines;
                let m = if fit_level == 0 {
                    cold_r
                } else {
                    let d_star = fit_level - 1;
                    let mut outer_count = if r.relevant.contains(&d_star) {
                        // The data changes across d_star too: count its
                        // trips, collapsing the shared lines between
                        // consecutive iterations. Two regimes:
                        //  - dense footprints shift by `coef` elements over
                        //    a span of `span_elems` and re-fetch only the
                        //    newly exposed fraction (skewed stencil tiles
                        //    overlap almost entirely);
                        //  - strided/sub-line footprints share lines at
                        //    cache-line granularity (`ℓ / (coef·e)`).
                        let mut c =
                            count_prefix_trips(kernel, &bounds, fit_level, count_cache)? as f64;
                        let coef = r.coeffs[d_star].abs();
                        if coef > 0 {
                            let lb = self.hierarchy.line_bytes() as i64;
                            let elems_per_line = (lb / r.elem_bytes).max(1) as f64;
                            if body.dense {
                                let w_eff = body.span_elems.max(elems_per_line);
                                let factor = (w_eff / coef as f64).max(1.0);
                                c /= factor;
                            } else if coef * r.elem_bytes < lb {
                                c /= (lb / (coef * r.elem_bytes).max(1)) as f64;
                            }
                        }
                        c
                    } else {
                        count_prefix_trips(kernel, &bounds, d_star, count_cache)? as f64
                    };
                    outer_count = outer_count.max(1.0);
                    (outer_count * body.lines).max(cold_r)
                };
                if std::env::var("POLYUFC_CM_DEBUG").is_ok() {
                    eprintln!(
                        "  ref arr{} coeffs {:?} relevant {:?}: fit {} body {:.3e} cold {:.3e} -> m {:.3e}",
                        r.array, r.coeffs, r.relevant, fit_level, body.lines, cold_r, m
                    );
                }
                misses += m;
            }
            misses = misses.max(cold_lines).min(prev_misses);
            levels.push(LevelStats {
                accesses: prev_misses,
                hits: prev_misses - misses,
                misses,
                fit_level,
            });
            prev_misses = misses;
        }
        // L1's "accesses" are the kernel's accesses, not the previous
        // level's misses; fix the first entry.
        if let Some(first) = levels.first_mut() {
            first.accesses = total_accesses;
            first.hits = total_accesses - first.misses;
        }

        let q_dram_bytes = levels.last().map(|l| l.misses).unwrap_or(0.0) * line;
        Ok(KernelCacheStats {
            levels,
            cold_lines,
            q_dram_bytes,
            flops,
            total_accesses,
        })
    }

    /// Analyzes every kernel of a program, returning `(kernel name, stats)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Fails on the first kernel that cannot be analyzed.
    pub fn analyze_program(
        &self,
        program: &AffineProgram,
    ) -> Result<Vec<(String, KernelCacheStats)>, ModelError> {
        program
            .kernels
            .iter()
            .map(|k| Ok((k.name.clone(), self.analyze_kernel(program, k)?)))
            .collect()
    }
}

/// Collects deduplicated references of a kernel.
fn collect_refs(
    program: &AffineProgram,
    kernel: &AffineKernel,
    depth: usize,
) -> Result<Vec<Ref>, ModelError> {
    // References are grouped by (array, coefficient vector): accesses that
    // differ only in the constant offset (stencil taps, shifted reads)
    // touch essentially the same lines and must not have their footprints
    // double-counted.
    let mut map: BTreeMap<(usize, Vec<i64>), Ref> = BTreeMap::new();
    for s in &kernel.statements {
        for a in &s.accesses {
            // `analyze_kernel` is public API and may see programs that
            // never went through `AffineProgram::validate`; a dangling
            // array id or out-of-depth iterator must surface as a typed
            // error, not an index panic.
            let decl = program.arrays.get(a.array.0).ok_or_else(|| {
                ModelError::Malformed(format!(
                    "statement `{}` references unknown array {}",
                    s.name, a.array
                ))
            })?;
            if a.indices.len() != decl.dims.len() {
                return Err(ModelError::Malformed(format!(
                    "access arity mismatch on `{}`",
                    decl.name
                )));
            }
            let strides = decl.strides();
            let mut coeffs = vec![0i64; depth];
            let mut constant = 0i64;
            for (e, &st) in a.indices.iter().zip(&strides) {
                constant += e.constant_term() * st as i64;
                for (v, c) in e.terms() {
                    if v >= depth {
                        return Err(ModelError::Malformed(format!(
                            "access to `{}` references iterator {v} beyond depth {depth}",
                            decl.name
                        )));
                    }
                    coeffs[v] += c * st as i64;
                }
            }
            let key = (a.array.0, coeffs.clone());
            let _ = constant;
            if let Some(r) = map.get_mut(&key) {
                r.multiplicity += 1;
                continue;
            }
            // Relevant iterators: nonzero coefficient, plus transitive
            // bound dependence.
            let mut relevant: Vec<bool> = coeffs.iter().map(|&c| c != 0).collect();
            loop {
                let mut changed = false;
                for d in 0..depth {
                    if !relevant[d] {
                        continue;
                    }
                    for e in kernel.loops[d]
                        .lb
                        .exprs
                        .iter()
                        .chain(&kernel.loops[d].ub.exprs)
                    {
                        for (v, _) in e.terms() {
                            if !relevant[v] {
                                relevant[v] = true;
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            map.insert(
                key,
                Ref {
                    coeffs,
                    elem_bytes: decl.elem.size_bytes() as i64,
                    array: a.array.0,
                    multiplicity: 1,
                    array_bytes: decl.size_bytes() as f64,
                    relevant: (0..depth).filter(|&d| relevant[d]).collect(),
                },
            );
        }
    }
    Ok(map.into_values().collect())
}

/// Distinct-line estimate of a reference within one execution of the loop
/// body at `level` (iterators `< level` fixed at representative midpoints).
#[derive(Debug, Clone, Copy)]
struct DistinctLines {
    /// Estimated distinct lines.
    lines: f64,
    /// Distinct elements covered (the footprint's span for dense bodies).
    span_elems: f64,
    /// Whether the footprint is dense-ish (a unit-stride or suffix-dense
    /// dimension exists), which makes shift-overlap reasoning valid.
    dense: bool,
    /// Length of each contiguous run, in lines (>= 1).
    run_lines: u64,
    /// Line stride between runs, when the footprint is a strided family
    /// of runs (`None` = effectively contiguous).
    stride_lines: Option<u64>,
}

impl DistinctLines {
    /// How many cache sets the footprint covers. Contiguous footprints
    /// spread over `min(lines, n_sets)` sets; strided families of runs
    /// only reach `run · n_sets / gcd(stride, n_sets)` — the power-of-two
    /// aliasing that makes the set-associative model diverge from the
    /// fully-associative one (Fig. 8).
    fn set_coverage(&self, n_sets: u64) -> f64 {
        if self.lines <= 1.0 {
            return self.lines.max(1.0);
        }
        match self.stride_lines {
            None => self.lines.min(n_sets as f64),
            Some(s) => {
                let g = gcd_u64(s % n_sets.max(1), n_sets).max(1);
                let positions = (n_sets / g).max(1);
                self.lines
                    .min((positions.saturating_mul(self.run_lines.max(1))) as f64)
                    .min(n_sets as f64)
            }
        }
    }
}

fn gcd_u64(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Core footprint routine; see module docs.
///
/// The footprint of one body execution at `level` must account for free
/// *bound parents*: a point loop's value range depends on its tile loop,
/// so when the tile loop is free (inside the body) the point iterator
/// effectively sweeps its whole union range. Coefficient dims therefore
/// use union extents, and the dominating-prefix count includes the free
/// bound parents (which are functions of the point iterators for tiled
/// bounds, so including them does not change the count).
fn distinct_lines(
    r: &Ref,
    kernel: &AffineKernel,
    bounds: &[(i64, i64)],
    mids: &[i64],
    level: usize,
    line_bytes: u64,
    count_cache: &mut CountCache,
) -> Result<DistinctLines, ModelError> {
    let depth = kernel.depth();
    // Free iterators (>= level) with nonzero coefficient.
    let free: Vec<usize> = (level..depth).filter(|&d| r.coeffs[d] != 0).collect();
    if free.is_empty() {
        return Ok(DistinctLines {
            lines: 1.0,
            span_elems: 1.0,
            dense: false,
            run_lines: 1,
            stride_lines: None,
        });
    }
    // Effective (union) extents under the restriction.
    let ext = restricted_extents(kernel, bounds, mids, level)?;

    // Free bound parents (transitively) of the coefficient dims.
    let mut in_closure = vec![false; depth];
    for &d in &free {
        in_closure[d] = true;
    }
    loop {
        let mut changed = false;
        for d in level..depth {
            if !in_closure[d] {
                continue;
            }
            for e in kernel.loops[d]
                .lb
                .exprs
                .iter()
                .chain(&kernel.loops[d].ub.exprs)
            {
                for (v, _) in e.terms() {
                    if v >= level && !in_closure[v] {
                        in_closure[v] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let aux: Vec<usize> = (level..depth)
        .filter(|&d| in_closure[d] && !free.contains(&d))
        .collect();

    // Order free dims by |coeff| descending; find the dominating prefix.
    let mut order = free.clone();
    order.sort_by_key(|&d| std::cmp::Reverse(r.coeffs[d].abs()));
    let mut prefix_len = 0;
    for i in 0..order.len() {
        let rest_width: i64 = order[i + 1..]
            .iter()
            .map(|&d| r.coeffs[d].abs() * (ext[d] - 1).max(0))
            .sum();
        if r.coeffs[order[i]].abs() > rest_width {
            prefix_len = i + 1;
        } else {
            break;
        }
    }
    let prefix: Vec<usize> = order[..prefix_len].to_vec();
    let suffix: Vec<usize> = order[prefix_len..].to_vec();

    // Distinct values of the prefix dims: polyhedral count of their
    // (restricted) sub-domain, including free bound parents so tile/point
    // coupling constraints stay meaningful — exact for triangular and
    // tiled bounds.
    let prefix_count = if prefix.is_empty() {
        1.0
    } else {
        let mut dims = prefix.clone();
        dims.extend(aux.iter().copied());
        count_outer(kernel, bounds, mids, &sorted(&dims), count_cache)? as f64
    };
    // Dense width of the suffix, over union extents.
    let suffix_width: i64 = suffix
        .iter()
        .map(|&d| r.coeffs[d].abs() * (ext[d] - 1).max(0))
        .sum::<i64>()
        + 1;
    let distinct_elems = prefix_count * suffix_width as f64;

    let min_stride = free.iter().map(|&d| r.coeffs[d].abs()).min().unwrap_or(0);
    let lb = line_bytes as i64;
    // Line count from the run structure: the smallest-stride dimension
    // forms contiguous runs of `ext · stride` elements; runs shorter than
    // a line still occupy a whole line each (e.g. a 2-wide convolution
    // window with a large channel stride touches a fresh line per
    // channel), while long runs amortize `ℓ/e` elements per line.
    let mut by_stride_order = free.clone();
    by_stride_order.sort_by_key(|&d| r.coeffs[d].abs());
    let d0 = by_stride_order[0];
    let c0 = r.coeffs[d0].abs();
    let lines = if c0 * r.elem_bytes >= lb {
        // Every element on its own line.
        distinct_elems
    } else {
        let run_elems = ext[d0].max(1) as f64;
        let run_span_bytes = run_elems * (c0 * r.elem_bytes) as f64;
        let run_lines = (run_span_bytes / lb as f64).ceil().max(1.0);
        (distinct_elems / run_elems).ceil().max(1.0) * run_lines
    };
    // A footprint can never exceed the array itself (the cap that keeps
    // skew/triangle dense-width approximations honest).
    let lines = lines.min((r.array_bytes / line_bytes as f64).ceil().max(1.0));
    let dense = !suffix.is_empty() || min_stride == 1;

    // Run/stride structure for set-coverage: the smallest-stride free dim
    // forms contiguous (or near-contiguous) runs; the next stride up
    // separates the runs.
    let mut by_stride = free.clone();
    by_stride.sort_by_key(|&d| r.coeffs[d].abs());
    let c0 = r.coeffs[by_stride[0]].abs();
    let (run_lines, stride_lines) = if c0 * r.elem_bytes < lb {
        // Dense-ish runs along the smallest-stride dim.
        let run_elems = ext[by_stride[0]].max(1) * c0;
        let run = ((run_elems * r.elem_bytes) as f64 / lb as f64)
            .ceil()
            .max(1.0) as u64;
        let stride = by_stride.get(1).and_then(|&d1| {
            let span = r.coeffs[d1].abs() * r.elem_bytes;
            if span >= lb && span % lb == 0 {
                Some((span / lb) as u64)
            } else {
                None
            }
        });
        (run, stride)
    } else {
        // Every element its own line; the smallest stride separates them.
        let span = c0 * r.elem_bytes;
        let stride = if span % lb == 0 {
            Some((span / lb) as u64)
        } else {
            None
        };
        (1u64, stride)
    };
    // A stride no larger than the run means the runs tile contiguously.
    let stride_lines = stride_lines.filter(|&s| s > run_lines);

    Ok(DistinctLines {
        lines,
        span_elems: distinct_elems,
        dense,
        run_lines,
        stride_lines,
    })
}

fn sorted(v: &[usize]) -> Vec<usize> {
    let mut v = v.to_vec();
    v.sort_unstable();
    v
}

/// Effective extent of each iterator when iterators `< level` are fixed at
/// midpoints. An iterator whose bounds reference a *free* (>= level)
/// iterator (a tile loop inside the body) gets its **union** extent — the
/// interval-propagated global range restricted only by the fixed outers —
/// because the body sweeps the parent.
fn restricted_extents(
    kernel: &AffineKernel,
    bounds: &[(i64, i64)],
    mids: &[i64],
    level: usize,
) -> Result<Vec<i64>, ModelError> {
    let depth = kernel.depth();
    let mut ext = vec![0i64; depth];
    let mut rep: Vec<i64> = mids.to_vec();
    for e in ext.iter_mut().take(level) {
        *e = 1;
    }
    for d in level..depth {
        let l = &kernel.loops[d];
        let refs_free =
            l.lb.exprs
                .iter()
                .chain(&l.ub.exprs)
                .any(|e| e.terms().any(|(v, _)| v >= level));
        if refs_free {
            // Union over the free parents: global propagated interval.
            ext[d] = (bounds[d].1 - bounds[d].0 + 1).max(0);
            rep[d] = (bounds[d].0 + bounds[d].1) / 2;
            continue;
        }
        let lo =
            l.lb.exprs
                .iter()
                .map(|e| eval_with(e, &rep))
                .max()
                .unwrap_or(bounds[d].0);
        let hi =
            l.ub.exprs
                .iter()
                .map(|e| eval_with(e, &rep))
                .min()
                .unwrap_or(bounds[d].1 + 1)
                - 1;
        ext[d] = (hi - lo + 1).max(0);
        rep[d] = (lo + hi) / 2;
    }
    Ok(ext)
}

fn eval_with(e: &LinExpr, rep: &[i64]) -> i64 {
    let mut acc = e.constant_term();
    for (v, c) in e.terms() {
        acc += c * rep.get(v).copied().unwrap_or(0);
    }
    acc
}

/// Trip count of the outer loops `0..prefix` (exact: prefix-loop bounds
/// reference only earlier prefix iterators).
fn count_prefix_trips(
    kernel: &AffineKernel,
    bounds: &[(i64, i64)],
    prefix: usize,
    count_cache: &mut CountCache,
) -> Result<i128, ModelError> {
    if prefix == 0 {
        return Ok(1);
    }
    let dims: Vec<usize> = (0..prefix).collect();
    count_outer(kernel, bounds, &vec![0; kernel.depth()], &dims, count_cache)
}

/// Counts the number of distinct value combinations of the given iterator
/// dims (sorted ascending), with all other iterators' occurrences in
/// bounds replaced by midpoints.
fn count_outer(
    kernel: &AffineKernel,
    bounds: &[(i64, i64)],
    mids: &[i64],
    dims: &[usize],
    count_cache: &mut CountCache,
) -> Result<i128, ModelError> {
    debug_assert!(dims.windows(2).all(|w| w[0] < w[1]));
    let _ = bounds;
    let k = dims.len();
    let space = Space::set(0, k);
    let mut b = BasicSet::universe(space);
    // Map original dim -> compact index.
    let pos = |d: usize| dims.iter().position(|&x| x == d);
    for (ci, &d) in dims.iter().enumerate() {
        let l = &kernel.loops[d];
        for e in &l.lb.exprs {
            // i_d >= e  =>  i_d - e >= 0 with e remapped.
            b.add_ge0(LinExpr::var(ci) - remap_expr(e, &pos, mids));
        }
        for e in &l.ub.exprs {
            b.add_ge0(remap_expr(e, &pos, mids) - LinExpr::var(ci) - LinExpr::constant(1));
        }
    }
    let set = Set::from_basic(b);
    Ok(set.count_cached(count_cache)?)
}

/// Remaps an expression over original iterators to the compact dim space,
/// substituting midpoints for iterators not in the compact set.
fn remap_expr(e: &LinExpr, pos: &impl Fn(usize) -> Option<usize>, mids: &[i64]) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term());
    for (v, c) in e.terms() {
        match pos(v) {
            Some(ci) => out.set_coeff(ci, out.coeff(ci) + c),
            None => out.add_constant(c * mids.get(v).copied().unwrap_or(0)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;
    use polyufc_ir::affine::{Access, Loop, Statement};
    use polyufc_ir::types::ElemType;

    fn hierarchy(l1_kib: u64, llc_kib: u64) -> CacheHierarchy {
        CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: l1_kib << 10,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: llc_kib << 10,
                line_bytes: 64,
                assoc: 16,
                shared: true,
            },
        ])
    }

    fn matmul(n: usize) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![n, n], ElemType::F64);
        let b = p.add_array("B", vec![n, n], ElemType::F64);
        let c = p.add_array("C", vec![n, n], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        let k = AffineKernel {
            name: "mm".into(),
            loops: vec![Loop::range(n as i64); 3],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn matmul_small_fits_llc_cold_only() {
        // 3 arrays of 64x64 f64 = 96 KiB total; LLC 1 MiB: everything fits.
        let (p, k) = matmul(64);
        let m = CacheModel::new(hierarchy(32, 1024), AssocMode::FullyAssociative);
        let st = m.analyze_kernel(&p, &k).unwrap();
        let llc = st.levels.last().unwrap();
        let cold = 3.0 * (64.0 * 64.0 * 8.0 / 64.0);
        assert!(
            (llc.misses - cold).abs() < cold * 0.05,
            "misses {} vs cold {}",
            llc.misses,
            cold
        );
        // OI of cold-only matmul = 2n³ / (3n²·8) = n/12 ≈ 5.3 for n = 64.
        let oi = st.operational_intensity();
        assert!((4.0..7.0).contains(&oi), "OI {oi}");
    }

    #[test]
    fn matmul_large_misses_exceed_cold() {
        // 512x512: each array 2 MiB, LLC 1 MiB -> B streamed repeatedly.
        let (p, k) = matmul(512);
        let m = CacheModel::new(hierarchy(32, 1024), AssocMode::FullyAssociative);
        let st = m.analyze_kernel(&p, &k).unwrap();
        let llc = st.levels.last().unwrap();
        assert!(llc.misses > st.cold_lines * 2.0);
    }

    #[test]
    fn model_tracks_simulator_on_matmul() {
        use crate::sim::CacheSim;
        let (p, k) = matmul(96);
        let h = hierarchy(16, 256);
        for mode in [AssocMode::FullyAssociative, AssocMode::SetAssociative] {
            let m = CacheModel::new(h.clone(), mode);
            let st = m.analyze_kernel(&p, &k).unwrap();
            let mut sim = CacheSim::new(&h, &p);
            polyufc_ir::interp::interpret_program(&p, &mut sim);
            let sim_llc = sim.stats.misses[1] as f64;
            let mod_llc = st.levels[1].misses;
            let ratio = mod_llc / sim_llc;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "mode {mode:?}: model {mod_llc} vs sim {sim_llc} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn thread_sharing_scales_misses() {
        let (p, k) = matmul(64);
        let m = CacheModel::new(hierarchy(32, 1024), AssocMode::SetAssociative);
        let st = m.analyze_kernel(&p, &k).unwrap();
        let st4 = st.with_thread_sharing(4);
        assert!((st4.q_dram_bytes - st.q_dram_bytes / 4.0).abs() < 1e-6);
        assert!((st4.levels[0].misses - st.levels[0].misses / 4.0).abs() < 1e-6);
    }

    #[test]
    fn streaming_kernel_is_bandwidth_heavy() {
        // y[i] += A[i][j] * x[j]: matvec 1024x1024, arrays > LLC.
        let mut p = AffineProgram::new("mv");
        let a = p.add_array("A", vec![1024, 1024], ElemType::F64);
        let x = p.add_array("x", vec![1024], ElemType::F64);
        let y = p.add_array("y", vec![1024], ElemType::F64);
        let (vi, vj) = (LinExpr::var(0), LinExpr::var(1));
        let k = AffineKernel {
            name: "mv".into(),
            loops: vec![Loop::range(1024), Loop::range(1024)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vj.clone()]),
                    Access::read(x, vec![vj]),
                    Access::read(y, vec![vi.clone()]),
                    Access::write(y, vec![vi]),
                ],
                flops: 2,
            }],
        };
        p.kernels.push(k.clone());
        let m = CacheModel::new(hierarchy(32, 2048), AssocMode::SetAssociative);
        let st = m.analyze_kernel(&p, &k).unwrap();
        // A is streamed once (cold ≈ 1024*1024*8/64 = 131072 lines).
        let llc = st.levels.last().unwrap();
        assert!(llc.misses >= 131072.0 * 0.9);
        // OI ≈ 2 flops per 8 bytes = 0.25.
        let oi = st.operational_intensity();
        assert!((0.1..1.0).contains(&oi), "OI {oi}");
    }

    #[test]
    fn set_assoc_sees_conflicts_full_does_not() {
        // Column sweep of a 2048x2048 matrix with power-of-two stride:
        // for j { for k { read B[k][j] } } — column footprint 2048 lines,
        // line stride 256. Fully associative: fits a 16 MiB LLC easily.
        // Set-associative with 4096 sets: only 4096/gcd(256,4096)=16 sets
        // covered -> 128 lines/set >> 16 ways: conflicts.
        let mut p = AffineProgram::new("col");
        let b = p.add_array("B", vec![2048, 2048], ElemType::F64);
        let (vj, vk) = (LinExpr::var(0), LinExpr::var(1));
        let k = AffineKernel {
            name: "col".into(),
            loops: vec![Loop::range(2048), Loop::range(2048)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(b, vec![vk, vj])],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        let h = CacheHierarchy::new(vec![CacheLevelConfig {
            size_bytes: 4 << 20,
            line_bytes: 64,
            assoc: 16,
            shared: true,
        }]);
        let full = CacheModel::new(h.clone(), AssocMode::FullyAssociative)
            .analyze_kernel(&p, &k)
            .unwrap();
        let sa = CacheModel::new(h, AssocMode::SetAssociative)
            .analyze_kernel(&p, &k)
            .unwrap();
        assert!(
            sa.levels[0].misses > full.levels[0].misses * 2.0,
            "set-assoc {} vs full {}",
            sa.levels[0].misses,
            full.levels[0].misses
        );
    }

    #[test]
    fn tiled_matmul_keeps_tile_reuse() {
        use polyufc_pluto::PlutoOptimizer;
        let (p, _) = matmul(128);
        let (opt, _) = PlutoOptimizer::default().optimize(&p);
        let h = hierarchy(32, 512);
        let model = CacheModel::new(h.clone(), AssocMode::FullyAssociative);
        let tiled_stats = model.analyze_kernel(&opt, &opt.kernels[0]).unwrap();
        let untiled_stats = model.analyze_kernel(&p, &p.kernels[0]).unwrap();
        // Tiling must not increase modeled LLC misses.
        assert!(
            tiled_stats.levels[1].misses <= untiled_stats.levels[1].misses * 1.1,
            "tiled {} vs untiled {}",
            tiled_stats.levels[1].misses,
            untiled_stats.levels[1].misses
        );
    }
}
