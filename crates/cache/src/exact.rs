//! The paper's exact set-associative formulation (Sec. IV-A, Fig. 4),
//! built from the Presburger machinery: access maps extended with
//! line/set dimensions, forward/backward reuse maps from lexicographic
//! orders and relation composition, compulsory misses via `lexmin`, and
//! reuse-distance-based capacity/conflict miss counting.
//!
//! Exact analysis enumerates schedule points, so it is intended for small
//! kernels; the scalable [`crate::model`] is validated against it (and
//! against the trace simulator) in tests. Within one cache set the model
//! is fully associative with LRU, exactly as the paper assumes: an access
//! hits iff the number of distinct lines mapped to its set since the
//! previous access to the same line is below the associativity.

use std::collections::BTreeMap;

use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::{BasicMap, LinExpr, Map, Result as PResult, Space};

use crate::config::CacheLevelConfig;

/// A schedule-time-to-line access relation plus derived reuse structures.
#[derive(Debug)]
pub struct ExactAnalysis {
    /// Time dims = kernel depth + 1 (textual position of the reference).
    pub time_dims: usize,
    /// `{ time -> (line, set) }` over all references.
    pub access: Map,
    /// Forward reuse pairs: each access and the next access to the same
    /// line (the explicit `lexmin` of the forward map `F` of the paper).
    pub forward_pairs: Vec<(Vec<i64>, Vec<i64>)>,
    /// Backward reuse pairs (the paper's `B` map): each access and the
    /// previous access to the same line — the reversal of `F`.
    pub backward_pairs: Vec<(Vec<i64>, Vec<i64>)>,
    /// Number of distinct lines (compulsory misses at this level).
    pub cold_misses: u64,
    /// Reuse pairs whose same-set reuse distance reaches the
    /// associativity (capacity + conflict misses).
    pub capacity_conflict_misses: u64,
    /// All accesses in schedule order as `(time, line, set)`.
    pub trace: Vec<(Vec<i64>, i64, i64)>,
}

impl ExactAnalysis {
    /// Total misses `|COLDMISS| + |M_ci|`.
    pub fn total_misses(&self) -> u64 {
        self.cold_misses + self.capacity_conflict_misses
    }
}

/// Runs the exact analysis of one kernel against a single cache level.
///
/// `max_points` bounds the number of schedule points that will be
/// enumerated.
///
/// # Errors
///
/// Propagates Presburger errors (budget exhaustion on kernels too large
/// for exact analysis).
pub fn analyze_exact(
    program: &AffineProgram,
    kernel: &AffineKernel,
    level: &CacheLevelConfig,
    max_points: u64,
) -> PResult<ExactAnalysis> {
    let depth = kernel.depth();
    let time_dims = depth + 1;
    let n_sets = level.n_sets() as i64;
    let lines_per_elem = level.line_bytes as i64;

    // Array base lines (same layout rule as the simulator).
    let mut base_lines = Vec::with_capacity(program.arrays.len());
    let mut next = 0i64;
    for a in &program.arrays {
        base_lines.push(next);
        next += (a.size_bytes() as i64 + lines_per_elem - 1) / lines_per_elem;
    }

    // Build { (iters, pos) -> (line, set) } per reference and union them.
    let space = Space::map(0, time_dims, 2);
    let mut access = Map::empty(space.clone());
    let dom_basic = kernel.domain().basics()[0].clone();
    let mut pos = 0i64;
    for s in &kernel.statements {
        for a in &s.accesses {
            let decl = &program.arrays[a.array.0];
            let strides = decl.strides();
            // Element offset over iters.
            let mut elem = LinExpr::constant(0);
            for (e, &st) in a.indices.iter().zip(&strides) {
                elem = elem + e.clone() * st as i64;
            }
            let ebytes = decl.elem.size_bytes() as i64;
            let mut m = BasicMap::universe(space.clone());
            {
                let bs = m.basic_set_mut();
                // Domain constraints on iters (dims 0..depth).
                for (c_ix, c) in dom_basic.constraints().iter().enumerate() {
                    let _ = c_ix;
                    bs.add_constraint(c.clone());
                }
                // pos dim fixed.
                bs.fix_var(depth, pos);
                // line = base + floor(elem * ebytes / line_bytes): div over
                // the byte offset.
                let byte_off = elem.clone() * ebytes;
                let q = bs.add_div(byte_off, lines_per_elem);
                // out line dim (time_dims) = base_line + q.
                bs.add_eq(
                    LinExpr::var(time_dims)
                        - LinExpr::var(q)
                        - LinExpr::constant(base_lines[a.array.0]),
                );
                // set = line mod n_sets.
                let q2 = bs.add_div(LinExpr::var(time_dims), n_sets);
                bs.add_eq(
                    LinExpr::var(time_dims + 1)
                        - (LinExpr::var(time_dims) - LinExpr::var(q2) * n_sets),
                );
            }
            access = access.union_disjoint(&Map::from_basic(m))?;
            pos += 1;
        }
    }

    // Enumerate the trace in schedule order.
    let pairs = access.enumerate_pairs(max_points)?;
    let mut trace: Vec<(Vec<i64>, i64, i64)> =
        pairs.into_iter().map(|(t, ls)| (t, ls[0], ls[1])).collect();
    trace.sort();

    // Forward reuse pairs: next access to the same line. (The symbolic
    // formulation is F = lexmin((S∘S⁻¹) ∩ L_⪯)) — here made explicit.)
    let mut last_seen: BTreeMap<i64, usize> = BTreeMap::new();
    let mut forward_pairs = Vec::new();
    let mut reuse_intervals: Vec<(usize, usize, i64, i64)> = Vec::new(); // (from, to, line, set)
    for (idx, (_, line, set)) in trace.iter().enumerate() {
        if let Some(&prev) = last_seen.get(line) {
            forward_pairs.push((trace[prev].0.clone(), trace[idx].0.clone()));
            reuse_intervals.push((prev, idx, *line, *set));
        }
        last_seen.insert(*line, idx);
    }
    let cold_misses = last_seen.len() as u64;
    let backward_pairs: Vec<(Vec<i64>, Vec<i64>)> = forward_pairs
        .iter()
        .map(|(a, b)| (b.clone(), a.clone()))
        .collect();

    // Reuse distance per pair: distinct other lines in the same set
    // strictly between the endpoints. Hit iff distance < associativity.
    let mut capacity_conflict_misses = 0u64;
    for &(from, to, line, set) in &reuse_intervals {
        let mut distinct = std::collections::BTreeSet::new();
        for (_, l2, s2) in &trace[from + 1..to] {
            if *s2 == set && *l2 != line {
                distinct.insert(*l2);
            }
        }
        if distinct.len() as i64 >= level.assoc as i64 {
            capacity_conflict_misses += 1;
        }
    }

    Ok(ExactAnalysis {
        time_dims,
        access,
        forward_pairs,
        backward_pairs,
        cold_misses,
        capacity_conflict_misses,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheHierarchy;
    use crate::sim::CacheSim;
    use polyufc_ir::affine::{Access, Loop, Statement};
    use polyufc_ir::types::ElemType;

    fn level(lines: u64, assoc: u32) -> CacheLevelConfig {
        CacheLevelConfig {
            size_bytes: lines * 64,
            line_bytes: 64,
            assoc,
            shared: false,
        }
    }

    /// Fig. 4-style example: two statements over the same array.
    fn fig4_kernel(n: i64) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("fig4");
        let b = p.add_array("B", vec![n as usize + 1], ElemType::F64);
        let k = AffineKernel {
            name: "fig4".into(),
            loops: vec![Loop::range(n)],
            statements: vec![
                Statement {
                    name: "s0".into(),
                    accesses: vec![Access::read(b, vec![LinExpr::var(0)])],
                    flops: 1,
                },
                Statement {
                    name: "s1".into(),
                    accesses: vec![Access::write(
                        b,
                        vec![LinExpr::var(0) + LinExpr::constant(1)],
                    )],
                    flops: 1,
                },
            ],
        };
        p.kernels.push(k.clone());
        (p, k)
    }

    #[test]
    fn cold_misses_match_simulator() {
        let (p, k) = fig4_kernel(32);
        let lv = level(64, 8);
        let ex = analyze_exact(&p, &k, &lv, 10_000).unwrap();
        let h = CacheHierarchy::new(vec![lv]);
        let mut sim = CacheSim::new(&h, &p);
        polyufc_ir::interp::interpret_program(&p, &mut sim);
        // Everything fits: misses are cold only and must agree exactly.
        assert_eq!(ex.capacity_conflict_misses, 0);
        assert_eq!(ex.total_misses(), sim.stats.misses[0]);
    }

    #[test]
    fn forward_pairs_link_same_line() {
        let (p, k) = fig4_kernel(16);
        let lv = level(64, 8);
        let ex = analyze_exact(&p, &k, &lv, 10_000).unwrap();
        // s1 writes B[d+1], s0 reads B[d]: reuse between consecutive d at
        // line granularity; there must be plenty of forward pairs.
        assert!(!ex.forward_pairs.is_empty());
        for (t0, t1) in &ex.forward_pairs {
            assert!(t0 < t1, "forward pair must advance in schedule order");
        }
        // B is the reversal of F.
        assert_eq!(ex.backward_pairs.len(), ex.forward_pairs.len());
        for ((f0, f1), (b0, b1)) in ex.forward_pairs.iter().zip(&ex.backward_pairs) {
            assert_eq!((f0, f1), (b1, b0));
            assert!(b0 > b1, "backward pair must point earlier");
        }
    }

    #[test]
    fn capacity_misses_match_simulator_on_sweep() {
        // Repeatedly sweep an array bigger than the cache.
        let mut p = AffineProgram::new("sweep");
        let a = p.add_array("A", vec![512], ElemType::F64); // 64 lines
        let k = AffineKernel {
            name: "sweep".into(),
            loops: vec![Loop::range(3), Loop::range(512)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(1)])],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        let lv = level(16, 16); // one set of 16 ways, 16-line cache
        let ex = analyze_exact(&p, &k, &lv, 100_000).unwrap();
        let h = CacheHierarchy::new(vec![lv]);
        let mut sim = CacheSim::new(&h, &p);
        polyufc_ir::interp::interpret_program(&p, &mut sim);
        assert_eq!(ex.total_misses(), sim.stats.misses[0]);
        assert_eq!(ex.cold_misses, 64);
    }

    #[test]
    fn set_conflicts_match_simulator() {
        // Strided access aliasing into few sets: direct-mapped 4-set cache,
        // lines 0,4,0,4,... conflict.
        let mut p = AffineProgram::new("conflict");
        let a = p.add_array("A", vec![1024], ElemType::F64);
        // Access A[32*j] for j in 0..2 repeatedly: lines 0 and 4, set 0.
        let k = AffineKernel {
            name: "c".into(),
            loops: vec![Loop::range(4), Loop::range(2)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(1) * 32])],
                flops: 0,
            }],
        };
        p.kernels.push(k.clone());
        let lv = level(4, 1);
        let ex = analyze_exact(&p, &k, &lv, 10_000).unwrap();
        let h = CacheHierarchy::new(vec![lv]);
        let mut sim = CacheSim::new(&h, &p);
        polyufc_ir::interp::interpret_program(&p, &mut sim);
        assert_eq!(ex.total_misses(), sim.stats.misses[0]);
        assert_eq!(ex.total_misses(), 8); // all conflict
                                          // A 2-way cache of the same size eliminates the conflicts.
        let lv2 = level(4, 2);
        let ex2 = analyze_exact(&p, &k, &lv2, 10_000).unwrap();
        assert_eq!(ex2.total_misses(), 2);
    }

    #[test]
    fn exact_validates_scalable_model() {
        use crate::config::AssocMode;
        use crate::model::CacheModel;
        // Small matmul where both paths are cheap.
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![12, 12], ElemType::F64);
        let b = p.add_array("B", vec![12, 12], ElemType::F64);
        let c = p.add_array("C", vec![12, 12], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        let k = AffineKernel {
            name: "mm".into(),
            loops: vec![Loop::range(12); 3],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        };
        p.kernels.push(k.clone());
        let lv = level(128, 8); // everything fits: cold only
        let ex = analyze_exact(&p, &k, &lv, 100_000).unwrap();
        let model = CacheModel::new(CacheHierarchy::new(vec![lv]), AssocMode::SetAssociative);
        let st = model.analyze_kernel(&p, &k).unwrap();
        let ratio = st.levels[0].misses / ex.total_misses() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "model {} vs exact {}",
            st.levels[0].misses,
            ex.total_misses()
        );
    }
}
