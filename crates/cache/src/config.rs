//! Cache hierarchy descriptions.

use std::fmt;

/// How PolyUFC-CM models associativity (the Fig. 8 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssocMode {
    /// Per-set modeling: working sets are spread over the sets their lines
    /// map to; a level holds a footprint only if each set's share fits in
    /// its ways. Captures conflict misses.
    #[default]
    SetAssociative,
    /// Classic fully-associative approximation: a footprint fits iff it is
    /// at most the level's total capacity.
    FullyAssociative,
}

/// One cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (`ℓ`).
    pub line_bytes: u64,
    /// Associativity (`k` ways).
    pub assoc: u32,
    /// Whether the level is shared among all cores (the LLC / uncore) or
    /// private per core.
    pub shared: bool,
}

impl CacheLevelConfig {
    /// Number of cache sets.
    pub fn n_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }

    /// Capacity in lines.
    pub fn n_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }
}

impl fmt::Display for CacheLevelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB, {}-way, {}B lines, {} sets{}",
            self.size_bytes / 1024,
            self.assoc,
            self.line_bytes,
            self.n_sets(),
            if self.shared { ", shared" } else { "" }
        )
    }
}

/// A multi-level inclusive hierarchy, L1 first. The last level is the LLC
/// (part of the uncore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHierarchy {
    /// Levels from closest-to-core (L1) to LLC.
    pub levels: Vec<CacheLevelConfig>,
}

impl CacheHierarchy {
    /// Builds a hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if no level is given, line sizes differ, or capacities are
    /// not non-decreasing (inclusion requires nested capacities).
    pub fn new(levels: Vec<CacheLevelConfig>) -> Self {
        assert!(!levels.is_empty(), "need at least one cache level");
        let line = levels[0].line_bytes;
        for w in levels.windows(2) {
            assert_eq!(w[0].line_bytes, line, "uniform line size required");
            assert!(
                w[0].size_bytes <= w[1].size_bytes,
                "capacities must be nested"
            );
        }
        CacheHierarchy { levels }
    }

    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// The last level (LLC).
    pub fn llc(&self) -> &CacheLevelConfig {
        self.levels.last().expect("non-empty")
    }

    /// Uniform line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.levels[0].line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_and_lines() {
        let l = CacheLevelConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 8,
            shared: false,
        };
        assert_eq!(l.n_sets(), 64);
        assert_eq!(l.n_lines(), 512);
    }

    #[test]
    fn hierarchy_accessors() {
        let h = CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 1 << 20,
                line_bytes: 64,
                assoc: 16,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 15 << 20,
                line_bytes: 64,
                assoc: 20,
                shared: true,
            },
        ]);
        assert_eq!(h.n_levels(), 3);
        assert!(h.llc().shared);
        assert_eq!(h.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn rejects_shrinking_levels() {
        CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 1 << 20,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                assoc: 8,
                shared: false,
            },
        ]);
    }
}
