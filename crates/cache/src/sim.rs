//! An exact trace-driven, multi-level, set-associative LRU cache
//! simulator (write-allocate, write-back). This is the reference the
//! static model is validated against, and the memory system of the
//! machine simulator.
//!
//! The simulator consumes the interpreter's run-length trace directly
//! (see `polyufc_ir::interp::RunGroup`): per innermost-loop instance it
//! walks each access stream's cache-*line* crossings instead of probing
//! the hierarchy once per element. Three invariants make the coalesced
//! walk produce *bit-identical* [`SimStats`] to per-event simulation:
//!
//! 1. **Order preservation** — within one step every stream is touched in
//!    program order, and streams are advanced step-major, so the sequence
//!    of line touches equals the per-event trace's.
//! 2. **Stable-stream fast hits** — evicting a line some stream was
//!    refreshed on requires at least `assoc(L1)` *touches of its L1 set*
//!    afterwards: the line starts as its set's most-recent way, each
//!    touch (hit-refresh or insert) promotes at most one way above it,
//!    and LRU victimizes the minimum. The simulator keeps one touch
//!    counter per L1 set; while a stream's set has seen fewer than
//!    `assoc` touches since the stream's last refresh, a repeat access to
//!    the same line is a *guaranteed* L1 hit: the counters and the
//!    recency update are applied without probing the set. (This
//!    subsumes the narrow-group case — `k ≤ assoc` streams can never
//!    accumulate `assoc` touches between a stream's consecutive steps —
//!    and extends the regime to wide stencil groups, where a stream's
//!    set is shared with only a few neighbours.)
//! 3. **Stretch extrapolation** — while *no* stream crosses a line
//!    boundary, no inserts happen at all, so consecutive steps are
//!    identical all-L1-hit steps; the hit counter is bumped
//!    arithmetically and a single recency refresh in touch order stands
//!    for the stretch (LRU only ever compares relative stamp order,
//!    which is preserved, and a compressed refresh still bumps each
//!    touched set's counter once per way it promotes — the invariant
//!    guarantee 2 relies on).
//!
//! Setting the environment variable `POLYUFC_SIM_PATH=per-event` forces
//! the pre-coalescing per-event path (the A/B reference); the
//! differential property suite asserts both paths agree exactly.
//!
//! Replacement state is tracked with per-way recency stamps (a monotonic
//! per-level clock) — a hit is one tag scan plus one stamp store, and a
//! victim is the minimum-stamp way — and set indexing is strength-reduced
//! to a bitmask for power-of-two set counts or a precomputed-reciprocal
//! remainder (Lemire fastmod) otherwise.

use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{AccessEvent, RunGroup, TraceSink};
use polyufc_ir::types::ArrayId;

use crate::config::CacheHierarchy;

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Per-level hits.
    pub hits: Vec<u64>,
    /// Per-level misses.
    pub misses: Vec<u64>,
    /// Lines fetched from DRAM (LLC misses).
    pub dram_line_fills: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total flops.
    pub flops: u64,
    /// Total bytes requested by the program (not unique).
    pub bytes_requested: u64,
}

impl SimStats {
    /// Bytes moved between LLC and DRAM for fills (`Q_DRAM` in the paper's
    /// `Miss_LLC · ℓ` sense).
    pub fn dram_fill_bytes(&self, line_bytes: u64) -> u64 {
        self.dram_line_fills * line_bytes
    }

    /// Total DRAM traffic including writebacks.
    pub fn dram_total_bytes(&self, line_bytes: u64) -> u64 {
        (self.dram_line_fills + self.dram_writebacks) * line_bytes
    }

    /// Hit ratio of level `i` (hits / accesses reaching that level).
    pub fn hit_ratio(&self, level: usize) -> f64 {
        let a = self.hits[level] + self.misses[level];
        if a == 0 {
            0.0
        } else {
            self.hits[level] as f64 / a as f64
        }
    }
}

/// Strength-reduced `line → set` mapping: a mask when the set count is a
/// power of two, a precomputed-reciprocal remainder (Lemire fastmod)
/// otherwise. Exact for 32-bit operands, which covers every realistic
/// line number (2^32 lines = 256 GiB of 64-byte lines).
#[derive(Debug, Clone, Copy)]
enum SetIndex {
    Pow2 { mask: u64 },
    Fastmod { d: u64, m: u64 },
}

impl SetIndex {
    fn new(n_sets: u64) -> Self {
        assert!(n_sets > 0, "cache level needs at least one set");
        if n_sets.is_power_of_two() {
            SetIndex::Pow2 { mask: n_sets - 1 }
        } else {
            assert!(n_sets < (1 << 32), "fastmod requires a 32-bit set count");
            SetIndex::Fastmod {
                d: n_sets,
                m: u64::MAX / n_sets + 1,
            }
        }
    }

    #[inline]
    fn of(self, line: u64) -> u64 {
        match self {
            SetIndex::Pow2 { mask } => line & mask,
            SetIndex::Fastmod { d, m } => {
                debug_assert!(line < (1 << 32), "fastmod operand overflow");
                ((m.wrapping_mul(line) as u128 * d as u128) >> 64) as u64
            }
        }
    }
}

const NO_TAG: u64 = u64::MAX;

/// One way of a set: the line tag and its recency stamp, interleaved so a
/// probe's tag scan and the subsequent stamp refresh touch the *same*
/// host cache lines (a large level's hot state is one contiguous
/// `assoc × 16` byte region per set, not two slices a megabyte apart —
/// splitting them measured ~50% slower on column-walk traces).
#[derive(Clone, Copy)]
struct Way {
    /// Line tag (`NO_TAG` = empty).
    tag: u64,
    /// Recency stamp; `0` marks an empty way, live ways carry
    /// monotonically increasing stamps from the level's clock, so the LRU
    /// victim is simply the minimum-stamp way of a set.
    stamp: u64,
}

/// One cache level: flat `n_sets × assoc` way records plus a dirty
/// side-array (bools stay out of the hot scan loops; the array is small
/// and only consulted on hits-for-write and evictions).
struct Level {
    assoc: usize,
    set_index: SetIndex,
    ways: Vec<Way>,
    /// Dirty flags, parallel to `ways`.
    dirty: Vec<bool>,
    /// Recency clock; incremented on every touch. Only the *relative*
    /// order of stamps is ever consulted, which is what lets the coalesced
    /// path compress a stretch of identical steps into one refresh.
    clock: u64,
}

impl Level {
    fn new(n_sets: u64, assoc: usize) -> Self {
        let n = n_sets as usize * assoc;
        Level {
            assoc,
            set_index: SetIndex::new(n_sets),
            ways: vec![
                Way {
                    tag: NO_TAG,
                    stamp: 0
                };
                n
            ],
            dirty: vec![false; n],
            clock: 0,
        }
    }

    #[inline]
    fn set_base(&self, line: u64) -> usize {
        self.set_index.of(line) as usize * self.assoc
    }

    /// Demand probe: on hit refreshes recency, ORs in dirtiness, and
    /// returns the absolute way index.
    #[inline]
    fn probe(&mut self, line: u64, write: bool) -> Option<usize> {
        let base = self.set_base(line);
        let set = &self.ways[base..base + self.assoc];
        // Narrow (L1/L2-like) sets scan branch-free — the whole set is one
        // or two host lines and the compiler unrolls the loop flat. Wide
        // (LLC-like) sets early-exit instead: a hit stops short of the
        // full `assoc × 16` byte sweep and a miss reads it all either way.
        let hit = if self.assoc <= 8 {
            let mut hit = usize::MAX;
            for (i, way) in set.iter().enumerate() {
                if way.tag == line {
                    hit = i;
                }
            }
            if hit == usize::MAX {
                return None;
            }
            hit
        } else {
            set.iter().position(|way| way.tag == line)?
        };
        let w = base + hit;
        self.clock += 1;
        self.ways[w].stamp = self.clock;
        if write {
            self.dirty[w] = true;
        }
        Some(w)
    }

    /// Inserts a line known to be absent, displacing the LRU way (empty
    /// ways, stamp 0, lose every comparison and fill first). Returns the
    /// way used and the evicted `(line, dirty)` if a valid way was
    /// displaced.
    #[inline]
    fn insert(&mut self, line: u64, dirty: bool) -> (usize, Option<(u64, bool)>) {
        let base = self.set_base(line);
        let set = &self.ways[base..base + self.assoc];
        let mut victim = 0;
        let mut min = set[0].stamp;
        for (i, way) in set.iter().enumerate().skip(1) {
            if way.stamp < min {
                min = way.stamp;
                victim = i;
            }
        }
        let w = base + victim;
        let evicted = (min != 0).then(|| (self.ways[w].tag, self.dirty[w]));
        self.clock += 1;
        self.ways[w] = Way {
            tag: line,
            stamp: self.clock,
        };
        self.dirty[w] = dirty;
        (w, evicted)
    }
}

/// Per-stream cursor while consuming one run group.
#[derive(Clone, Copy)]
struct RunState {
    /// Byte stride per innermost step.
    sb: i64,
    /// Byte address at step `tpos`.
    addr: u64,
    /// The step `addr` corresponds to.
    tpos: u64,
    /// Current cache line.
    line: u64,
    /// First step at which the stream leaves `line` (`u64::MAX` never).
    next_cross: u64,
    /// L1 way holding `line` after its last touch; valid until eviction,
    /// which the fast-hit guarantee rules out while `snapshot` is fresh.
    way: usize,
    /// L1 set of `line` (recomputed on every crossing).
    l1set: usize,
    /// Value of the L1 set's touch counter right after this stream's last
    /// touch or refresh. The line is guaranteed resident while the counter
    /// has advanced by less than `assoc(L1)` (module invariant 2).
    snapshot: u64,
    is_write: bool,
}

/// The simulator. Implements [`TraceSink`] so it can be fed directly from
/// the affine interpreter.
pub struct CacheSim {
    levels: Vec<Level>,
    line_shift: u32,
    base_addrs: Vec<u64>,
    /// Per-L1-set touch counter: bumped once per L1 way promotion (hit
    /// refresh or insert). Only *differences* against [`RunState`]
    /// snapshots are consulted, to bound evictions (module invariant 2).
    l1_set_clock: Vec<u64>,
    /// Forces per-event simulation (`POLYUFC_SIM_PATH=per-event`).
    per_event: bool,
    scratch: Vec<RunState>,
    /// Statistics accumulated so far.
    pub stats: SimStats,
}

impl std::fmt::Debug for CacheSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSim")
            .field("levels", &self.levels.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl CacheSim {
    /// Builds a simulator for a program: arrays are laid out contiguously,
    /// each padded to a line boundary (matching typical allocator
    /// behavior).
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy's line size is not a power of two.
    pub fn new(hierarchy: &CacheHierarchy, program: &AffineProgram) -> Self {
        let line = hierarchy.line_bytes();
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let mut base_addrs = Vec::with_capacity(program.arrays.len());
        let mut next = 0u64;
        for a in &program.arrays {
            base_addrs.push(next);
            let sz = a.size_bytes() as u64;
            next += sz.div_ceil(line) * line;
        }
        let levels = hierarchy
            .levels
            .iter()
            .map(|l| Level::new(l.n_sets(), l.assoc as usize))
            .collect::<Vec<_>>();
        let n = levels.len();
        let l1_sets = hierarchy.levels[0].n_sets() as usize;
        CacheSim {
            levels,
            line_shift: line.trailing_zeros(),
            base_addrs,
            l1_set_clock: vec![0; l1_sets],
            per_event: std::env::var("POLYUFC_SIM_PATH").is_ok_and(|v| v == "per-event"),
            scratch: Vec::new(),
            stats: SimStats {
                hits: vec![0; n],
                misses: vec![0; n],
                ..SimStats::default()
            },
        }
    }

    /// The base address assigned to an array.
    pub fn base_addr(&self, array: ArrayId) -> u64 {
        self.base_addrs[array.0]
    }

    /// Forces the per-event reference path on or off, overriding the
    /// `POLYUFC_SIM_PATH` environment default. This is the A/B lever the
    /// differential suite uses to assert both paths produce identical
    /// [`SimStats`].
    pub fn use_per_event_path(&mut self, on: bool) {
        self.per_event = on;
    }

    /// One demand access to a line: probes the hierarchy top-down, fills
    /// missed levels, and returns the L1 way now holding the line.
    ///
    /// Every touch promotes exactly one L1 way — the hit way's refresh or
    /// the fill insert — so the set's touch counter is bumped once here.
    fn touch(&mut self, line: u64, write: bool) -> usize {
        let n = self.levels.len();
        let set0 = self.levels[0].set_index.of(line) as usize;
        self.l1_set_clock[set0] += 1;
        if let Some(w) = self.levels[0].probe(line, write) {
            self.stats.hits[0] += 1;
            return w;
        }
        self.stats.misses[0] += 1;
        let mut outermost_miss = n;
        for i in 1..n {
            if self.levels[i].probe(line, false).is_some() {
                self.stats.hits[i] += 1;
                outermost_miss = i;
                break;
            }
            self.stats.misses[i] += 1;
        }
        if outermost_miss == n {
            self.stats.dram_line_fills += 1;
        }
        // Fill the line into every level that missed, slowest first.
        let mut w0 = 0;
        for j in (0..outermost_miss).rev() {
            let (w, evicted) = self.levels[j].insert(line, write && j == 0);
            if j == 0 {
                w0 = w;
            }
            if let Some((victim, true)) = evicted {
                self.write_back(j + 1, victim);
            }
        }
        w0
    }

    /// Propagates a dirty line evicted out of level `from - 1`. If the
    /// next level holds the line, it absorbs the write-back (marked dirty,
    /// recency refreshed); if not — inclusion was broken by an earlier
    /// silent eviction — the line is *allocated* there dirty
    /// (allocate-on-write-back), cascading further dirty victims until one
    /// is absorbed or reaches DRAM. Dirty data is never dropped.
    fn write_back(&mut self, from: usize, line: u64) {
        let mut lvl = from;
        let mut line = line;
        loop {
            if lvl == self.levels.len() {
                self.stats.dram_writebacks += 1;
                return;
            }
            if self.levels[lvl].probe(line, true).is_some() {
                return;
            }
            let (_, evicted) = self.levels[lvl].insert(line, true);
            match evicted {
                Some((victim, true)) => {
                    line = victim;
                    lvl += 1;
                }
                _ => return,
            }
        }
    }

    /// The coalesced consumption of one run group (see the module docs for
    /// the exactness invariants).
    fn consume_group(&mut self, g: RunGroup<'_>) {
        // Aggregate counters are linear in the trip count.
        for s in g.stmts {
            self.stats.flops += s.flops * g.steps;
        }
        let k = g.runs.len();
        self.stats.accesses += k as u64 * g.steps;
        for r in g.runs {
            self.stats.bytes_requested += r.bytes as u64 * g.steps;
        }
        if k == 0 || g.steps == 0 {
            return;
        }

        let line_mask = (1u64 << self.line_shift) - 1;
        let mut rs = std::mem::take(&mut self.scratch);
        rs.clear();
        for r in g.runs {
            let addr = (self.base_addrs[r.array.0] as i64 + r.base * r.bytes as i64) as u64;
            let line = addr >> self.line_shift;
            rs.push(RunState {
                sb: r.stride * r.bytes as i64,
                addr,
                tpos: 0,
                line,
                next_cross: 0,
                way: 0,
                l1set: self.levels[0].set_index.of(line) as usize,
                snapshot: 0,
                is_write: r.is_write,
            });
        }
        // Step 0: full probes seed each stream's L1 way and next crossing.
        for s in rs.iter_mut() {
            s.way = self.touch(s.line, s.is_write);
            s.snapshot = self.l1_set_clock[s.l1set];
            s.next_cross = next_cross(s.addr, s.sb, 0, line_mask);
        }
        let assoc0 = self.levels[0].assoc as u64;
        // With a stream that crosses on every step, no stretch can form —
        // the min-scan would be pure per-step overhead.
        let stretchable = !rs.iter().any(|s| s.sb.unsigned_abs() > line_mask);
        // Guaranteed-hit counts accumulate in a register and land on the
        // stats once per group.
        let mut hits0 = 0u64;
        let mut t = 1u64;
        while t < g.steps {
            // A stretch needs every stream's residency guarantee to hold at
            // entry: inserts from crossings late in the previous step can
            // have pushed an early stream's set past the eviction bound.
            if stretchable
                && rs
                    .iter()
                    .all(|s| self.l1_set_clock[s.l1set] - s.snapshot < assoc0)
            {
                // While no stream crosses a line boundary, every step is an
                // identical all-L1-hit step.
                let nc = rs
                    .iter()
                    .map(|s| s.next_cross)
                    .min()
                    .unwrap_or(u64::MAX)
                    .min(g.steps);
                if nc > t {
                    hits0 += k as u64 * (nc - t);
                    for s in rs.iter_mut() {
                        let l0 = &mut self.levels[0];
                        l0.clock += 1;
                        l0.ways[s.way].stamp = l0.clock;
                        let c = self.l1_set_clock[s.l1set] + 1;
                        self.l1_set_clock[s.l1set] = c;
                        s.snapshot = c;
                    }
                    t = nc;
                    if t >= g.steps {
                        break;
                    }
                }
            }
            for s in rs.iter_mut() {
                if s.next_cross == t {
                    s.addr = (s.addr as i64 + s.sb * (t - s.tpos) as i64) as u64;
                    s.tpos = t;
                    s.line = s.addr >> self.line_shift;
                    s.next_cross = next_cross(s.addr, s.sb, t, line_mask);
                    s.way = self.touch(s.line, s.is_write);
                    s.l1set = self.levels[0].set_index.of(s.line) as usize;
                    s.snapshot = self.l1_set_clock[s.l1set];
                } else if self.l1_set_clock[s.l1set] - s.snapshot < assoc0 {
                    // Same line as the previous step, and fewer than
                    // `assoc` touches of its set since the last refresh:
                    // guaranteed L1 hit (module invariant 2).
                    hits0 += 1;
                    let l0 = &mut self.levels[0];
                    l0.clock += 1;
                    l0.ways[s.way].stamp = l0.clock;
                    if s.is_write {
                        l0.dirty[s.way] = true;
                    }
                    let c = self.l1_set_clock[s.l1set] + 1;
                    self.l1_set_clock[s.l1set] = c;
                    s.snapshot = c;
                } else {
                    s.way = self.touch(s.line, s.is_write);
                    s.snapshot = self.l1_set_clock[s.l1set];
                }
            }
            t += 1;
        }
        self.stats.hits[0] += hits0;
        self.scratch = rs;
    }
}

/// First step after `t` at which a stream with byte stride `sb`, currently
/// at byte address `addr`, maps to a different line (`u64::MAX` if never).
#[inline]
fn next_cross(addr: u64, sb: i64, t: u64, line_mask: u64) -> u64 {
    if sb == 0 {
        return u64::MAX;
    }
    // A stride of at least a full line crosses on every step — the common
    // column-major-walk case, and the division below would always be 1.
    if sb.unsigned_abs() > line_mask {
        return t.saturating_add(1);
    }
    let into = addr & line_mask;
    if sb > 0 {
        t.saturating_add((line_mask + 1 - into).div_ceil(sb as u64))
    } else {
        t.saturating_add(into / sb.unsigned_abs() + 1)
    }
}

impl TraceSink for CacheSim {
    fn access(&mut self, ev: AccessEvent) {
        let addr = self.base_addrs[ev.array.0] + ev.offset * ev.bytes as u64;
        let line = addr >> self.line_shift;
        self.stats.accesses += 1;
        self.stats.bytes_requested += ev.bytes as u64;
        self.touch(line, ev.is_write);
    }

    fn flops(&mut self, n: u64) {
        self.stats.flops += n;
    }

    fn run(&mut self, g: RunGroup<'_>) {
        if self.per_event {
            // The A/B reference path: expand the group exactly like the
            // default `TraceSink::run` and feed events one by one.
            for step in 0..g.steps as i64 {
                for s in g.stmts {
                    if s.flops > 0 {
                        self.flops(s.flops);
                    }
                    for r in &g.runs[s.start as usize..(s.start + s.len) as usize] {
                        let off = r.base + r.stride * step;
                        self.access(AccessEvent {
                            array: r.array,
                            offset: off as u64,
                            bytes: r.bytes,
                            is_write: r.is_write,
                        });
                    }
                }
            }
            return;
        }
        self.consume_group(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;
    use polyufc_ir::types::ElemType;

    fn tiny_hierarchy(l1_lines: u64, assoc: u32) -> CacheHierarchy {
        CacheHierarchy::new(vec![CacheLevelConfig {
            size_bytes: l1_lines * 64,
            line_bytes: 64,
            assoc,
            shared: false,
        }])
    }

    fn program_one_array(elems: usize) -> AffineProgram {
        let mut p = AffineProgram::new("t");
        p.add_array("A", vec![elems], ElemType::F64);
        p
    }

    fn ev(offset: u64, write: bool) -> AccessEvent {
        AccessEvent {
            array: ArrayId(0),
            offset,
            bytes: 8,
            is_write: write,
        }
    }

    #[test]
    fn cold_misses_once_per_line() {
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(16, 4), &p);
        // 64 f64 = 8 lines; touch each element: 8 misses, 56 hits.
        for o in 0..64 {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 8);
        assert_eq!(sim.stats.hits[0], 56);
        assert_eq!(sim.stats.dram_line_fills, 8);
    }

    #[test]
    fn capacity_misses_on_repeat_sweep() {
        // Cache of 4 lines, working set 8 lines, two sweeps: all miss (LRU).
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        for _ in 0..2 {
            for o in (0..64).step_by(8) {
                sim.access(ev(o, false));
            }
        }
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[0], 0);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        // Touch line 0 repeatedly between other lines; it must stay.
        sim.access(ev(0, false));
        for o in [8u64, 16, 24] {
            sim.access(ev(o, false));
            sim.access(ev(0, false));
        }
        // line 0: 1 miss then hits.
        assert_eq!(sim.stats.misses[0], 4);
        assert_eq!(sim.stats.hits[0], 3);
    }

    #[test]
    fn conflict_misses_with_low_assoc() {
        // 4 sets, 1-way (direct-mapped), 4-line cache. Alternate two lines
        // mapping to the same set: all misses.
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 1), &p);
        for _ in 0..4 {
            sim.access(ev(0, false)); // line 0, set 0
            sim.access(ev(32, false)); // line 4, set 0
        }
        assert_eq!(sim.stats.hits[0], 0);
        assert_eq!(sim.stats.misses[0], 8);
        // Fully associative would hit after the first round.
        let mut sim2 = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        for _ in 0..4 {
            sim2.access(ev(0, false));
            sim2.access(ev(32, false));
        }
        assert_eq!(sim2.stats.misses[0], 2);
        assert_eq!(sim2.stats.hits[0], 6);
    }

    #[test]
    fn writebacks_counted() {
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&tiny_hierarchy(2, 2), &p);
        // Write 2 lines (fills set), then touch 2 more lines to evict both.
        sim.access(ev(0, true));
        sim.access(ev(8, true));
        sim.access(ev(16, false));
        sim.access(ev(24, false));
        assert_eq!(sim.stats.dram_writebacks, 2);
        assert_eq!(sim.stats.dram_line_fills, 4);
    }

    #[test]
    fn multi_level_hierarchy_fills() {
        let h = CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 2 * 64,
                line_bytes: 64,
                assoc: 2,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 16 * 64,
                line_bytes: 64,
                assoc: 4,
                shared: true,
            },
        ]);
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&h, &p);
        // Stream 8 lines: all miss both levels.
        for o in (0..64).step_by(8) {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 8);
        assert_eq!(sim.stats.misses[1], 8);
        // Second sweep: L1 (2 lines) misses, L2 (16 lines) hits.
        for o in (0..64).step_by(8) {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[1], 8);
        assert_eq!(sim.stats.dram_line_fills, 8);
    }

    #[test]
    fn arrays_padded_to_lines() {
        let mut p = AffineProgram::new("two");
        p.add_array("A", vec![3], ElemType::F64); // 24 bytes -> pad to 64
        p.add_array("B", vec![8], ElemType::F64);
        let sim = CacheSim::new(&tiny_hierarchy(16, 4), &p);
        assert_eq!(sim.base_addr(ArrayId(0)), 0);
        assert_eq!(sim.base_addr(ArrayId(1)), 64);
    }

    #[test]
    fn fastmod_matches_hardware_modulo() {
        // BDW's LLC has 12288 sets (non-power-of-two) — the strength
        // reduction must agree with `%` on every operand shape.
        for d in [1u64, 3, 5, 12288, 48 * 1024 / (64 * 12), 12287, 65535] {
            let idx = SetIndex::new(d);
            for line in (0..1u64 << 22).step_by(977) {
                assert_eq!(idx.of(line), line % d, "d={d} line={line}");
            }
            for line in [0u64, 1, d, d + 1, 2 * d, u32::MAX as u64] {
                assert_eq!(idx.of(line), line % d, "d={d} line={line}");
            }
        }
    }

    #[test]
    fn dirty_victim_writeback_is_not_lost() {
        // Regression for the lost-write-back bug: a dirty line evicted
        // from L1 after the L2/LLC copy was silently displaced used to
        // vanish — neither absorbed nor counted toward DRAM write-backs.
        //
        // L1: 1 set × 2 ways. L2: 2 sets × 2 ways (4 lines).
        let h = CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 2 * 64,
                line_bytes: 64,
                assoc: 2,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 4 * 64,
                line_bytes: 64,
                assoc: 2,
                shared: true,
            },
        ]);
        let p = program_one_array(2048);
        let mut sim = CacheSim::new(&h, &p);
        // Write line 0: it is now dirty in L1 and present (clean) in L2
        // set 0.
        sim.access(ev(0, true));
        // Thrash L2 set 0 with lines 2 and 4 (even lines land in L2 set 0;
        // L1's single set holds only 2 ways, so these also churn L1).
        // Line 0 stays dirty in L1? No — with 2-way L1 it gets evicted;
        // keep it hot in L1 by re-reading it between the thrashers.
        sim.access(ev(16, false)); // line 2 -> L2 set 0
        sim.access(ev(0, false)); // keep line 0 most-recent in L1
        sim.access(ev(32, false)); // line 4 -> L2 set 0, evicts line 0 from L2
        sim.access(ev(0, false)); // line 0 still resident + dirty in L1
                                  // L2 set 0 now holds lines 2 and 4; line 0 exists only in L1
                                  // (dirty). Evict it from L1 with two fresh lines.
        sim.access(ev(48, false)); // line 6
        sim.access(ev(64, false)); // line 8 -> line 0 evicted dirty from L1
                                   // The dirty victim was absent from L2: allocate-on-write-back
                                   // re-installs it there (possibly cascading). Flush everything by
                                   // thrashing both L2 sets; the dirty line must eventually reach
                                   // DRAM exactly once.
        for o in (0..2048).step_by(8) {
            sim.access(ev(o, false));
        }
        assert_eq!(
            sim.stats.dram_writebacks, 1,
            "the dirty victim must reach DRAM exactly once"
        );
        // The frozen pre-fix reference (`crate::refsim::RefSim`) loses it;
        // see `tests/writeback_regression.rs` for the explicit contrast.
    }

    #[test]
    fn end_to_end_with_interpreter() {
        use polyufc_ir::affine::{Access, AffineKernel, Loop, Statement};
        use polyufc_presburger::LinExpr;
        // Sum A[0..128]: 16 lines; one cold miss per line.
        let mut p = AffineProgram::new("sum");
        let a = p.add_array("A", vec![128], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "sum".into(),
            loops: vec![Loop::range(128)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(0)])],
                flops: 1,
            }],
        });
        let mut sim = CacheSim::new(&tiny_hierarchy(64, 8), &p);
        polyufc_ir::interp::interpret_program(&p, &mut sim);
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[0], 112);
        assert_eq!(sim.stats.flops, 128);
    }
}
