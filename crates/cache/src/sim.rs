//! An exact trace-driven, multi-level, set-associative LRU cache
//! simulator (write-allocate, write-back). This is the reference the
//! static model is validated against, and the memory system of the
//! machine simulator.

use polyufc_ir::affine::AffineProgram;
use polyufc_ir::interp::{AccessEvent, TraceSink};
use polyufc_ir::types::ArrayId;

use crate::config::CacheHierarchy;

/// Aggregate counters of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Per-level hits.
    pub hits: Vec<u64>,
    /// Per-level misses.
    pub misses: Vec<u64>,
    /// Lines fetched from DRAM (LLC misses).
    pub dram_line_fills: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total flops.
    pub flops: u64,
    /// Total bytes requested by the program (not unique).
    pub bytes_requested: u64,
}

impl SimStats {
    /// Bytes moved between LLC and DRAM for fills (`Q_DRAM` in the paper's
    /// `Miss_LLC · ℓ` sense).
    pub fn dram_fill_bytes(&self, line_bytes: u64) -> u64 {
        self.dram_line_fills * line_bytes
    }

    /// Total DRAM traffic including writebacks.
    pub fn dram_total_bytes(&self, line_bytes: u64) -> u64 {
        (self.dram_line_fills + self.dram_writebacks) * line_bytes
    }

    /// Hit ratio of level `i` (hits / accesses reaching that level).
    pub fn hit_ratio(&self, level: usize) -> f64 {
        let a = self.hits[level] + self.misses[level];
        if a == 0 {
            0.0
        } else {
            self.hits[level] as f64 / a as f64
        }
    }
}

struct Level {
    n_sets: u64,
    assoc: usize,
    /// Flat `n_sets × assoc` entries, MRU first within each set;
    /// `(tag, dirty)` with `EMPTY` marking unused ways.
    entries: Vec<(u64, bool)>,
}

const EMPTY: u64 = u64::MAX;

impl Level {
    fn new(n_sets: u64, assoc: usize) -> Self {
        Level {
            n_sets,
            assoc,
            entries: vec![(EMPTY, false); n_sets as usize * assoc],
        }
    }

    /// Returns `true` on hit; updates LRU order and dirtiness.
    #[inline]
    fn access(&mut self, line: u64, write: bool) -> bool {
        let s = (line % self.n_sets) as usize * self.assoc;
        let set = &mut self.entries[s..s + self.assoc];
        if let Some(pos) = set.iter().position(|&(t, _)| t == line) {
            let (_, d) = set[pos];
            set.copy_within(0..pos, 1);
            set[0] = (line, d || write);
            true
        } else {
            false
        }
    }

    /// Inserts a line (after a miss); returns the evicted `(line, dirty)`
    /// if a valid way was displaced.
    #[inline]
    fn insert(&mut self, line: u64, write: bool) -> Option<(u64, bool)> {
        let s = (line % self.n_sets) as usize * self.assoc;
        let set = &mut self.entries[s..s + self.assoc];
        let victim = set[self.assoc - 1];
        set.copy_within(0..self.assoc - 1, 1);
        set[0] = (line, write);
        (victim.0 != EMPTY).then_some(victim)
    }
}

/// The simulator. Implements [`TraceSink`] so it can be fed directly from
/// the affine interpreter.
pub struct CacheSim {
    levels: Vec<Level>,
    line_bytes: u64,
    base_addrs: Vec<u64>,
    /// Statistics accumulated so far.
    pub stats: SimStats,
}

impl std::fmt::Debug for CacheSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSim")
            .field("levels", &self.levels.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl CacheSim {
    /// Builds a simulator for a program: arrays are laid out contiguously,
    /// each padded to a line boundary (matching typical allocator
    /// behavior).
    pub fn new(hierarchy: &CacheHierarchy, program: &AffineProgram) -> Self {
        let line = hierarchy.line_bytes();
        let mut base_addrs = Vec::with_capacity(program.arrays.len());
        let mut next = 0u64;
        for a in &program.arrays {
            base_addrs.push(next);
            let sz = a.size_bytes() as u64;
            next += sz.div_ceil(line) * line;
        }
        let levels = hierarchy
            .levels
            .iter()
            .map(|l| Level::new(l.n_sets(), l.assoc as usize))
            .collect::<Vec<_>>();
        let n = levels.len();
        CacheSim {
            levels,
            line_bytes: line,
            base_addrs,
            stats: SimStats {
                hits: vec![0; n],
                misses: vec![0; n],
                ..SimStats::default()
            },
        }
    }

    /// The base address assigned to an array.
    pub fn base_addr(&self, array: ArrayId) -> u64 {
        self.base_addrs[array.0]
    }

    fn touch(&mut self, line: u64, write: bool) {
        let n = self.levels.len();
        for i in 0..n {
            if self.levels[i].access(line, write && i == 0) {
                self.stats.hits[i] += 1;
                // Fill the line into the faster levels it missed in.
                for j in (0..i).rev() {
                    if let Some((ev, d)) = self.levels[j].insert(line, write && j == 0) {
                        // A dirty eviction from a private level is absorbed
                        // by the next level (write-back).
                        if d && j + 1 < n {
                            self.levels[j + 1].access(ev, true);
                        }
                    }
                }
                return;
            }
            self.stats.misses[i] += 1;
        }
        // Missed everywhere: fetch from DRAM, fill all levels.
        self.stats.dram_line_fills += 1;
        for j in (0..n).rev() {
            if let Some((ev, d)) = self.levels[j].insert(line, write && j == 0) {
                if d {
                    if j + 1 < n {
                        self.levels[j + 1].access(ev, true);
                    } else {
                        self.stats.dram_writebacks += 1;
                    }
                }
            }
        }
    }
}

impl TraceSink for CacheSim {
    fn access(&mut self, ev: AccessEvent) {
        let addr = self.base_addrs[ev.array.0] + ev.offset * ev.bytes as u64;
        let line = addr / self.line_bytes;
        self.stats.accesses += 1;
        self.stats.bytes_requested += ev.bytes as u64;
        self.touch(line, ev.is_write);
    }

    fn flops(&mut self, n: u64) {
        self.stats.flops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;
    use polyufc_ir::types::ElemType;

    fn tiny_hierarchy(l1_lines: u64, assoc: u32) -> CacheHierarchy {
        CacheHierarchy::new(vec![CacheLevelConfig {
            size_bytes: l1_lines * 64,
            line_bytes: 64,
            assoc,
            shared: false,
        }])
    }

    fn program_one_array(elems: usize) -> AffineProgram {
        let mut p = AffineProgram::new("t");
        p.add_array("A", vec![elems], ElemType::F64);
        p
    }

    fn ev(offset: u64, write: bool) -> AccessEvent {
        AccessEvent {
            array: ArrayId(0),
            offset,
            bytes: 8,
            is_write: write,
        }
    }

    #[test]
    fn cold_misses_once_per_line() {
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(16, 4), &p);
        // 64 f64 = 8 lines; touch each element: 8 misses, 56 hits.
        for o in 0..64 {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 8);
        assert_eq!(sim.stats.hits[0], 56);
        assert_eq!(sim.stats.dram_line_fills, 8);
    }

    #[test]
    fn capacity_misses_on_repeat_sweep() {
        // Cache of 4 lines, working set 8 lines, two sweeps: all miss (LRU).
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        for _ in 0..2 {
            for o in (0..64).step_by(8) {
                sim.access(ev(o, false));
            }
        }
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[0], 0);
    }

    #[test]
    fn lru_keeps_hot_line() {
        let p = program_one_array(64);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        // Touch line 0 repeatedly between other lines; it must stay.
        sim.access(ev(0, false));
        for o in [8u64, 16, 24] {
            sim.access(ev(o, false));
            sim.access(ev(0, false));
        }
        // line 0: 1 miss then hits.
        assert_eq!(sim.stats.misses[0], 4);
        assert_eq!(sim.stats.hits[0], 3);
    }

    #[test]
    fn conflict_misses_with_low_assoc() {
        // 4 sets, 1-way (direct-mapped), 4-line cache. Alternate two lines
        // mapping to the same set: all misses.
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&tiny_hierarchy(4, 1), &p);
        for _ in 0..4 {
            sim.access(ev(0, false)); // line 0, set 0
            sim.access(ev(32, false)); // line 4, set 0
        }
        assert_eq!(sim.stats.hits[0], 0);
        assert_eq!(sim.stats.misses[0], 8);
        // Fully associative would hit after the first round.
        let mut sim2 = CacheSim::new(&tiny_hierarchy(4, 4), &p);
        for _ in 0..4 {
            sim2.access(ev(0, false));
            sim2.access(ev(32, false));
        }
        assert_eq!(sim2.stats.misses[0], 2);
        assert_eq!(sim2.stats.hits[0], 6);
    }

    #[test]
    fn writebacks_counted() {
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&tiny_hierarchy(2, 2), &p);
        // Write 2 lines (fills set), then touch 2 more lines to evict both.
        sim.access(ev(0, true));
        sim.access(ev(8, true));
        sim.access(ev(16, false));
        sim.access(ev(24, false));
        assert_eq!(sim.stats.dram_writebacks, 2);
        assert_eq!(sim.stats.dram_line_fills, 4);
    }

    #[test]
    fn multi_level_hierarchy_fills() {
        let h = CacheHierarchy::new(vec![
            CacheLevelConfig {
                size_bytes: 2 * 64,
                line_bytes: 64,
                assoc: 2,
                shared: false,
            },
            CacheLevelConfig {
                size_bytes: 16 * 64,
                line_bytes: 64,
                assoc: 4,
                shared: true,
            },
        ]);
        let p = program_one_array(1024);
        let mut sim = CacheSim::new(&h, &p);
        // Stream 8 lines: all miss both levels.
        for o in (0..64).step_by(8) {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 8);
        assert_eq!(sim.stats.misses[1], 8);
        // Second sweep: L1 (2 lines) misses, L2 (16 lines) hits.
        for o in (0..64).step_by(8) {
            sim.access(ev(o, false));
        }
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[1], 8);
        assert_eq!(sim.stats.dram_line_fills, 8);
    }

    #[test]
    fn arrays_padded_to_lines() {
        let mut p = AffineProgram::new("two");
        p.add_array("A", vec![3], ElemType::F64); // 24 bytes -> pad to 64
        p.add_array("B", vec![8], ElemType::F64);
        let sim = CacheSim::new(&tiny_hierarchy(16, 4), &p);
        assert_eq!(sim.base_addr(ArrayId(0)), 0);
        assert_eq!(sim.base_addr(ArrayId(1)), 64);
    }

    #[test]
    fn end_to_end_with_interpreter() {
        use polyufc_ir::affine::{Access, AffineKernel, Loop, Statement};
        use polyufc_presburger::LinExpr;
        // Sum A[0..128]: 16 lines; one cold miss per line.
        let mut p = AffineProgram::new("sum");
        let a = p.add_array("A", vec![128], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "sum".into(),
            loops: vec![Loop::range(128)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![Access::read(a, vec![LinExpr::var(0)])],
                flops: 1,
            }],
        });
        let mut sim = CacheSim::new(&tiny_hierarchy(64, 8), &p);
        polyufc_ir::interp::interpret_program(&p, &mut sim);
        assert_eq!(sim.stats.misses[0], 16);
        assert_eq!(sim.stats.hits[0], 112);
        assert_eq!(sim.stats.flops, 128);
    }
}
