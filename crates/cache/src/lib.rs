//! PolyUFC-CM: cache modeling for affine programs.
//!
//! Three components, mirroring the paper's Sec. IV:
//!
//! * [`config`] — set-associative multi-level cache hierarchy descriptions.
//! * [`sim`] — an exact trace-driven LRU set-associative simulator (the
//!   Dinero-style reference; stands in for the hardware's caches and
//!   validates the static model).
//! * [`model`] — the static PolyUFC-CM analysis: compulsory-miss counting
//!   from distinct-line footprints, capacity/conflict misses from
//!   per-loop-level working sets spread over cache sets (set-associative
//!   mode) or compared against total capacity (fully-associative mode),
//!   and the thread-sharing heuristic (sequential miss counts divided by
//!   the thread count, paper Sec. IV-B).
//! * [`exact`] — the paper's exact reuse-distance formulation (forward /
//!   backward reuse maps built from lexicographic-order relations and map
//!   composition, Fig. 4), practical for small kernels and used to
//!   validate the scalable model.
//! * [`refsim`] — the frozen pre-coalescing per-event simulator, kept as
//!   the throughput baseline and as the contrast subject for the
//!   write-back regression test.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod exact;
pub mod model;
pub mod refsim;
pub mod sim;

pub use config::{AssocMode, CacheHierarchy, CacheLevelConfig};
pub use model::{CacheModel, KernelCacheStats, LevelStats, ModelError};
pub use refsim::RefSim;
pub use sim::{CacheSim, SimStats};
