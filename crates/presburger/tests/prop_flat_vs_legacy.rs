//! Differential property tests: the flat arena-row solver core must agree
//! with the frozen per-constraint reference core (`reference` module) on
//! emptiness, sampling, membership, and counting over random boxes,
//! triangles, bands, and strided sets — the shape classes the cache model
//! and the analysis passes actually feed the solver.

use proptest::prelude::*;

use polyufc_presburger::{reference, BasicSet, CountLimit, LinExpr, Space};

/// A random inequality `a*i + b*j + c >= 0` over a 2-D space.
fn arb_constraint() -> impl Strategy<Value = (i64, i64, i64)> {
    (-3i64..=3, -3i64..=3, -12i64..=12)
}

/// A random 2-D basic set: a bounding box plus up to three inequalities.
fn arb_basic_set() -> impl Strategy<Value = BasicSet> {
    proptest::collection::vec(arb_constraint(), 0..4).prop_map(|cs| {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 7);
        b.add_range(1, 0, 7);
        for (a, bb, c) in cs {
            b.add_ge0(LinExpr::var(0) * a + LinExpr::var(1) * bb + LinExpr::constant(c));
        }
        b
    })
}

/// A random triangle `{ lo <= i <= hi, 0 <= j, a*i - j + c >= 0 }`.
fn arb_triangle() -> impl Strategy<Value = BasicSet> {
    (0i64..=3, 4i64..=9, 1i64..=2, -2i64..=2).prop_map(|(lo, hi, a, c)| {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, lo, hi);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) * a - LinExpr::var(1) + LinExpr::constant(c));
        b
    })
}

/// A random band `{ 0 <= i, j < n, |i - j| <= w }`.
fn arb_band() -> impl Strategy<Value = BasicSet> {
    (4i64..=12, 0i64..=3).prop_map(|(n, w)| {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n - 1);
        b.add_range(1, 0, n - 1);
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(w));
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(w));
        b
    })
}

/// A random strided set `{ 0 <= i < n, i mod d == r }` via a determined div.
fn arb_stride() -> impl Strategy<Value = BasicSet> {
    (8i64..=32, 2i64..=5, 0i64..=4).prop_map(|(n, d, r)| {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, n - 1);
        let q = b.add_div(LinExpr::var(0) - LinExpr::constant(r % d), d);
        b.add_eq(LinExpr::var(0) - LinExpr::constant(r % d) - LinExpr::var(q) * d);
        b
    })
}

/// Asserts flat and reference cores agree on every query for one set.
fn assert_cores_agree(b: &BasicSet) -> Result<(), String> {
    // Emptiness.
    let flat_empty = b.is_empty().unwrap();
    let ref_empty = reference::is_empty(b).unwrap();
    prop_assert_eq!(flat_empty, ref_empty);

    // Sampling: both must agree on existence, and each core's point must
    // satisfy the constraints (points themselves may legally differ —
    // they don't in practice, but membership is the contract).
    let flat_pt = b.sample().unwrap();
    let ref_pt = reference::sample(b).unwrap();
    prop_assert_eq!(flat_pt.is_some(), ref_pt.is_some());
    prop_assert_eq!(flat_pt.is_some(), !flat_empty);
    for pt in flat_pt.iter().chain(&ref_pt) {
        prop_assert!(b.contains(&pt[..b.space().n_dim()]).unwrap());
    }
    // The deterministic search order is shared, so the actual points are
    // pinned equal too (witness stability across the rewrite).
    prop_assert_eq!(flat_pt, ref_pt);

    // Counting.
    let flat_count = polyufc_presburger::Set::from_basic(b.clone())
        .count_with_limit(CountLimit::default())
        .unwrap();
    let ref_count = reference::count(b, CountLimit::default()).unwrap();
    prop_assert_eq!(flat_count, ref_count);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn boxes_and_random_cuts_agree(b in arb_basic_set()) {
        assert_cores_agree(&b)?;
    }

    #[test]
    fn triangles_agree(b in arb_triangle()) {
        assert_cores_agree(&b)?;
    }

    #[test]
    fn bands_agree(b in arb_band()) {
        assert_cores_agree(&b)?;
    }

    #[test]
    fn strides_agree(b in arb_stride()) {
        assert_cores_agree(&b)?;
    }

    #[test]
    fn contains_agrees_with_both_counts(b in arb_basic_set()) {
        // Brute membership is the shared oracle: the flat count and the
        // reference count must both equal it.
        let mut brute = 0i128;
        for i in 0..8 {
            for j in 0..8 {
                if b.contains(&[i, j]).unwrap() {
                    brute += 1;
                }
            }
        }
        let flat = polyufc_presburger::Set::from_basic(b.clone())
            .count_with_limit(CountLimit::default())
            .unwrap();
        let refc = reference::count(&b, CountLimit::default()).unwrap();
        prop_assert_eq!(flat, brute);
        prop_assert_eq!(refc, brute);
    }
}
