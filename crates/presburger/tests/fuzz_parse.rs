//! Fuzz-style robustness tests for the textual constraint parser: any
//! input string — including adversarial ones — must produce `Ok` or a
//! typed `Error`, never a panic or abort.

use proptest::prelude::*;

use polyufc_presburger::{Error, Set, Space};

/// Character pool biased toward the constraint grammar so fuzz inputs
/// reach deep into the parser instead of dying at the first byte.
const POOL: &[char] = &[
    'i', 'j', 'k', 'l', 'm', 'n', 'p', 'q', 'd', 'x', 'z', '0', '1', '2', '9', '+', '-', '*', '<',
    '>', '=', ' ', '(', ')', ',', '~', '.',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Garbage in, `Err` (or a valid parse) out — never a panic.
    #[test]
    fn arbitrary_constraint_strings_never_panic(
        picks in proptest::collection::vec(0usize..POOL.len(), 0..48)
    ) {
        let s: String = picks.iter().map(|&i| POOL[i]).collect();
        for space in [Space::set(0, 1), Space::set(2, 3)] {
            // The result does not matter; reaching this line does.
            let _ = Set::from_constraint_strs(space, &[&s]);
        }
    }
}

#[test]
fn overflowing_coefficients_are_typed_errors() {
    let sp = Space::set(1, 2);
    // 20 nines overflow i64 during digit accumulation.
    let big = "9".repeat(20);
    for s in [
        format!("{big}i >= 0"),
        format!("i <= {big}"),
        format!("{big} >= {big}"),
    ] {
        match Set::from_constraint_strs(sp.clone(), &[s.as_str()]) {
            Err(Error::Overflow) => {}
            other => panic!("`{s}` should overflow, got {other:?}"),
        }
    }
    // Large-but-representable coefficients still parse.
    assert!(Set::from_constraint_strs(sp, &["1000000000i >= 0"]).is_ok());
}

#[test]
fn malformed_inputs_are_parse_errors() {
    let sp = Space::set(1, 2);
    // (An empty relation side is lenient-by-design and parses as 0, so
    // `i >=` is not in this list.)
    for s in ["", "i", "i ~ 0", "d99 >= 0", "p99 <= n", "zz > 1"] {
        assert!(
            matches!(
                Set::from_constraint_strs(sp.clone(), &[s]),
                Err(Error::Parse(_))
            ),
            "`{s}` should be a parse error"
        );
    }
}
