//! The `POLYUFC_PRESBURGER_PATH=legacy` lever: setting the environment
//! variable before the first query routes every solver entry point to the
//! frozen reference core, and `force_presburger_path` overrides it both
//! ways. One `#[test]` only — the lever latches the environment on first
//! read (process-wide `OnceLock`), so this file owns its own process and
//! sets the variable before anything queries.

use polyufc_presburger::{
    force_presburger_path, presburger_path, BasicSet, LinExpr, PresburgerPath, Set, Space,
};

fn triangle() -> BasicSet {
    let mut b = BasicSet::universe(Space::set(0, 2));
    b.add_range(0, 0, 7);
    b.add_ge0(LinExpr::var(1));
    b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
    b
}

#[test]
fn env_lever_selects_legacy_and_force_overrides() {
    // Must happen before the first solver query in this process.
    std::env::set_var("POLYUFC_PRESBURGER_PATH", "legacy");

    assert_eq!(presburger_path(), PresburgerPath::Legacy);
    let b = triangle();
    // Legacy path answers and agrees with ground truth.
    assert!(!b.is_empty().unwrap());
    assert_eq!(Set::from_basic(b.clone()).count().unwrap(), 36);
    let pt = b.sample().unwrap().expect("inhabited");
    assert!(b.contains(&pt[..2]).unwrap());

    // Forcing flat overrides the environment...
    force_presburger_path(Some(PresburgerPath::Flat));
    assert_eq!(presburger_path(), PresburgerPath::Flat);
    assert_eq!(Set::from_basic(b.clone()).count().unwrap(), 36);
    assert_eq!(b.sample().unwrap(), Some(pt.clone()));

    // ...forcing legacy explicitly works too...
    force_presburger_path(Some(PresburgerPath::Legacy));
    assert_eq!(presburger_path(), PresburgerPath::Legacy);
    assert_eq!(Set::from_basic(b.clone()).count().unwrap(), 36);

    // ...and releasing the override falls back to the (legacy) env.
    force_presburger_path(None);
    assert_eq!(presburger_path(), PresburgerPath::Legacy);
}
