//! Differential tests for the closed-form symbolic counting layer: on
//! random conjunctive systems drawn from the shape classes the cache model
//! actually produces (boxes, triangles, bands, mod-`m` strides), the
//! symbolic path, the recursive enumerator, and exhaustive point
//! enumeration must report the identical cardinality.

use proptest::prelude::*;

use polyufc_presburger::{
    count_basic_enumerative, symbolic_count, BasicSet, CountLimit, LinExpr, Set, Space,
};

/// Brute-force reference over a bounding grid that covers every generated
/// set (extents are kept within `[-1, 20]` by construction).
fn brute(b: &BasicSet) -> i128 {
    let dims = b.space().n_dim();
    let mut count = 0i128;
    let mut point = vec![0i64; dims];
    fn rec(b: &BasicSet, point: &mut Vec<i64>, d: usize, count: &mut i128) {
        if d == point.len() {
            if b.contains(point).unwrap() {
                *count += 1;
            }
            return;
        }
        for x in -1..=20 {
            point[d] = x;
            rec(b, point, d + 1, count);
        }
    }
    rec(b, &mut point, 0, &mut count);
    count
}

/// Checks all counting strategies against the brute-force reference. The
/// symbolic path may decline (`None`) on shapes outside its fragment, but
/// must never disagree. (The vendored proptest reports failures as
/// `String`s, hence the return type.)
fn check_all_paths(b: &BasicSet) -> Result<(), String> {
    let reference = brute(b);
    let enumerated = count_basic_enumerative(b, CountLimit::default()).unwrap();
    prop_assert_eq!(enumerated, reference, "recursive enumerator disagrees");
    if let Some(symbolic) = symbolic_count(b) {
        prop_assert_eq!(symbolic, reference, "symbolic path disagrees");
    }
    let set = Set::from_basic(b.clone());
    prop_assert_eq!(set.count().unwrap(), reference, "production path disagrees");
    let points = set.enumerate(100_000).unwrap();
    prop_assert_eq!(
        points.len() as i128,
        reference,
        "point enumeration disagrees"
    );
    Ok(())
}

/// A random box `lo_d <= v_d <= hi_d` in 2 or 3 dimensions.
fn arb_box() -> impl Strategy<Value = BasicSet> {
    (
        2usize..=3,
        proptest::collection::vec((0i64..=10, 0i64..=10), 3),
    )
        .prop_map(|(dims, ranges)| {
            let mut b = BasicSet::universe(Space::set(0, dims));
            for (d, &(a, c)) in ranges.iter().take(dims).enumerate() {
                b.add_range(d, a.min(c), a.max(c));
            }
            b
        })
}

/// A triangle `0 <= i <= n, 0 <= j, j <= i + shift` with an optional
/// extra halfplane — the cholesky/lu/trisolv shape.
fn arb_triangle() -> impl Strategy<Value = BasicSet> {
    (
        3i64..=15,
        -2i64..=2,
        any::<bool>(),
        (-2i64..=2, -2i64..=2, -6i64..=6),
    )
        .prop_map(|(n, shift, with_extra, (ci, cj, k))| {
            let mut b = BasicSet::universe(Space::set(0, 2));
            b.add_range(0, 0, n);
            b.add_ge0(LinExpr::var(1));
            b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(shift));
            if with_extra {
                b.add_ge0(LinExpr::var(0) * ci + LinExpr::var(1) * cj + LinExpr::constant(k));
            }
            b
        })
}

/// A band `|i - j| <= w` inside a box — the jacobi/stencil shape.
fn arb_band() -> impl Strategy<Value = BasicSet> {
    (4i64..=15, 0i64..=4).prop_map(|(n, w)| {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n);
        b.add_range(1, 0, n);
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(w));
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(w));
        b
    })
}

/// A strided set `i ≡ r (mod m)` inside a box, via a determined div.
fn arb_stride() -> impl Strategy<Value = BasicSet> {
    (6i64..=18, 2i64..=4, 0i64..=3, any::<bool>()).prop_map(|(n, m, r, couple)| {
        let r = r % m;
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n);
        b.add_range(1, 0, 7);
        let subject = if couple {
            LinExpr::var(0) + LinExpr::var(1)
        } else {
            LinExpr::var(0)
        };
        let q = b.add_div(subject.clone(), m);
        b.add_eq(subject - LinExpr::var(q) * m - LinExpr::constant(r));
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boxes_agree(b in arb_box()) {
        check_all_paths(&b)?;
        // Boxes are always inside the symbolic fragment.
        prop_assert!(symbolic_count(&b).is_some());
    }

    #[test]
    fn triangles_agree(b in arb_triangle()) {
        check_all_paths(&b)?;
    }

    #[test]
    fn bands_agree(b in arb_band()) {
        check_all_paths(&b)?;
        prop_assert!(symbolic_count(&b).is_some());
    }

    #[test]
    fn strides_agree(b in arb_stride()) {
        check_all_paths(&b)?;
    }

    #[test]
    fn random_conjunctions_agree(
        base in prop_oneof![arb_box(), arb_triangle(), arb_band()],
        extras in proptest::collection::vec((-3i64..=3, -3i64..=3, -12i64..=12), 0..3),
    ) {
        // Layer random halfplanes on a structured base: the symbolic path
        // must keep agreeing (or declining) as shapes leave the fragment.
        let mut b = base;
        for (ci, cj, k) in extras {
            b.add_ge0(LinExpr::var(0) * ci + LinExpr::var(1) * cj + LinExpr::constant(k));
        }
        check_all_paths(&b)?;
    }
}
