//! Property-based tests: the symbolic set algebra must agree with
//! brute-force point semantics on random small sets and relations.

use proptest::prelude::*;

use polyufc_presburger::{lex_lt_map, BasicMap, BasicSet, LinExpr, Map, Set, Space};

/// A random inequality `a*i + b*j + c >= 0` over a 2-D space.
fn arb_constraint() -> impl Strategy<Value = (i64, i64, i64)> {
    (-3i64..=3, -3i64..=3, -12i64..=12)
}

/// A random 2-D basic set: a bounding box plus up to three inequalities.
fn arb_basic_set() -> impl Strategy<Value = BasicSet> {
    proptest::collection::vec(arb_constraint(), 0..4).prop_map(|cs| {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 7);
        b.add_range(1, 0, 7);
        for (a, bb, c) in cs {
            b.add_ge0(LinExpr::var(0) * a + LinExpr::var(1) * bb + LinExpr::constant(c));
        }
        b
    })
}

fn brute_points(b: &BasicSet) -> std::collections::BTreeSet<Vec<i64>> {
    let mut out = std::collections::BTreeSet::new();
    for i in 0..8 {
        for j in 0..8 {
            if b.contains(&[i, j]).unwrap() {
                out.insert(vec![i, j]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_matches_enumeration(b in arb_basic_set()) {
        let s = Set::from_basic(b.clone());
        let counted = s.count().unwrap();
        let brute = brute_points(&b).len() as i128;
        prop_assert_eq!(counted, brute);
        let enumerated = s.enumerate(1000).unwrap();
        prop_assert_eq!(enumerated.len() as i128, brute);
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_basic_set(), b in arb_basic_set()) {
        let sa = Set::from_basic(a.clone());
        let sb = Set::from_basic(b.clone());
        let inter = sa.intersect(&sb).unwrap();
        let expect: std::collections::BTreeSet<_> =
            brute_points(&a).intersection(&brute_points(&b)).cloned().collect();
        let got: std::collections::BTreeSet<_> =
            inter.enumerate(1000).unwrap().into_iter().collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(inter.count().unwrap(), 0i128.max(expect_len(&a, &b)));
    }

    #[test]
    fn subtraction_is_pointwise_difference(a in arb_basic_set(), b in arb_basic_set()) {
        let d = Set::from_basic(a.clone()).subtract(&Set::from_basic(b.clone())).unwrap();
        let expect: std::collections::BTreeSet<_> =
            brute_points(&a).difference(&brute_points(&b)).cloned().collect();
        let got: std::collections::BTreeSet<_> =
            d.enumerate(1000).unwrap().into_iter().collect();
        prop_assert_eq!(&got, &expect);
        // Disjoint pieces: count must equal cardinality, not overcount.
        prop_assert_eq!(d.count().unwrap(), expect.len() as i128);
    }

    #[test]
    fn union_preserves_membership_and_count(a in arb_basic_set(), b in arb_basic_set()) {
        let u = Set::from_basic(a.clone()).union(&Set::from_basic(b.clone())).unwrap();
        let expect: std::collections::BTreeSet<_> =
            brute_points(&a).union(&brute_points(&b)).cloned().collect();
        prop_assert_eq!(u.count().unwrap(), expect.len() as i128);
        for p in &expect {
            prop_assert!(u.contains(p).unwrap());
        }
    }

    #[test]
    fn div_sets_count_matches_enumeration(
        modulus in 2i64..6,
        residue in 0i64..5,
        cs in proptest::collection::vec(arb_constraint(), 0..3),
    ) {
        // Random 2-D set with a modular constraint on i + j.
        let residue = residue % modulus;
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 7);
        b.add_range(1, 0, 7);
        for (a, bb, c) in cs {
            b.add_ge0(LinExpr::var(0) * a + LinExpr::var(1) * bb + LinExpr::constant(c));
        }
        let q = b.add_div(LinExpr::var(0) + LinExpr::var(1), modulus);
        b.add_eq(
            LinExpr::var(0) + LinExpr::var(1)
                - LinExpr::var(q) * modulus
                - LinExpr::constant(residue),
        );
        let s = Set::from_basic(b.clone());
        let brute = (0..8i64)
            .flat_map(|i| (0..8i64).map(move |j| (i, j)))
            .filter(|&(i, j)| b.contains(&[i, j]).unwrap())
            .count() as i128;
        prop_assert_eq!(s.count().unwrap(), brute);
        prop_assert_eq!(s.enumerate(1000).unwrap().len() as i128, brute);
    }

    #[test]
    fn cached_count_matches_uncached(a in arb_basic_set(), b in arb_basic_set()) {
        // Memoized counting must be invisible: same results as the plain
        // counter, repeat queries answered from the cache.
        let mut cache = polyufc_presburger::CountCache::new();
        let sa = Set::from_basic(a.clone());
        let sb = Set::from_basic(b.clone());
        let c1 = sa.count_cached(&mut cache).unwrap();
        let c2 = sa.count_cached(&mut cache).unwrap();
        let c3 = sb.count_cached(&mut cache).unwrap();
        prop_assert_eq!(c1, sa.count().unwrap());
        prop_assert_eq!(c1, brute_points(&a).len() as i128);
        prop_assert_eq!(c2, c1);
        prop_assert_eq!(c3, sb.count().unwrap());
        // The second identical query must be a hit, and stats must add up.
        prop_assert!(cache.hits() >= 1);
        prop_assert!(cache.misses() >= 1);
        prop_assert!(cache.len() as u64 <= cache.misses());
    }

    #[test]
    fn subset_relation_consistent(a in arb_basic_set(), b in arb_basic_set()) {
        let sa = Set::from_basic(a.clone());
        let sb = Set::from_basic(b.clone());
        let inter = sa.intersect(&sb).unwrap();
        // inter ⊆ a and inter ⊆ b always.
        prop_assert!(inter.is_subset(&sa).unwrap());
        prop_assert!(inter.is_subset(&sb).unwrap());
        // a ⊆ b iff brute-force containment holds.
        let brute = brute_points(&a).is_subset(&brute_points(&b));
        prop_assert_eq!(sa.is_subset(&sb).unwrap(), brute);
    }

    #[test]
    fn sample_is_member(a in arb_basic_set()) {
        let s = Set::from_basic(a.clone());
        match s.sample_point().unwrap() {
            Some(p) => prop_assert!(a.contains(&p).unwrap()),
            None => prop_assert_eq!(s.count().unwrap(), 0),
        }
    }

    #[test]
    fn emptiness_agrees_with_count(a in arb_basic_set()) {
        let s = Set::from_basic(a.clone());
        prop_assert_eq!(s.is_empty().unwrap(), s.count().unwrap() == 0);
    }

    #[test]
    fn projection_is_exact(a in arb_basic_set()) {
        let s = Set::from_basic(a.clone()).project_out(1, 1);
        let expect: std::collections::BTreeSet<i64> =
            brute_points(&a).into_iter().map(|p| p[0]).collect();
        let got: std::collections::BTreeSet<i64> =
            s.enumerate(1000).unwrap().into_iter().map(|p| p[0]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn lexmin_explicit_minimal(a in arb_basic_set()) {
        // View the 2-D set as a relation { [i] -> [j] } and take lexmin.
        let m = Map::from_basic(BasicMap::from_basic_set(
            a.clone().recast(Space::map(0, 1, 1)),
        ));
        let lm = m.lexmin_explicit(1000).unwrap();
        let pts = brute_points(&a);
        for (x, y) in &lm {
            // (x, y) must be a member and minimal among images of x.
            prop_assert!(pts.contains(&vec![x[0], y[0]]));
            for j in 0..8 {
                if pts.contains(&vec![x[0], j]) {
                    prop_assert!(y[0] <= j);
                }
            }
        }
        // Every domain point appears exactly once.
        let doms: std::collections::BTreeSet<i64> = pts.iter().map(|p| p[0]).collect();
        prop_assert_eq!(lm.len(), doms.len());
    }
}

/// Cardinality of the brute-force intersection (helper kept out of the
/// proptest block for clarity).
fn expect_len(a: &BasicSet, b: &BasicSet) -> i128 {
    brute_points(a).intersection(&brute_points(b)).count() as i128
}

#[test]
fn lex_lt_composition_semantics() {
    // Successor structure under lexicographic order on 2-D points.
    let m = lex_lt_map(0, 2);
    let mut dom = BasicSet::universe(Space::set(0, 2));
    dom.add_range(0, 0, 2);
    dom.add_range(1, 0, 2);
    let mut restricted = Map::empty(m.space().clone());
    for b in m.basics() {
        let r = b
            .intersect_domain(&dom)
            .unwrap()
            .intersect_range(&dom)
            .unwrap();
        restricted = restricted.union_disjoint(&Map::from_basic(r)).unwrap();
    }
    // 9 points, C(9,2) = 36 strictly ordered pairs.
    assert_eq!(restricted.count_pairs().unwrap(), 36);
}
