//! A small Presburger-arithmetic library: integer sets and relations bounded
//! by affine constraints, in the spirit of [isl] with [barvinok]-style
//! point counting.
//!
//! This crate is the polyhedral substrate of the PolyUFC reproduction. It
//! provides:
//!
//! * [`Space`] — the signature of a set or relation (parameters, input and
//!   output dimensions).
//! * [`LinExpr`] — affine expressions over the variables of a space.
//! * [`BasicSet`] / [`Set`] — conjunctions (resp. finite unions of
//!   conjunctions) of affine constraints, with optional existentially
//!   quantified *div* variables for integer division and modulo.
//! * [`BasicMap`] / [`Map`] — binary integer relations with the same
//!   constraint language, supporting composition, inversion, and
//!   domain/range operations.
//! * Lexicographic order helpers and [`Map::lexmin_explicit`].
//! * Integer point counting ([`Set::count`]) by closed-form symbolic
//!   summation ([`symbolic_count`]) with recursive bound decomposition,
//!   connected-component factoring, and a verified enumerating fallback
//!   ([`count_basic_enumerative`]), plus an exhaustive enumerator for
//!   validation.
//!
//! Unlike isl, parametric contexts are expected to be *instantiated*: the
//! PolyUFC pipeline fixes problem sizes before the heavy cache-model
//! queries, so counting returns plain integers rather than quasi-polynomials
//! (see DESIGN.md for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use polyufc_presburger::{Space, Set};
//!
//! // { [i, j] : 0 <= i < 8, 0 <= j <= i }
//! let space = Space::set(0, 2);
//! let set = Set::from_constraint_strs(space, &["i >= 0", "7 - i >= 0", "j >= 0", "i - j >= 0"])
//!     .unwrap();
//! assert_eq!(set.count().unwrap(), 36);
//! ```
//!
//! [isl]: https://libisl.sourceforge.io/
//! [barvinok]: https://barvinok.sourceforge.io/

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod basic;
mod context;
mod count;
mod enumerate;
mod error;
mod lexorder;
mod linexpr;
mod map;
mod parse;
mod path;
mod polysum;
pub mod reference;
mod set;
mod space;

pub use basic::{BasicSet, Div};
pub use context::{Context, Emptiness};
pub use count::{count_basic_enumerative, CountCache, CountLimit};
pub use error::{Error, Result};
pub use lexorder::{lex_ge_map, lex_gt_map, lex_le_map, lex_lt_map};
pub use linexpr::LinExpr;
pub use map::{BasicMap, Map};
pub use path::{force_presburger_path, presburger_path, PresburgerPath};
pub use polysum::symbolic_count;
pub use set::Set;
pub use space::{Space, VarKind};

/// A constraint over the variables of a [`Space`]: an affine expression
/// required to be `== 0` or `>= 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The affine expression constrained by [`Constraint::kind`].
    pub expr: LinExpr,
    /// Whether the expression must equal zero or be non-negative.
    pub kind: ConstraintKind,
}

/// The relation a [`Constraint`] imposes on its expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// `expr == 0`.
    Eq,
    /// `expr >= 0`.
    GeZero,
}

impl Constraint {
    /// Builds an equality constraint `expr == 0`.
    pub fn eq(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
    }

    /// Builds an inequality constraint `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Self {
        Constraint {
            expr,
            kind: ConstraintKind::GeZero,
        }
    }

    /// Evaluates the constraint on a full variable assignment.
    pub fn holds(&self, values: &[i64]) -> bool {
        let v = self.expr.eval(values);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::GeZero => v >= 0,
        }
    }
}
