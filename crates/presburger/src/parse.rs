//! A tiny textual syntax for constraints, used in tests and doc examples.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! constraint := expr (">=" | "<=" | "==" | "=" | ">" | "<") expr
//! expr       := term (("+" | "-") term)*
//! term       := int | int? var
//! var        := dim alias (i j k l m) | "d<N>" | param alias (n p q) | "p<N>"
//! ```
//!
//! Dim aliases `i..m` map to dims 0..4; param aliases `n`, `q` map to
//! params 0 and 1 (`p` would be ambiguous with `p<N>` and is not an alias).

use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::space::Space;
use crate::{Constraint, ConstraintKind};

/// Parses one constraint over the given space.
pub(crate) fn parse_constraint(s: &str, space: &Space) -> Result<Constraint> {
    let (lhs, op, rhs) = split_relation(s)?;
    let l = parse_expr(lhs, space)?;
    let r = parse_expr(rhs, space)?;
    let (expr, kind) = match op {
        ">=" => (l - r, ConstraintKind::GeZero),
        "<=" => (r - l, ConstraintKind::GeZero),
        ">" => (l - r - LinExpr::constant(1), ConstraintKind::GeZero),
        "<" => (r - l - LinExpr::constant(1), ConstraintKind::GeZero),
        "==" | "=" => (l - r, ConstraintKind::Eq),
        _ => unreachable!(),
    };
    Ok(Constraint { expr, kind })
}

fn split_relation(s: &str) -> Result<(&str, &'static str, &str)> {
    for op in [">=", "<=", "==", ">", "<", "="] {
        if let Some(pos) = s.find(op) {
            return Ok((&s[..pos], op, &s[pos + op.len()..]));
        }
    }
    Err(Error::Parse(format!("no relational operator in `{s}`")))
}

fn var_index(name: &str, space: &Space) -> Result<usize> {
    let dim_aliases = ["i", "j", "k", "l", "m"];
    if let Some(pos) = dim_aliases.iter().position(|&a| a == name) {
        if pos < space.n_dim() {
            return Ok(space.in_offset() + pos);
        }
        return Err(Error::Parse(format!("dim alias `{name}` out of range")));
    }
    if name == "n" || name == "q" {
        let idx = if name == "n" { 0 } else { 1 };
        if idx < space.n_param() {
            return Ok(idx);
        }
        return Err(Error::Parse(format!("param alias `{name}` out of range")));
    }
    if let Some(num) = name.strip_prefix('d') {
        let k: usize = num
            .parse()
            .map_err(|_| Error::Parse(format!("bad dim `{name}`")))?;
        if k < space.n_dim() {
            return Ok(space.in_offset() + k);
        }
        return Err(Error::Parse(format!("dim `{name}` out of range")));
    }
    if let Some(num) = name.strip_prefix('p') {
        let k: usize = num
            .parse()
            .map_err(|_| Error::Parse(format!("bad param `{name}`")))?;
        if k < space.n_param() {
            return Ok(k);
        }
        return Err(Error::Parse(format!("param `{name}` out of range")));
    }
    Err(Error::Parse(format!("unknown variable `{name}`")))
}

fn parse_expr(s: &str, space: &Space) -> Result<LinExpr> {
    let mut expr = LinExpr::zero();
    let bytes: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
    let mut i = 0;
    let mut sign = 1i64;
    let mut first = true;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '+' {
            sign = 1;
            i += 1;
            continue;
        }
        if c == '-' {
            sign = -1;
            i += 1;
            continue;
        }
        if !first && !matches!(bytes.get(i.wrapping_sub(1)), Some('+') | Some('-')) {
            // term boundary handled by sign tokens; fallthrough
        }
        // Parse optional integer with checked accumulation: a constraint
        // string is untrusted input, and a 20-digit coefficient must be a
        // typed error, not a debug-mode panic (or silent release wrap).
        let mut num: Option<i64> = None;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            let digit = bytes[i] as i64 - '0' as i64;
            num = Some(
                num.unwrap_or(0)
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(digit))
                    .ok_or(Error::Overflow)?,
            );
            i += 1;
        }
        // Optional '*' between coefficient and variable.
        if i < bytes.len() && bytes[i] == '*' {
            i += 1;
        }
        // Parse optional variable name (letter followed by digits).
        let mut name = String::new();
        if i < bytes.len() && bytes[i].is_ascii_alphabetic() {
            name.push(bytes[i]);
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                name.push(bytes[i]);
                i += 1;
            }
        }
        let coeff = sign * num.unwrap_or(1);
        if name.is_empty() {
            match num {
                Some(_) => expr.add_constant(coeff),
                None => return Err(Error::Parse(format!("dangling token in `{s}`"))),
            }
        } else {
            let idx = var_index(&name, space)?;
            expr.set_coeff(idx, expr.coeff(idx) + coeff);
        }
        sign = 1;
        first = false;
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bounds() {
        let sp = Space::set(1, 2);
        let c = parse_constraint("n - i - 1 >= 0", &sp).unwrap();
        assert_eq!(c.kind, ConstraintKind::GeZero);
        // n=10, i=9 satisfies; i=10 does not.
        assert!(c.holds(&[10, 9, 0]));
        assert!(!c.holds(&[10, 10, 0]));
    }

    #[test]
    fn parse_roundtrip_examples() {
        let sp = Space::set(1, 2);
        for (s, point, expect) in [
            ("i >= 0", vec![9i64, 0, 0], true),
            ("i < n", vec![9, 8, 0], true),
            ("i < n", vec![9, 9, 0], false),
            ("2i + 3j <= 12", vec![0, 3, 2], true),
            ("2i + 3j <= 12", vec![0, 3, 3], false),
            ("i == j", vec![0, 4, 4], true),
            ("i - j = 1", vec![0, 5, 4], true),
            ("i > j", vec![0, 5, 5], false),
        ] {
            let c = parse_constraint(s, &sp).unwrap();
            assert_eq!(c.holds(&point), expect, "constraint `{s}` on {point:?}");
        }
    }

    #[test]
    fn parse_errors() {
        let sp = Space::set(0, 1);
        assert!(parse_constraint("z >= 0", &sp).is_err());
        assert!(parse_constraint("i ~ 0", &sp).is_err());
        assert!(parse_constraint("n >= 0", &sp).is_err()); // no params
    }

    #[test]
    fn explicit_indices() {
        let sp = Space::set(2, 6);
        let c = parse_constraint("d5 - p1 >= 0", &sp).unwrap();
        // layout: p0 p1 d0..d5 ; d5 is index 7.
        let mut pt = vec![0i64; 8];
        pt[1] = 3;
        pt[7] = 3;
        assert!(c.holds(&pt));
        pt[7] = 2;
        assert!(!c.holds(&pt));
    }
}
