//! Batched query context: one arena-backed solver [`System`] reused across
//! many emptiness/counting queries, amortizing allocation and setup.
//!
//! The analysis passes issue hundreds of emptiness checks per kernel (one
//! per ordered access pair, per out-of-shape half-space, per domain). Each
//! standalone [`BasicSet::is_empty`] builds its own solver system; a
//! [`Context`] instead bulk-resets one slab (O(1), capacity retained) per
//! query and tallies batch sizes and peak arena bytes for the compile
//! report.

use crate::basic::{Budget, System};
use crate::count::{count_system_cached, CountCache};
use crate::error::{Error, Result};
use crate::{BasicSet, CountLimit, Map, Set};

/// Outcome of one emptiness query inside a batch. Unlike
/// `Result<bool>`, a failed query does not poison its whole batch — the
/// caller decides per relation.
#[derive(Debug)]
pub enum Emptiness {
    /// The set provably contains no integer point.
    Empty,
    /// The set provably contains at least one integer point.
    NonEmpty,
    /// The solver could not decide (budget exhausted, unbounded variable).
    Unknown(Error),
}

impl Emptiness {
    /// Whether the outcome is [`Emptiness::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Emptiness::Empty)
    }
}

/// Reusable solver state for batched Presburger queries: a scratch
/// [`System`] whose arena persists across queries, a memoizing
/// [`CountCache`], and query counters.
#[derive(Debug)]
pub struct Context {
    sys: System,
    budget: Budget,
    cache: CountCache,
    checks: u64,
    batches: u64,
    peak_arena_bytes: usize,
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

impl Context {
    /// A fresh context with an empty arena and count cache.
    pub fn new() -> Self {
        Context {
            sys: System::empty(0),
            budget: Budget::default(),
            cache: CountCache::new(),
            checks: 0,
            batches: 0,
            peak_arena_bytes: 0,
        }
    }

    /// Decides emptiness of one basic set through the shared arena.
    pub fn check(&mut self, set: &BasicSet) -> Emptiness {
        self.checks += 1;
        if crate::path::use_legacy() {
            return match crate::reference::is_empty(set) {
                Ok(true) => Emptiness::Empty,
                Ok(false) => Emptiness::NonEmpty,
                Err(e) => Emptiness::Unknown(e),
            };
        }
        self.sys.reset_from(set);
        self.peak_arena_bytes = self.peak_arena_bytes.max(self.sys.arena_bytes());
        self.budget.reset();
        match self.sys.is_feasible(&mut self.budget) {
            Ok(true) => Emptiness::NonEmpty,
            Ok(false) => Emptiness::Empty,
            Err(e) => Emptiness::Unknown(e),
        }
    }

    /// Samples one integer point from a basic set through the shared
    /// arena — the batched witness-extraction primitive (dependence
    /// analysis samples a concrete violating pair from every non-empty
    /// relation it just checked).
    ///
    /// # Errors
    ///
    /// Same contract as [`BasicSet::sample`].
    pub fn sample(&mut self, set: &BasicSet) -> Result<Option<Vec<i64>>> {
        if crate::path::use_legacy() {
            return crate::reference::sample(set);
        }
        self.sys.reset_from(set);
        self.peak_arena_bytes = self.peak_arena_bytes.max(self.sys.arena_bytes());
        self.budget.reset();
        self.sys.sample(&mut self.budget)
    }

    /// Decides emptiness of every set in one batch, reusing the arena
    /// across all of them. Results are in input order; a failed query
    /// yields [`Emptiness::Unknown`] for that slot only.
    pub fn check_all<'a, I>(&mut self, sets: I) -> Vec<Emptiness>
    where
        I: IntoIterator<Item = &'a BasicSet>,
    {
        self.batches += 1;
        sets.into_iter().map(|s| self.check(s)).collect()
    }

    /// Emptiness of a (union) set: empty iff every disjunct is. The
    /// disjuncts form one batch.
    pub fn check_set(&mut self, set: &Set) -> Emptiness {
        let mut out = Emptiness::Empty;
        for e in self.check_all(set.basics()) {
            match e {
                Emptiness::Empty => {}
                Emptiness::NonEmpty => return Emptiness::NonEmpty,
                Emptiness::Unknown(err) => out = Emptiness::Unknown(err),
            }
        }
        out
    }

    /// Counts a set's integer points through the context's memoizing
    /// cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`Set::count`].
    pub fn count_set(&mut self, set: &Set) -> Result<i128> {
        set.count_cached(&mut self.cache)
    }

    /// Counts one basic set's integer points through the cache.
    ///
    /// # Errors
    ///
    /// Propagates counting errors; undetermined divs fall back to
    /// enumeration (see [`Set::count_cached`]).
    pub fn count_basic(&mut self, set: &BasicSet) -> Result<i128> {
        if set.all_divs_determined() {
            self.sys.reset_from(set);
            self.peak_arena_bytes = self.peak_arena_bytes.max(self.sys.arena_bytes());
            count_system_cached(&self.sys, CountLimit::default(), &mut self.cache)
        } else {
            Ok(crate::enumerate::enumerate_points(set, CountLimit::default().0)?.len() as i128)
        }
    }

    /// Counts the pairs of a relation through the cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`Map::count_pairs`].
    pub fn count_pairs(&mut self, map: &Map) -> Result<i128> {
        map.count_pairs_in(self)
    }

    /// Number of emptiness batches issued so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Number of individual emptiness checks issued so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// High-water mark of the shared arena's capacity, in bytes.
    pub fn peak_arena_bytes(&self) -> usize {
        self.peak_arena_bytes
    }

    /// The context's memoizing count cache (for stats plumbing).
    pub fn cache(&self) -> &CountCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Space};

    fn boxed(lo: i64, hi: i64) -> BasicSet {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, lo, hi);
        b.add_range(1, lo, hi);
        b
    }

    #[test]
    fn batch_matches_individual_queries() {
        let mut empty = boxed(0, 7);
        empty.add_ge0(LinExpr::var(0) - LinExpr::constant(100));
        let sets = vec![boxed(0, 7), empty, boxed(3, 3)];
        let mut ctx = Context::new();
        let out = ctx.check_all(&sets);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[0], Emptiness::NonEmpty));
        assert!(matches!(out[1], Emptiness::Empty));
        assert!(matches!(out[2], Emptiness::NonEmpty));
        assert_eq!(ctx.batches(), 1);
        assert_eq!(ctx.checks(), 3);
        assert!(ctx.peak_arena_bytes() > 0);
        for (s, e) in sets.iter().zip(&out) {
            assert_eq!(s.is_empty().unwrap(), e.is_empty());
        }
    }

    #[test]
    fn counts_route_through_cache() {
        let mut ctx = Context::new();
        let s = Set::from_basic(boxed(0, 7));
        assert_eq!(ctx.count_set(&s).unwrap(), 64);
        assert_eq!(ctx.count_set(&s).unwrap(), 64);
        assert!(ctx.cache().hits() >= 1);
        assert_eq!(ctx.count_basic(&boxed(0, 3)).unwrap(), 16);
    }
}
