//! Exhaustive enumeration of the integer points of a basic set. Used for
//! validation, small exact analyses (Fig 4-style reuse maps), and as the
//! fallback when undetermined existentials rule out fast counting.

use std::collections::BTreeSet;

use crate::basic::{Budget, System};
use crate::error::{Error, Result};
use crate::BasicSet;

/// Enumerates every tuple (dims only; parameters must be pinned by
/// constraints) of the set, deduplicating when undetermined divs are
/// present. Results are in ascending lexicographic order.
///
/// # Errors
///
/// Returns [`Error::SearchBudgetExceeded`] if more than `max_points` points
/// (or a proportional amount of search work) would be produced, and
/// [`Error::Unbounded`] for unbounded variables.
pub(crate) fn enumerate_points(set: &BasicSet, max_points: u64) -> Result<Vec<Vec<i64>>> {
    let sys = set.system();
    let mut budget = Budget::with_limit(max_points.saturating_mul(64).max(1_000_000));
    let mut out: BTreeSet<Vec<i64>> = BTreeSet::new();
    let mut values: Vec<Option<i64>> = vec![None; sys.n];
    let np = set.space().n_param();
    let nd = set.space().n_dim();
    enum_rec(&sys, &mut values, &mut out, np, nd, max_points, &mut budget)?;
    Ok(out.into_iter().collect())
}

fn enum_rec(
    sys: &System,
    values: &mut Vec<Option<i64>>,
    out: &mut BTreeSet<Vec<i64>>,
    np: usize,
    nd: usize,
    max_points: u64,
    budget: &mut Budget,
) -> Result<()> {
    budget.tick(1)?;
    let mut cur = sys.clone();
    for (i, v) in values.iter().enumerate() {
        if let Some(v) = *v {
            cur.substitute(i, v);
        }
    }
    let Some(iv) = cur.propagate(budget)? else {
        return Ok(());
    };

    let mut fixed = Vec::new();
    for (i, v) in values.iter_mut().enumerate() {
        if v.is_none() {
            if let Some(x) = iv[i].singleton() {
                *v = Some(x);
                fixed.push(i);
            }
        }
    }

    // Prefer branching on tuple variables first (deterministic point order),
    // then divs.
    let branch: Option<usize> = values.iter().position(|v| v.is_none());
    match branch {
        None => {
            let full: Vec<i64> = values.iter().map(|v| v.unwrap()).collect();
            if sys.check(&full) {
                out.insert(full[np..np + nd].to_vec());
                if out.len() as u64 > max_points {
                    for i in fixed {
                        values[i] = None;
                    }
                    return Err(Error::SearchBudgetExceeded { budget: max_points });
                }
            }
        }
        Some(var) => {
            let (lo, hi) = match (iv[var].lo, iv[var].hi) {
                (Some(l), Some(h)) => (l, h),
                _ => {
                    for i in fixed {
                        values[i] = None;
                    }
                    return Err(Error::Unbounded { var });
                }
            };
            for x in lo..=hi {
                values[var] = Some(x);
                let r = enum_rec(sys, values, out, np, nd, max_points, budget);
                if r.is_err() {
                    values[var] = None;
                    for i in fixed {
                        values[i] = None;
                    }
                    return r;
                }
            }
            values[var] = None;
        }
    }
    for i in fixed {
        values[i] = None;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Space};

    #[test]
    fn enumerate_triangle() {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 2);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        let pts = enumerate_points(&b, 100).unwrap();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![1, 1],
                vec![2, 0],
                vec![2, 1],
                vec![2, 2]
            ]
        );
    }

    #[test]
    fn enumerate_dedups_projection() {
        // { [i,j] : 0<=i<3, 0<=j<4 } project j => { [i] : 0<=i<3 }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 2);
        b.add_range(1, 0, 3);
        let p = b.project_dims_out(1, 1);
        let pts = enumerate_points(&p, 100).unwrap();
        assert_eq!(pts, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn cap_enforced() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 999);
        match enumerate_points(&b, 10) {
            Err(Error::SearchBudgetExceeded { .. }) => {}
            other => panic!("expected cap, got {other:?}"),
        }
    }
}
