//! Basic sets: conjunctions of affine constraints with div variables, and
//! the integer feasibility solver shared by emptiness, sampling, counting
//! and enumeration.
//!
//! The solver [`System`] stores constraints as *flat arena rows*: one
//! contiguous `i64` slab holding `stride = n + 2` words per constraint
//! (`n` coefficients, the constant, and a kind tag). Small systems live in
//! an inline buffer, so cloning a system during branch-and-bound is a
//! memcpy with no allocation, and every hot operation (substitution,
//! Gaussian elimination, interval tightening, membership checks) runs over
//! dense slices. See DESIGN.md § "Presburger core".

use std::fmt;

use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::space::Space;
use crate::{Constraint, ConstraintKind};

/// An existentially quantified variable of a [`BasicSet`].
///
/// A div is *determined* when it carries a definition `q = floor(num /
/// denom)`: its value is then a function of the other variables, which makes
/// constraint negation (and hence set subtraction) sound, and lets point
/// containment be checked directly. Divs introduced by projection or
/// relation composition have no definition and are genuine existentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Div {
    /// `Some((num, denom))` when the div is `floor(num / denom)`, with
    /// `denom > 0` and `num` an expression over earlier variables.
    pub def: Option<(LinExpr, i64)>,
}

impl Div {
    /// Whether the div's value is determined by the other variables.
    pub fn is_determined(&self) -> bool {
        self.def.is_some()
    }
}

/// A conjunction of affine constraints over `params ++ dims ++ divs`,
/// describing a set (or, via [`crate::BasicMap`], a relation) of integer
/// points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicSet {
    space: Space,
    divs: Vec<Div>,
    constraints: Vec<Constraint>,
}

impl BasicSet {
    /// The universe set of a space (no constraints).
    pub fn universe(space: Space) -> Self {
        BasicSet {
            space,
            divs: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The div variables.
    pub fn divs(&self) -> &[Div] {
        &self.divs
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Total number of variables including divs.
    pub fn n_total(&self) -> usize {
        self.space.n_var() + self.divs.len()
    }

    /// Whether every div is determined (a function of the other variables).
    pub fn all_divs_determined(&self) -> bool {
        self.divs.iter().all(Div::is_determined)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        debug_assert!(
            c.expr.len() <= self.n_total(),
            "constraint references unknown variable"
        );
        self.constraints.push(c);
    }

    /// Adds the constraint `expr == 0`.
    pub fn add_eq(&mut self, expr: LinExpr) {
        self.add_constraint(Constraint::eq(expr));
    }

    /// Adds the constraint `expr >= 0`.
    pub fn add_ge0(&mut self, expr: LinExpr) {
        self.add_constraint(Constraint::ge0(expr));
    }

    /// Adds the constraint `lo <= var_idx <= hi` (inclusive bounds).
    pub fn add_range(&mut self, var_idx: usize, lo: i64, hi: i64) {
        self.add_ge0(LinExpr::var(var_idx) - LinExpr::constant(lo));
        self.add_ge0(LinExpr::constant(hi) - LinExpr::var(var_idx));
    }

    /// Introduces a determined div `q = floor(num / denom)` and returns its
    /// variable index in the flat layout.
    ///
    /// The defining constraints `0 <= num - denom*q <= denom - 1` are added
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics if `denom <= 0`.
    pub fn add_div(&mut self, num: LinExpr, denom: i64) -> usize {
        assert!(denom > 0, "div denominator must be positive");
        let idx = self.n_total();
        self.divs.push(Div {
            def: Some((num.clone(), denom)),
        });
        let rem = num.clone() - LinExpr::var(idx) * denom;
        self.add_ge0(rem.clone());
        self.add_ge0(LinExpr::constant(denom - 1) - rem);
        idx
    }

    /// Introduces an undetermined existential variable and returns its
    /// index. Negation-based operations will refuse sets containing these.
    pub fn add_undetermined_div(&mut self) -> usize {
        let idx = self.n_total();
        self.divs.push(Div { def: None });
        idx
    }

    /// Appends a div without adding defining constraints (used by
    /// subtraction and composition, which add constraints explicitly).
    pub(crate) fn push_div_raw(&mut self, d: Div) {
        self.divs.push(d);
    }

    /// Fixes variable `idx` to `value` by adding an equality.
    pub fn fix_var(&mut self, idx: usize, value: i64) {
        self.add_eq(LinExpr::var(idx) - LinExpr::constant(value));
    }

    /// Intersects with another basic set over the same space, merging div
    /// variables (the other set's divs are renumbered after ours).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the spaces differ.
    pub fn intersect(&self, other: &BasicSet) -> Result<BasicSet> {
        if self.space != other.space {
            return Err(Error::SpaceMismatch {
                expected: self.space.to_string(),
                found: other.space.to_string(),
            });
        }
        let mut out = self.clone();
        let shift = self.divs.len();
        let at = self.space.n_var();
        for d in &other.divs {
            out.divs.push(Div {
                def: d
                    .def
                    .as_ref()
                    .map(|(n, den)| (n.shift_vars(at, shift), *den)),
            });
        }
        for c in &other.constraints {
            out.constraints.push(Constraint {
                expr: c.expr.shift_vars(at, shift),
                kind: c.kind,
            });
        }
        Ok(out)
    }

    /// Checks whether a point (dims only, parameters prepended if any)
    /// belongs to the set. The slice must contain `n_param + n_dim` values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if the set has undetermined
    /// existentials (containment would require a search).
    pub fn contains(&self, point: &[i64]) -> Result<bool> {
        assert_eq!(point.len(), self.space.n_var(), "point arity mismatch");
        let mut values = point.to_vec();
        for d in &self.divs {
            match &d.def {
                Some((num, den)) => {
                    let n = num.eval(&values);
                    values.push(n.div_euclid(*den));
                }
                None => {
                    return Err(Error::UndeterminedDivs {
                        operation: "contains",
                    })
                }
            }
        }
        Ok(self.constraints.iter().all(|c| c.holds(&values)))
    }

    /// Simplifies constraints in place: drops trivially true constraints,
    /// normalizes by the gcd of coefficients, and deduplicates. Returns
    /// `false` if a trivially false constraint was found (set is empty).
    pub fn simplify(&mut self) -> bool {
        let mut seen = std::collections::HashSet::new();
        let drained = std::mem::take(&mut self.constraints);
        let mut out = Vec::with_capacity(drained.len());
        for c in drained {
            let mut c = c;
            if c.expr.is_constant() {
                let k = c.expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if ok {
                    continue;
                }
                self.constraints = vec![Constraint::ge0(LinExpr::constant(-1))];
                return false;
            }
            let g = c.expr.coeff_gcd();
            if g > 1 {
                match c.kind {
                    ConstraintKind::Eq => {
                        if c.expr.constant_term() % g != 0 {
                            self.constraints = vec![Constraint::ge0(LinExpr::constant(-1))];
                            return false;
                        }
                        c.expr = divide_expr(&c.expr, g);
                    }
                    ConstraintKind::GeZero => {
                        // a*x + k >= 0  <=>  x' + floor(k/g) >= 0 with x' = a/g * x
                        let k = c.expr.constant_term();
                        c.expr = divide_expr_floor(&c.expr, g, k);
                    }
                }
            }
            if seen.insert((format!("{:?}", c.expr), c.kind)) {
                out.push(c);
            }
        }
        self.constraints = out;
        true
    }

    /// Builds the solver system for this set (all variables, including
    /// params and divs, are solver variables).
    pub(crate) fn system(&self) -> System {
        System::new(self.n_total(), &self.constraints)
    }

    /// Per-variable `(lower, upper)` bounds derived by interval
    /// propagation (`None` endpoints are unbounded). Returns `Ok(None)` if
    /// propagation already proves the set empty. Bounds are valid for
    /// every point of the set but not necessarily tight.
    ///
    /// # Errors
    ///
    /// Propagates solver budget errors.
    #[allow(clippy::type_complexity)]
    pub fn var_intervals(&self) -> Result<Option<Vec<(Option<i64>, Option<i64>)>>> {
        let sys = self.system();
        let iv = sys.propagate(&mut Budget::default())?;
        Ok(iv.map(|v| v.into_iter().map(|i| (i.lo, i.hi)).collect()))
    }

    /// Whether the set contains no integer points.
    ///
    /// # Errors
    ///
    /// Returns an error if the search budget is exceeded or a variable is
    /// unbounded.
    pub fn is_empty(&self) -> Result<bool> {
        if crate::path::use_legacy() {
            return crate::reference::is_empty(self);
        }
        Ok(!self.system().is_feasible(&mut Budget::default())?)
    }

    /// Finds an integer point in the set (full assignment over
    /// `params ++ dims ++ divs`), or `None` if the set is empty.
    ///
    /// # Errors
    ///
    /// Returns an error if the search budget is exceeded or a variable is
    /// unbounded with constraints that prevent a decision.
    pub fn sample(&self) -> Result<Option<Vec<i64>>> {
        if crate::path::use_legacy() {
            return crate::reference::sample(self);
        }
        self.system().sample(&mut Budget::default())
    }

    /// Renames this set into a different space with the same total variable
    /// counts (e.g. set <-> map reinterpretation).
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn recast(mut self, space: Space) -> BasicSet {
        assert_eq!(
            self.space.n_var(),
            space.n_var(),
            "recast requires equal variable counts"
        );
        assert_eq!(
            self.space.n_param(),
            space.n_param(),
            "recast keeps parameters"
        );
        self.space = space;
        self
    }

    /// Applies a variable permutation to all constraints and div
    /// definitions, then switches to `new_space`. `perm[i]` is the new index
    /// of old variable `i`; it must cover all `n_total` variables and keep
    /// divs after tuple variables.
    pub(crate) fn permute(mut self, perm: &[usize], new_space: Space) -> BasicSet {
        for c in &mut self.constraints {
            c.expr = c.expr.permute_vars(perm);
        }
        for d in &mut self.divs {
            if let Some((n, _)) = &mut d.def {
                *n = n.permute_vars(perm);
            }
        }
        self.space = new_space;
        self
    }

    /// Converts tuple dimensions `range` (indices relative to the first
    /// dim) into undetermined divs, producing a set with fewer dimensions.
    /// This is exact projection with the existential kept symbolic.
    pub fn project_dims_out(&self, first: usize, count: usize) -> BasicSet {
        let np = self.space.n_param();
        let nd = self.space.n_dim();
        assert!(first + count <= nd, "projection range out of bounds");
        debug_assert!(self.space.is_set(), "project_dims_out expects a set space");
        let new_space = Space::set(np, nd - count);
        let n_total = self.n_total();
        // New layout: params, dims-before, dims-after, old divs, projected dims.
        let mut perm = vec![0usize; n_total];
        let mut next = 0;
        for (i, p) in perm.iter_mut().enumerate().take(np) {
            let _ = i;
            *p = next;
            next += 1;
        }
        for i in 0..nd {
            if i < first || i >= first + count {
                perm[np + i] = next;
                next += 1;
            }
        }
        let div_base = next;
        for i in 0..self.divs.len() {
            perm[np + nd + i] = next + i;
        }
        next += self.divs.len();
        for i in first..first + count {
            perm[np + i] = next;
            next += 1;
        }
        let _ = div_base;
        let mut out = self.clone().permute(perm.as_slice(), new_space);
        for _ in 0..count {
            out.divs.push(Div { def: None });
        }
        // Old determined divs may now reference later variables (projected
        // dims moved after them); definitions remain valid expressions, but
        // a definition referencing an undetermined div is itself effectively
        // undetermined for `contains`. Demote such defs.
        let first_undet = np + (nd - count) + self.divs.len();
        for d in &mut out.divs {
            let demote = match &d.def {
                Some((n, _)) => n.terms().any(|(i, _)| i >= first_undet),
                None => false,
            };
            if demote {
                d.def = None;
            }
        }
        out
    }

    /// Pretty-prints with the space's default variable names.
    pub fn display(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for c in &self.constraints {
            let e = c.expr.display_with(|i| self.space.var_name(i));
            let op = match c.kind {
                ConstraintKind::Eq => "= 0",
                ConstraintKind::GeZero => ">= 0",
            };
            parts.push(format!("{e} {op}"));
        }
        let dims: Vec<String> = (0..self.space.n_dim())
            .map(|i| self.space.var_name(self.space.in_offset() + i))
            .collect();
        format!("{{ [{}] : {} }}", dims.join(", "), parts.join(" and "))
    }
}

impl fmt::Display for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

fn divide_expr(e: &LinExpr, g: i64) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term() / g);
    for (i, c) in e.terms() {
        out.set_coeff(i, c / g);
    }
    out
}

fn divide_expr_floor(e: &LinExpr, g: i64, k: i64) -> LinExpr {
    let mut out = LinExpr::constant(k.div_euclid(g));
    for (i, c) in e.terms() {
        out.set_coeff(i, c / g);
    }
    out
}

// ---------------------------------------------------------------------------
// Integer feasibility solver (flat arena rows)
// ---------------------------------------------------------------------------

/// Integer division rounding toward negative infinity.
pub(crate) fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    a.div_euclid(b)
}

/// Integer division rounding toward positive infinity.
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    -(-a).div_euclid(b)
}

/// Work budget for branch-and-bound searches, carrying a reusable scratch
/// buffer so per-trial full-assignment vectors in [`System::sample`] are
/// allocated once per query instead of once per trial.
#[derive(Debug, Clone)]
pub(crate) struct Budget {
    pub steps: u64,
    pub limit: u64,
    /// Scratch for trial assignments (see `sample_rec`); contents are
    /// meaningless between uses.
    pub scratch: Vec<i64>,
    /// Recycled interval buffer for [`System::propagate`]; straight-line
    /// callers hand the returned vector back here so batched queries stop
    /// allocating it per call. Contents are meaningless between uses.
    pub ivs: Vec<Interval>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            steps: 0,
            limit: 50_000_000,
            scratch: Vec::new(),
            ivs: Vec::new(),
        }
    }
}

impl Budget {
    pub fn with_limit(limit: u64) -> Self {
        Budget {
            limit,
            ..Budget::default()
        }
    }

    /// Rearms the step counter for a fresh query while keeping the scratch
    /// buffers (used by [`crate::Context`] to amortize allocation across a
    /// batch).
    pub fn reset(&mut self) {
        self.steps = 0;
    }

    pub fn tick(&mut self, n: u64) -> Result<()> {
        self.steps += n;
        if self.steps > self.limit {
            Err(Error::SearchBudgetExceeded { budget: self.limit })
        } else {
            Ok(())
        }
    }
}

/// Variable interval with optional (unbounded) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interval {
    pub lo: Option<i64>,
    pub hi: Option<i64>,
}

impl Interval {
    pub fn full() -> Self {
        Interval { lo: None, hi: None }
    }

    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    pub fn singleton(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    pub fn width(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => Some(h.saturating_sub(l)),
            _ => None,
        }
    }
}

/// Inline capacity of a [`Slab`] in `i64` words before it spills to the
/// heap. 160 words hold e.g. 16 rows of an 8-variable system (stride 10),
/// which covers the vast majority of analysis-pass queries, so cloning
/// a system during branch-and-bound usually allocates nothing.
const INLINE_WORDS: usize = 160;

/// Row kind tag stored in the last word of each row: equality (`expr == 0`).
const KIND_EQ: i64 = 0;
/// Row kind tag: inequality (`expr >= 0`).
const KIND_GE: i64 = 1;

/// Contiguous `i64` storage with a small-size inline fast path. Cloning an
/// inline slab is a memcpy; a heap slab clones its `Vec`.
#[derive(Clone)]
pub(crate) enum Slab {
    /// Data lives in a fixed inline buffer (no heap allocation).
    Inline {
        len: usize,
        buf: Box<[i64; INLINE_WORDS]>,
    },
    /// Spilled to the heap once the inline capacity was exceeded.
    Heap(Vec<i64>),
}

impl fmt::Debug for Slab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len())
            .field("inline", &matches!(self, Slab::Inline { .. }))
            .finish()
    }
}

impl Slab {
    fn new() -> Self {
        Slab::Inline {
            len: 0,
            buf: Box::new([0; INLINE_WORDS]),
        }
    }

    fn len(&self) -> usize {
        match self {
            Slab::Inline { len, .. } => *len,
            Slab::Heap(v) => v.len(),
        }
    }

    fn as_slice(&self) -> &[i64] {
        match self {
            Slab::Inline { len, buf } => &buf[..*len],
            Slab::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [i64] {
        match self {
            Slab::Inline { len, buf } => &mut buf[..*len],
            Slab::Heap(v) => v,
        }
    }

    /// Drops all contents; heap capacity is retained for reuse (this is the
    /// O(1) bulk reset between batched queries).
    fn clear(&mut self) {
        match self {
            Slab::Inline { len, .. } => *len = 0,
            Slab::Heap(v) => v.clear(),
        }
    }

    fn truncate(&mut self, new_len: usize) {
        match self {
            Slab::Inline { len, .. } => {
                if new_len < *len {
                    *len = new_len;
                }
            }
            Slab::Heap(v) => v.truncate(new_len),
        }
    }

    /// Appends `extra` zeroed words, spilling to the heap if the inline
    /// capacity is exceeded.
    fn extend_zeros(&mut self, extra: usize) {
        match self {
            Slab::Inline { len, buf } => {
                if *len + extra <= INLINE_WORDS {
                    buf[*len..*len + extra].fill(0);
                    *len += extra;
                } else {
                    let mut v = Vec::with_capacity((*len + extra).max(2 * INLINE_WORDS));
                    v.extend_from_slice(&buf[..*len]);
                    v.resize(*len + extra, 0);
                    *self = Slab::Heap(v);
                }
            }
            Slab::Heap(v) => {
                let n = v.len();
                v.resize(n + extra, 0);
            }
        }
    }

    /// Allocated capacity in bytes (inline slabs report their fixed
    /// buffer size).
    fn capacity_bytes(&self) -> usize {
        match self {
            Slab::Inline { .. } => INLINE_WORDS * std::mem::size_of::<i64>(),
            Slab::Heap(v) => v.capacity() * std::mem::size_of::<i64>(),
        }
    }
}

/// Whether a row's coefficient part is all zero (a constant constraint).
#[inline]
pub(crate) fn row_is_constant(row: &[i64], n: usize) -> bool {
    row[..n].iter().all(|&c| c == 0)
}

/// Whether a *constant* row is satisfied (`0 == 0` / `k >= 0`).
#[inline]
pub(crate) fn row_constant_ok(row: &[i64], n: usize) -> bool {
    if row[n + 1] == KIND_EQ {
        row[n] == 0
    } else {
        row[n] >= 0
    }
}

/// A constraint system over `n` integer variables, used by emptiness,
/// sampling, counting, and enumeration.
///
/// Rows are stored back-to-back in one [`Slab`] with `stride = n + 2`:
/// `[c_0, ..., c_{n-1}, constant, kind]`. The kind column lives inside the
/// slab so that the whole system is a single contiguous allocation and
/// `clone` is one memcpy.
#[derive(Debug, Clone)]
pub(crate) struct System {
    pub n: usize,
    stride: usize,
    rows: Slab,
}

impl System {
    /// Builds a system over `n` variables from a constraint list.
    pub fn new(n: usize, constraints: &[Constraint]) -> Self {
        let mut sys = System {
            n,
            stride: n + 2,
            rows: Slab::new(),
        };
        for c in constraints {
            sys.push_constraint(c);
        }
        sys
    }

    /// An empty system over `n` variables.
    pub fn empty(n: usize) -> Self {
        System {
            n,
            stride: n + 2,
            rows: Slab::new(),
        }
    }

    /// O(1) bulk reset: drops all rows (keeping heap capacity) and switches
    /// the variable space to `n`. Used by [`crate::Context`] to amortize
    /// arena setup across batched queries.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.stride = n + 2;
        self.rows.clear();
    }

    /// Resets to the constraint system of `set` (see [`System::reset`]).
    pub fn reset_from(&mut self, set: &BasicSet) {
        self.reset(set.n_total());
        for c in set.constraints() {
            self.push_constraint(c);
        }
    }

    /// Number of constraint rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len() / self.stride
    }

    /// Appends one constraint as a dense row.
    pub fn push_constraint(&mut self, c: &Constraint) {
        let base = self.rows.len();
        let n = self.n;
        self.rows.extend_zeros(self.stride);
        let row = &mut self.rows.as_mut_slice()[base..];
        for (v, coef) in c.expr.terms() {
            debug_assert!(v < n, "constraint references unknown variable");
            row[v] = coef;
        }
        row[n] = c.expr.constant_term();
        row[n + 1] = match c.kind {
            ConstraintKind::Eq => KIND_EQ,
            ConstraintKind::GeZero => KIND_GE,
        };
    }

    #[inline]
    fn row(&self, i: usize) -> &[i64] {
        &self.rows.as_slice()[i * self.stride..(i + 1) * self.stride]
    }

    /// The coefficient slice of row `i`.
    #[inline]
    pub fn coeffs(&self, i: usize) -> &[i64] {
        &self.row(i)[..self.n]
    }

    /// The constant term of row `i`.
    #[inline]
    pub fn constant(&self, i: usize) -> i64 {
        self.row(i)[self.n]
    }

    /// Whether row `i` is an equality constraint.
    #[inline]
    pub fn is_eq(&self, i: usize) -> bool {
        self.row(i)[self.n + 1] == KIND_EQ
    }

    /// Whether any row has a nonzero coefficient on `v`.
    pub fn var_appears(&self, v: usize) -> bool {
        let (n, stride) = (self.n, self.stride);
        let _ = n;
        self.rows
            .as_slice()
            .chunks_exact(stride)
            .any(|row| row[v] != 0)
    }

    /// Keeps only the rows for which `keep` returns true, compacting the
    /// slab in place.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&[i64]) -> bool) {
        let stride = self.stride;
        let slice = self.rows.as_mut_slice();
        let len = slice.len();
        let mut w = 0;
        let mut r = 0;
        while r < len {
            if keep(&slice[r..r + stride]) {
                if w != r {
                    slice.copy_within(r..r + stride, w);
                }
                w += stride;
            }
            r += stride;
        }
        self.rows.truncate(w);
    }

    /// A new system holding only the rows for which `keep` returns true.
    pub fn filtered(&self, mut keep: impl FnMut(&[i64]) -> bool) -> System {
        let mut out = System {
            n: self.n,
            stride: self.stride,
            rows: Slab::new(),
        };
        let stride = self.stride;
        for row in self.rows.as_slice().chunks_exact(stride) {
            if keep(row) {
                let base = out.rows.len();
                out.rows.extend_zeros(stride);
                out.rows.as_mut_slice()[base..].copy_from_slice(row);
            }
        }
        out
    }

    /// Converts the rows back into per-constraint objects (used by the
    /// symbolic layer and the legacy dispatch).
    pub fn to_constraints(&self) -> Vec<Constraint> {
        let n = self.n;
        self.rows
            .as_slice()
            .chunks_exact(self.stride)
            .map(|row| {
                let mut e = LinExpr::constant(row[n]);
                for (v, &c) in row[..n].iter().enumerate() {
                    if c != 0 {
                        e.set_coeff(v, c);
                    }
                }
                if row[n + 1] == KIND_EQ {
                    Constraint::eq(e)
                } else {
                    Constraint::ge0(e)
                }
            })
            .collect()
    }

    /// Allocated arena capacity in bytes (for peak-memory counters).
    pub fn arena_bytes(&self) -> usize {
        self.rows.capacity_bytes()
    }

    /// Substitutes away equality-defined variables (Gaussian elimination on
    /// unit-coefficient equalities). Eliminated variables are functions of
    /// the rest, so feasibility and point counts over the remaining
    /// variables are unchanged. Removes eliminated variables from `active`.
    pub fn gauss_eliminate(&mut self, active: &mut Vec<usize>) {
        let n = self.n;
        let stride = self.stride;
        let mut pivot_buf: Vec<i64> = Vec::new();
        loop {
            // First equality row with a ±1 coefficient on an active
            // variable (rows in order, variables ascending — the same scan
            // order as the per-constraint representation).
            let mut pivot: Option<(usize, usize, i64)> = None;
            'scan: for (i, row) in self.rows.as_slice().chunks_exact(stride).enumerate() {
                if row[n + 1] != KIND_EQ {
                    continue;
                }
                for (v, &c) in row[..n].iter().enumerate() {
                    if (c == 1 || c == -1) && active.contains(&v) {
                        pivot = Some((i, v, c));
                        break 'scan;
                    }
                }
            }
            let Some((p, v, s)) = pivot else {
                break;
            };
            // Every row with a coefficient `a` on `v` gets `a*s` times the
            // pivot row subtracted (coefficients and constant): since
            // `s = ±1`, this zeroes `v` everywhere, including in the pivot
            // row itself (`a = s` gives `s - s³ = 0`).
            pivot_buf.clear();
            let pbase = p * stride;
            {
                let rows = self.rows.as_mut_slice();
                pivot_buf.extend_from_slice(&rows[pbase..pbase + n + 1]);
                let mut rbase = 0;
                while rbase < rows.len() {
                    let a = rows[rbase + v];
                    if a != 0 {
                        let f = a * s;
                        for (t, &pv) in pivot_buf.iter().enumerate() {
                            rows[rbase + t] -= f * pv;
                        }
                    }
                    rbase += stride;
                }
            }
            // Drop rows reduced to satisfied constants (the pivot row
            // becomes `0 == 0` and is removed here).
            self.retain_rows(|row| !(row_is_constant(row, n) && row_constant_ok(row, n)));
            active.retain(|&x| x != v);
        }
    }

    /// Detects contradictions between pairs of inequalities with exactly
    /// negated variable parts (`e >= 0` and `-e + k >= 0` with `k` too
    /// small), which interval propagation cannot see. Returns `false` on
    /// contradiction. Also refutes violated constant rows.
    pub fn negated_pair_consistent(&self) -> bool {
        let n = self.n;
        let stride = self.stride;
        let rows = self.rows.as_slice();
        let n_rows = self.n_rows();
        for i in 0..n_rows {
            let ri = &rows[i * stride..(i + 1) * stride];
            if row_is_constant(ri, n) {
                if !row_constant_ok(ri, n) {
                    return false;
                }
                continue;
            }
            // Equalities contribute both signs of their expression.
            let signs_i: &[i64] = if ri[n + 1] == KIND_EQ { &[1, -1] } else { &[1] };
            for j in (i + 1)..n_rows {
                let rj = &rows[j * stride..(j + 1) * stride];
                if row_is_constant(rj, n) {
                    continue;
                }
                let signs_j: &[i64] = if rj[n + 1] == KIND_EQ { &[1, -1] } else { &[1] };
                for &si in signs_i {
                    for &sj in signs_j {
                        if (0..n).all(|t| si * ri[t] == -(sj * rj[t]))
                            && si * ri[n] + sj * rj[n] < 0
                        {
                            // part·x + k_i >= 0 and -part·x + k_j >= 0
                            // require k_i + k_j >= 0.
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Decides feasibility without producing a sample: eliminates
    /// equalities first, which lets the interval/negated-pair machinery
    /// refute systems with long equality chains (dependence-analysis
    /// queries) cheaply.
    pub fn is_feasible(&self, budget: &mut Budget) -> Result<bool> {
        // Fast path: one interval-propagation pass either refutes the
        // system outright (sound: propagation only ever narrows) or yields
        // a candidate box whose low corner we test directly. Most analysis
        // queries are plainly inhabited (domains, access pairs inside
        // bounds), so this answers them with a single scan and no
        // elimination, cloning, or branching. Equality rows coupling two
        // or more variables (determined divs, dependence equations) defeat
        // the raw corner almost always, so those systems skip straight to
        // the post-elimination attempt below.
        let coupled_eq = (0..self.n_rows())
            .any(|i| self.is_eq(i) && self.coeffs(i).iter().filter(|&&c| c != 0).count() >= 2);
        if !coupled_eq {
            match self.propagate(budget)? {
                None => return Ok(false),
                Some(iv) => {
                    budget.scratch.clear();
                    budget
                        .scratch
                        .extend(iv.iter().map(|i| i.lo.or(i.hi).unwrap_or(0)));
                    budget.ivs = iv;
                    let candidate = std::mem::take(&mut budget.scratch);
                    let hit = self.check(&candidate);
                    budget.scratch = candidate;
                    if hit {
                        return Ok(true);
                    }
                }
            }
        }
        let mut sys = self.clone();
        let mut active: Vec<usize> = (0..self.n).collect();
        sys.gauss_eliminate(&mut active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        // Second candidate test after elimination: equality chains (e.g.
        // determined divs) defeat the raw low-corner candidate, but once
        // their variables are substituted away the eliminated system's low
        // corner usually lands inside. Eliminated variables have no
        // remaining rows, so checking the reduced system is sound.
        match sys.propagate(budget)? {
            None => return Ok(false),
            Some(iv) => {
                budget.scratch.clear();
                budget
                    .scratch
                    .extend(iv.iter().map(|i| i.lo.or(i.hi).unwrap_or(0)));
                budget.ivs = iv;
                let candidate = std::mem::take(&mut budget.scratch);
                let hit = sys.check(&candidate);
                budget.scratch = candidate;
                if hit {
                    return Ok(true);
                }
            }
        }
        sys.feasible_rec(&active, budget)
    }

    fn feasible_rec(&self, active: &[usize], budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        let Some(iv) = self.propagate(budget)? else {
            return Ok(false);
        };
        if !self.negated_pair_consistent() {
            return Ok(false);
        }
        // Residual constraints after fixing singletons.
        let mut sys = self.clone();
        let mut remaining: Vec<usize> = Vec::new();
        for &v in active {
            if let Some(x) = iv[v].singleton() {
                sys.substitute(v, x);
            } else {
                remaining.push(v);
            }
        }
        if !sys.constant_rows_ok() {
            return Ok(false);
        }
        // Drop variables that no longer appear in any constraint.
        remaining.retain(|&v| sys.var_appears(v));
        if remaining.is_empty() {
            return Ok(true);
        }
        let mut sub_active = remaining.clone();
        sys.gauss_eliminate(&mut sub_active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        sub_active.retain(|&v| sys.var_appears(v));
        if sub_active.is_empty() {
            // Only constant constraints can remain; re-check them.
            return Ok(sys.constant_rows_ok());
        }
        let Some(iv2) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Branch on the narrowest-interval variable.
        let mut best: Option<(usize, i64)> = None;
        for &v in &sub_active {
            if let Some(w) = iv2[v].width() {
                if best.is_none_or(|(_, bw)| w < bw) {
                    best = Some((v, w));
                }
            }
        }
        let Some((var, _)) = best else {
            return Err(Error::Unbounded { var: sub_active[0] });
        };
        let (lo, hi) = (iv2[var].lo.unwrap(), iv2[var].hi.unwrap());
        let rest: Vec<usize> = sub_active.iter().copied().filter(|&v| v != var).collect();
        for x in lo..=hi {
            budget.tick(1)?;
            let mut s = sys.clone();
            s.substitute(var, x);
            if s.feasible_rec(&rest, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether every constant row is satisfied.
    #[inline]
    pub(crate) fn constant_rows_ok(&self) -> bool {
        let n = self.n;
        self.rows
            .as_slice()
            .chunks_exact(self.stride)
            .all(|row| !row_is_constant(row, n) || row_constant_ok(row, n))
    }

    /// Interval propagation to (bounded) fixpoint. Returns `None` if a
    /// contradiction is detected.
    pub fn propagate(&self, budget: &mut Budget) -> Result<Option<Vec<Interval>>> {
        let n = self.n;
        let stride = self.stride;
        // Reuse the budget's recycled buffer when a previous caller gave
        // it back; refutation paths always return it, so batched queries
        // that refute or use the fast paths allocate nothing here.
        let mut iv = std::mem::take(&mut budget.ivs);
        iv.clear();
        iv.resize(n, Interval::full());
        // Round-robin until fixpoint or iteration cap.
        let max_rounds = 4 + 2 * n.max(4);
        for _ in 0..max_rounds {
            budget.tick(self.n_rows() as u64)?;
            let mut changed = false;
            for row in self.rows.as_slice().chunks_exact(stride) {
                if !tighten_row(&row[..n], row[n], 1, &mut iv, &mut changed) {
                    budget.ivs = iv;
                    return Ok(None);
                }
                if row[n + 1] == KIND_EQ
                    && !tighten_row(&row[..n], row[n], -1, &mut iv, &mut changed)
                {
                    budget.ivs = iv;
                    return Ok(None);
                }
            }
            if iv.iter().any(Interval::is_empty) {
                budget.ivs = iv;
                return Ok(None);
            }
            if !changed {
                break;
            }
        }
        Ok(Some(iv))
    }

    /// Substitutes variable `idx` with a constant in place: the constant
    /// term absorbs `coeff * value` and the coefficient becomes zero.
    pub fn substitute(&mut self, idx: usize, value: i64) {
        let n = self.n;
        let stride = self.stride;
        for row in self.rows.as_mut_slice().chunks_exact_mut(stride) {
            let c = row[idx];
            if c != 0 {
                row[n] += c * value;
                row[idx] = 0;
            }
        }
    }

    /// Checks whether a full assignment satisfies all constraints.
    pub fn check(&self, values: &[i64]) -> bool {
        let n = self.n;
        self.rows.as_slice().chunks_exact(self.stride).all(|row| {
            let mut v = row[n];
            for (i, &c) in row[..n].iter().enumerate() {
                if c != 0 {
                    v += c * values[i];
                }
            }
            if row[n + 1] == KIND_EQ {
                v == 0
            } else {
                v >= 0
            }
        })
    }

    /// Finds one integer solution or proves emptiness.
    #[allow(clippy::type_complexity)]
    pub fn sample(&self, budget: &mut Budget) -> Result<Option<Vec<i64>>> {
        // Fast path: when every variable's propagated interval is finite
        // and the low corner satisfies the system, the branch search below
        // is guaranteed to return exactly that corner — every feasible
        // point dominates it componentwise (intervals are sound) and the
        // search tries values in ascending order, so all trials below the
        // corner fail. Returning it directly preserves witness identity
        // while skipping the whole search.
        match self.propagate(budget)? {
            None => return Ok(None),
            Some(iv) => {
                let bounded = iv.iter().all(|i| i.lo.is_some() && i.hi.is_some());
                let corner: Vec<i64> = iv.iter().map(|i| i.lo.unwrap_or(0)).collect();
                budget.ivs = iv;
                if bounded && self.check(&corner) {
                    return Ok(Some(corner));
                }
            }
        }
        let mut values = vec![None; self.n];
        if self.sample_rec(&mut values, budget)? {
            Ok(Some(values.into_iter().map(|v| v.unwrap_or(0)).collect()))
        } else {
            Ok(None)
        }
    }

    fn sample_rec(&self, values: &mut Vec<Option<i64>>, budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        // Build the residual system with known values substituted.
        let mut sys = self.clone();
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = *v {
                sys.substitute(i, v);
            }
        }
        let Some(iv) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Assign all singletons.
        let mut fixed = Vec::new();
        for i in 0..self.n {
            if values[i].is_none() {
                if let Some(v) = iv[i].singleton() {
                    values[i] = Some(v);
                    fixed.push(i);
                }
            }
        }
        // Find the unassigned variable with the smallest finite range.
        let mut best: Option<(usize, i64)> = None;
        let mut unbounded_free = None;
        for i in 0..self.n {
            if values[i].is_some() {
                continue;
            }
            match iv[i].width() {
                Some(w) => {
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((i, w));
                    }
                }
                None => unbounded_free = Some(i),
            }
        }
        match best {
            None => {
                // Trial assignments reuse the budget's scratch buffer
                // instead of collecting a fresh Vec per attempt.
                let mut full = std::mem::take(&mut budget.scratch);
                if let Some(u) = unbounded_free {
                    // Try anchoring each half-bounded variable at its finite
                    // endpoint (covers common one-sided cases like `i >= 0`);
                    // fully free variables get 0.
                    full.clear();
                    full.extend(
                        values
                            .iter()
                            .enumerate()
                            .map(|(i, v)| v.unwrap_or_else(|| iv[i].lo.or(iv[i].hi).unwrap_or(0))),
                    );
                    if self.check(&full) {
                        for (i, v) in values.iter_mut().enumerate() {
                            if v.is_none() {
                                *v = Some(full[i]);
                            }
                        }
                        budget.scratch = full;
                        return Ok(true);
                    }
                    // Residual constraints still mention a free variable and
                    // the anchor failed: we cannot decide without an
                    // unbounded search.
                    let mut sys2 = self.clone();
                    for (i, v) in values.iter().enumerate() {
                        if let Some(v) = *v {
                            sys2.substitute(i, v);
                        }
                    }
                    let residual_mentions_free =
                        (0..self.n).any(|i| values[i].is_none() && sys2.var_appears(i));
                    if residual_mentions_free {
                        budget.scratch = full;
                        return Err(Error::Unbounded { var: u });
                    }
                }
                full.clear();
                full.extend(values.iter().map(|v| v.unwrap_or(0)));
                if self.check(&full) {
                    for (i, v) in values.iter_mut().enumerate() {
                        if v.is_none() {
                            *v = Some(full[i]);
                        }
                    }
                    budget.scratch = full;
                    Ok(true)
                } else {
                    budget.scratch = full;
                    for i in fixed {
                        values[i] = None;
                    }
                    Ok(false)
                }
            }
            Some((var, _)) => {
                let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
                for v in lo..=hi {
                    budget.tick(1)?;
                    values[var] = Some(v);
                    if self.sample_rec(values, budget)? {
                        return Ok(true);
                    }
                }
                values[var] = None;
                for i in fixed {
                    values[i] = None;
                }
                Ok(false)
            }
        }
    }
}

/// Tightens intervals using `sign * (coeffs·x + k) >= 0`, exact over
/// `i128` (saturating at the extremes) in a single O(t) pass: the finite
/// part of the box-maximum is accumulated once, and each variable's
/// residual bound is recovered by subtracting its own contribution.
/// Returns false on contradiction.
fn tighten_row(coeffs: &[i64], k: i64, sign: i64, iv: &mut [Interval], changed: &mut bool) -> bool {
    // Box-maximum of the expression: each variable contributes its upper
    // (positive coefficient) or lower (negative) endpoint. Unbounded
    // endpoints are tallied instead of summed.
    let mut finite: i128 = (sign as i128) * (k as i128);
    let mut n_unbounded = 0usize;
    let mut unbounded_var = 0usize;
    for (i, &c0) in coeffs.iter().enumerate() {
        if c0 == 0 {
            continue;
        }
        let c = (sign as i128) * (c0 as i128);
        let endpoint = if c > 0 { iv[i].hi } else { iv[i].lo };
        match endpoint {
            Some(x) => finite = finite.saturating_add(c.saturating_mul(x as i128)),
            None => {
                n_unbounded += 1;
                unbounded_var = i;
            }
        }
    }
    if n_unbounded == 0 && finite < 0 {
        return false;
    }
    // Tighten each variable: a_j * v_j >= -(rest over the box). The rest's
    // maximum is finite only when every *other* contribution is bounded.
    for (j, &c0) in coeffs.iter().enumerate() {
        if c0 == 0 {
            continue;
        }
        let a = (sign as i128) * (c0 as i128);
        let rest_max: i128 = if n_unbounded == 0 {
            let own = if a > 0 { iv[j].hi } else { iv[j].lo };
            // Bounded by construction when nothing is unbounded.
            let own = own.expect("endpoint bounded when n_unbounded == 0");
            finite.saturating_sub(a.saturating_mul(own as i128))
        } else if n_unbounded == 1 && unbounded_var == j {
            finite
        } else {
            continue;
        };
        if a > 0 {
            // v_j >= ceil(-rest_max / a)
            let bound = clamp_i64(ceil_div_i128(-rest_max, a));
            if iv[j].lo.is_none_or(|l| bound > l) {
                iv[j].lo = Some(bound);
                *changed = true;
            }
        } else {
            // v_j <= floor(rest_max / -a)
            let bound = clamp_i64(floor_div_i128(rest_max, -a));
            if iv[j].hi.is_none_or(|h| bound < h) {
                iv[j].hi = Some(bound);
                *changed = true;
            }
        }
        if iv[j].is_empty() {
            return false;
        }
    }
    true
}

#[inline]
fn clamp_i64(x: i128) -> i64 {
    x.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

#[inline]
fn floor_div_i128(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    a.div_euclid(b)
}

#[inline]
fn ceil_div_i128(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    -(-a).div_euclid(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2(n: i64, m: i64) -> BasicSet {
        // { [i,j] : 0 <= i < n, 0 <= j < m }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n - 1);
        b.add_range(1, 0, m - 1);
        b
    }

    #[test]
    fn universe_and_contains() {
        let b = box2(4, 3);
        assert!(b.contains(&[0, 0]).unwrap());
        assert!(b.contains(&[3, 2]).unwrap());
        assert!(!b.contains(&[4, 0]).unwrap());
        assert!(!b.contains(&[-1, 0]).unwrap());
    }

    #[test]
    fn sample_and_emptiness() {
        let b = box2(4, 3);
        assert!(!b.is_empty().unwrap());
        let p = b.sample().unwrap().unwrap();
        assert!(b.contains(&p[..2]).unwrap());

        let mut e = box2(4, 3);
        e.add_ge0(LinExpr::var(0) - LinExpr::constant(10)); // i >= 10: empty
        assert!(e.is_empty().unwrap());
    }

    #[test]
    fn equality_constraints() {
        let mut b = box2(10, 10);
        // i + j == 7, i - j == 1  =>  i=4, j=3
        b.add_eq(LinExpr::var(0) + LinExpr::var(1) - LinExpr::constant(7));
        b.add_eq(LinExpr::var(0) - LinExpr::var(1) - LinExpr::constant(1));
        let p = b.sample().unwrap().unwrap();
        assert_eq!(&p[..2], &[4, 3]);
    }

    #[test]
    fn div_semantics() {
        // { [i] : 0 <= i < 16, q = floor(i/4), q == 2 }  =>  i in 8..12
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 15);
        let q = b.add_div(LinExpr::var(0), 4);
        b.add_eq(LinExpr::var(q) - LinExpr::constant(2));
        assert!(b.contains(&[8]).unwrap());
        assert!(b.contains(&[11]).unwrap());
        assert!(!b.contains(&[7]).unwrap());
        assert!(!b.contains(&[12]).unwrap());
        assert!(b.all_divs_determined());
    }

    #[test]
    fn modulo_via_divs() {
        // { [i] : 0 <= i < 12, i mod 3 == 1 } => 1,4,7,10
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 11);
        let q = b.add_div(LinExpr::var(0), 3);
        // i - 3q == 1
        b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 3 - LinExpr::constant(1));
        let members: Vec<i64> = (0..12).filter(|&i| b.contains(&[i]).unwrap()).collect();
        assert_eq!(members, vec![1, 4, 7, 10]);
    }

    #[test]
    fn intersect_merges_divs() {
        let mut a = BasicSet::universe(Space::set(0, 1));
        a.add_range(0, 0, 15);
        let qa = a.add_div(LinExpr::var(0), 4);
        a.add_eq(LinExpr::var(qa) - LinExpr::constant(2));

        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 15);
        let qb = b.add_div(LinExpr::var(0), 2);
        // i even: i - 2*floor(i/2) == 0
        b.add_eq(LinExpr::var(0) - LinExpr::var(qb) * 2);

        let c = a.intersect(&b).unwrap();
        let members: Vec<i64> = (0..16).filter(|&i| c.contains(&[i]).unwrap()).collect();
        assert_eq!(members, vec![8, 10]);
    }

    #[test]
    fn projection_keeps_points() {
        // { [i,j] : 0<=i<4, j == 2i } project j out => { [i] : 0<=i<4 }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 3);
        b.add_eq(LinExpr::var(1) - LinExpr::var(0) * 2);
        let p = b.project_dims_out(1, 1);
        assert_eq!(p.space().n_dim(), 1);
        assert!(!p.all_divs_determined());
        // Sampling still works (existential found by search).
        let s = p.sample().unwrap().unwrap();
        assert!((0..4).contains(&s[0]));
    }

    #[test]
    fn simplify_normalizes() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::var(0) * 2 - LinExpr::constant(3)); // 2i >= 3 => i >= 2
        assert!(b.simplify());
        assert_eq!(b.constraints().len(), 1);
        assert!(b.contains(&[2]).unwrap());
        assert!(!b.contains(&[1]).unwrap());
    }

    #[test]
    fn simplify_detects_trivial_emptiness() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::constant(-5));
        assert!(!b.simplify());
        assert!(b.is_empty().unwrap());
    }

    #[test]
    fn unbounded_reported() {
        // { [i] : i >= 0 } with a genuine search need is unbounded-but-satisfiable:
        // sampling should still succeed because propagation leaves residual
        // constraints mentioning the free var... i >= 0 gives lo bound but no hi.
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::var(0));
        // i >= 0 alone: propagation gives lo=0, no hi; no other constraints
        // mention i after substitution... the constraint itself mentions i.
        // The solver reports Unbounded in this case, which is acceptable.
        match b.sample() {
            Ok(Some(p)) => assert!(p[0] >= 0),
            Err(Error::Unbounded { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn slab_spills_to_heap_and_resets() {
        // More rows than the inline capacity can hold: the slab must spill
        // and keep answering correctly.
        let mut b = BasicSet::universe(Space::set(0, 6));
        for d in 0..6 {
            b.add_range(d, 0, 9);
            // Redundant extra constraints to force many rows.
            for k in 0..4 {
                b.add_ge0(LinExpr::var(d) + LinExpr::constant(k));
            }
        }
        let mut sys = b.system();
        assert!(sys.arena_bytes() > 0);
        assert!(!b.is_empty().unwrap());
        // Bulk reset keeps the system usable for a different query.
        sys.reset_from(&box2(4, 3));
        assert_eq!(sys.n, 2);
        assert_eq!(sys.n_rows(), 4);
        assert!(sys.is_feasible(&mut Budget::default()).unwrap());
    }

    #[test]
    fn flat_substitute_and_check() {
        let mut b = box2(10, 10);
        b.add_eq(LinExpr::var(0) - LinExpr::var(1));
        let mut sys = b.system();
        sys.substitute(0, 5);
        assert!(sys.check(&[0, 5])); // i already substituted; j must be 5
        assert!(!sys.check(&[0, 6]));
    }

    #[test]
    fn flat_gauss_removes_equalities() {
        let mut b = box2(10, 10);
        b.add_eq(LinExpr::var(0) - LinExpr::var(1) - LinExpr::constant(1));
        let mut sys = b.system();
        let mut active: Vec<usize> = vec![0, 1];
        sys.gauss_eliminate(&mut active);
        assert_eq!(active.len(), 1);
        // No equality rows left.
        assert!((0..sys.n_rows()).all(|i| !sys.is_eq(i)));
    }
}
