//! Basic sets: conjunctions of affine constraints with div variables, and
//! the integer feasibility solver shared by emptiness, sampling, counting
//! and enumeration.

use std::fmt;

use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::space::Space;
use crate::{Constraint, ConstraintKind};

/// An existentially quantified variable of a [`BasicSet`].
///
/// A div is *determined* when it carries a definition `q = floor(num /
/// denom)`: its value is then a function of the other variables, which makes
/// constraint negation (and hence set subtraction) sound, and lets point
/// containment be checked directly. Divs introduced by projection or
/// relation composition have no definition and are genuine existentials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Div {
    /// `Some((num, denom))` when the div is `floor(num / denom)`, with
    /// `denom > 0` and `num` an expression over earlier variables.
    pub def: Option<(LinExpr, i64)>,
}

impl Div {
    /// Whether the div's value is determined by the other variables.
    pub fn is_determined(&self) -> bool {
        self.def.is_some()
    }
}

/// A conjunction of affine constraints over `params ++ dims ++ divs`,
/// describing a set (or, via [`crate::BasicMap`], a relation) of integer
/// points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicSet {
    space: Space,
    divs: Vec<Div>,
    constraints: Vec<Constraint>,
}

impl BasicSet {
    /// The universe set of a space (no constraints).
    pub fn universe(space: Space) -> Self {
        BasicSet {
            space,
            divs: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The div variables.
    pub fn divs(&self) -> &[Div] {
        &self.divs
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Total number of variables including divs.
    pub fn n_total(&self) -> usize {
        self.space.n_var() + self.divs.len()
    }

    /// Whether every div is determined (a function of the other variables).
    pub fn all_divs_determined(&self) -> bool {
        self.divs.iter().all(Div::is_determined)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        debug_assert!(
            c.expr.len() <= self.n_total(),
            "constraint references unknown variable"
        );
        self.constraints.push(c);
    }

    /// Adds the constraint `expr == 0`.
    pub fn add_eq(&mut self, expr: LinExpr) {
        self.add_constraint(Constraint::eq(expr));
    }

    /// Adds the constraint `expr >= 0`.
    pub fn add_ge0(&mut self, expr: LinExpr) {
        self.add_constraint(Constraint::ge0(expr));
    }

    /// Adds the constraint `lo <= var_idx <= hi` (inclusive bounds).
    pub fn add_range(&mut self, var_idx: usize, lo: i64, hi: i64) {
        self.add_ge0(LinExpr::var(var_idx) - LinExpr::constant(lo));
        self.add_ge0(LinExpr::constant(hi) - LinExpr::var(var_idx));
    }

    /// Introduces a determined div `q = floor(num / denom)` and returns its
    /// variable index in the flat layout.
    ///
    /// The defining constraints `0 <= num - denom*q <= denom - 1` are added
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics if `denom <= 0`.
    pub fn add_div(&mut self, num: LinExpr, denom: i64) -> usize {
        assert!(denom > 0, "div denominator must be positive");
        let idx = self.n_total();
        self.divs.push(Div {
            def: Some((num.clone(), denom)),
        });
        let rem = num.clone() - LinExpr::var(idx) * denom;
        self.add_ge0(rem.clone());
        self.add_ge0(LinExpr::constant(denom - 1) - rem);
        idx
    }

    /// Introduces an undetermined existential variable and returns its
    /// index. Negation-based operations will refuse sets containing these.
    pub fn add_undetermined_div(&mut self) -> usize {
        let idx = self.n_total();
        self.divs.push(Div { def: None });
        idx
    }

    /// Appends a div without adding defining constraints (used by
    /// subtraction and composition, which add constraints explicitly).
    pub(crate) fn push_div_raw(&mut self, d: Div) {
        self.divs.push(d);
    }

    /// Fixes variable `idx` to `value` by adding an equality.
    pub fn fix_var(&mut self, idx: usize, value: i64) {
        self.add_eq(LinExpr::var(idx) - LinExpr::constant(value));
    }

    /// Intersects with another basic set over the same space, merging div
    /// variables (the other set's divs are renumbered after ours).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the spaces differ.
    pub fn intersect(&self, other: &BasicSet) -> Result<BasicSet> {
        if self.space != other.space {
            return Err(Error::SpaceMismatch {
                expected: self.space.to_string(),
                found: other.space.to_string(),
            });
        }
        let mut out = self.clone();
        let shift = self.divs.len();
        let at = self.space.n_var();
        for d in &other.divs {
            out.divs.push(Div {
                def: d
                    .def
                    .as_ref()
                    .map(|(n, den)| (n.shift_vars(at, shift), *den)),
            });
        }
        for c in &other.constraints {
            out.constraints.push(Constraint {
                expr: c.expr.shift_vars(at, shift),
                kind: c.kind,
            });
        }
        Ok(out)
    }

    /// Checks whether a point (dims only, parameters prepended if any)
    /// belongs to the set. The slice must contain `n_param + n_dim` values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if the set has undetermined
    /// existentials (containment would require a search).
    pub fn contains(&self, point: &[i64]) -> Result<bool> {
        assert_eq!(point.len(), self.space.n_var(), "point arity mismatch");
        let mut values = point.to_vec();
        for d in &self.divs {
            match &d.def {
                Some((num, den)) => {
                    let n = num.eval(&values);
                    values.push(n.div_euclid(*den));
                }
                None => {
                    return Err(Error::UndeterminedDivs {
                        operation: "contains",
                    })
                }
            }
        }
        Ok(self.constraints.iter().all(|c| c.holds(&values)))
    }

    /// Simplifies constraints in place: drops trivially true constraints,
    /// normalizes by the gcd of coefficients, and deduplicates. Returns
    /// `false` if a trivially false constraint was found (set is empty).
    pub fn simplify(&mut self) -> bool {
        let mut seen = std::collections::HashSet::new();
        let drained = std::mem::take(&mut self.constraints);
        let mut out = Vec::with_capacity(drained.len());
        for c in drained {
            let mut c = c;
            if c.expr.is_constant() {
                let k = c.expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if ok {
                    continue;
                }
                self.constraints = vec![Constraint::ge0(LinExpr::constant(-1))];
                return false;
            }
            let g = c.expr.coeff_gcd();
            if g > 1 {
                match c.kind {
                    ConstraintKind::Eq => {
                        if c.expr.constant_term() % g != 0 {
                            self.constraints = vec![Constraint::ge0(LinExpr::constant(-1))];
                            return false;
                        }
                        c.expr = divide_expr(&c.expr, g);
                    }
                    ConstraintKind::GeZero => {
                        // a*x + k >= 0  <=>  x' + floor(k/g) >= 0 with x' = a/g * x
                        let k = c.expr.constant_term();
                        c.expr = divide_expr_floor(&c.expr, g, k);
                    }
                }
            }
            if seen.insert((format!("{:?}", c.expr), c.kind)) {
                out.push(c);
            }
        }
        self.constraints = out;
        true
    }

    /// Builds the solver system for this set (all variables, including
    /// params and divs, are solver variables).
    pub(crate) fn system(&self) -> System {
        System::new(self.n_total(), self.constraints.clone())
    }

    /// Per-variable `(lower, upper)` bounds derived by interval
    /// propagation (`None` endpoints are unbounded). Returns `Ok(None)` if
    /// propagation already proves the set empty. Bounds are valid for
    /// every point of the set but not necessarily tight.
    ///
    /// # Errors
    ///
    /// Propagates solver budget errors.
    #[allow(clippy::type_complexity)]
    pub fn var_intervals(&self) -> Result<Option<Vec<(Option<i64>, Option<i64>)>>> {
        let sys = self.system();
        let iv = sys.propagate(&mut Budget::default())?;
        Ok(iv.map(|v| v.into_iter().map(|i| (i.lo, i.hi)).collect()))
    }

    /// Whether the set contains no integer points.
    ///
    /// # Errors
    ///
    /// Returns an error if the search budget is exceeded or a variable is
    /// unbounded.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(!self.system().is_feasible(&mut Budget::default())?)
    }

    /// Finds an integer point in the set (full assignment over
    /// `params ++ dims ++ divs`), or `None` if the set is empty.
    ///
    /// # Errors
    ///
    /// Returns an error if the search budget is exceeded or a variable is
    /// unbounded with constraints that prevent a decision.
    pub fn sample(&self) -> Result<Option<Vec<i64>>> {
        self.system().sample(&mut Budget::default())
    }

    /// Renames this set into a different space with the same total variable
    /// counts (e.g. set <-> map reinterpretation).
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn recast(mut self, space: Space) -> BasicSet {
        assert_eq!(
            self.space.n_var(),
            space.n_var(),
            "recast requires equal variable counts"
        );
        assert_eq!(
            self.space.n_param(),
            space.n_param(),
            "recast keeps parameters"
        );
        self.space = space;
        self
    }

    /// Applies a variable permutation to all constraints and div
    /// definitions, then switches to `new_space`. `perm[i]` is the new index
    /// of old variable `i`; it must cover all `n_total` variables and keep
    /// divs after tuple variables.
    pub(crate) fn permute(mut self, perm: &[usize], new_space: Space) -> BasicSet {
        for c in &mut self.constraints {
            c.expr = c.expr.permute_vars(perm);
        }
        for d in &mut self.divs {
            if let Some((n, _)) = &mut d.def {
                *n = n.permute_vars(perm);
            }
        }
        self.space = new_space;
        self
    }

    /// Converts tuple dimensions `range` (indices relative to the first
    /// dim) into undetermined divs, producing a set with fewer dimensions.
    /// This is exact projection with the existential kept symbolic.
    pub fn project_dims_out(&self, first: usize, count: usize) -> BasicSet {
        let np = self.space.n_param();
        let nd = self.space.n_dim();
        assert!(first + count <= nd, "projection range out of bounds");
        debug_assert!(self.space.is_set(), "project_dims_out expects a set space");
        let new_space = Space::set(np, nd - count);
        let n_total = self.n_total();
        // New layout: params, dims-before, dims-after, old divs, projected dims.
        let mut perm = vec![0usize; n_total];
        let mut next = 0;
        for (i, p) in perm.iter_mut().enumerate().take(np) {
            let _ = i;
            *p = next;
            next += 1;
        }
        for i in 0..nd {
            if i < first || i >= first + count {
                perm[np + i] = next;
                next += 1;
            }
        }
        let div_base = next;
        for i in 0..self.divs.len() {
            perm[np + nd + i] = next + i;
        }
        next += self.divs.len();
        for i in first..first + count {
            perm[np + i] = next;
            next += 1;
        }
        let _ = div_base;
        let mut out = self.clone().permute(perm.as_slice(), new_space);
        for _ in 0..count {
            out.divs.push(Div { def: None });
        }
        // Old determined divs may now reference later variables (projected
        // dims moved after them); definitions remain valid expressions, but
        // a definition referencing an undetermined div is itself effectively
        // undetermined for `contains`. Demote such defs.
        let first_undet = np + (nd - count) + self.divs.len();
        for d in &mut out.divs {
            let demote = match &d.def {
                Some((n, _)) => n.terms().any(|(i, _)| i >= first_undet),
                None => false,
            };
            if demote {
                d.def = None;
            }
        }
        out
    }

    /// Pretty-prints with the space's default variable names.
    pub fn display(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for c in &self.constraints {
            let e = c.expr.display_with(|i| self.space.var_name(i));
            let op = match c.kind {
                ConstraintKind::Eq => "= 0",
                ConstraintKind::GeZero => ">= 0",
            };
            parts.push(format!("{e} {op}"));
        }
        let dims: Vec<String> = (0..self.space.n_dim())
            .map(|i| self.space.var_name(self.space.in_offset() + i))
            .collect();
        format!("{{ [{}] : {} }}", dims.join(", "), parts.join(" and "))
    }
}

impl fmt::Display for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

fn divide_expr(e: &LinExpr, g: i64) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term() / g);
    for (i, c) in e.terms() {
        out.set_coeff(i, c / g);
    }
    out
}

fn divide_expr_floor(e: &LinExpr, g: i64, k: i64) -> LinExpr {
    let mut out = LinExpr::constant(k.div_euclid(g));
    for (i, c) in e.terms() {
        out.set_coeff(i, c / g);
    }
    out
}

// ---------------------------------------------------------------------------
// Integer feasibility solver
// ---------------------------------------------------------------------------

/// Integer division rounding toward negative infinity.
pub(crate) fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    a.div_euclid(b)
}

/// Integer division rounding toward positive infinity.
pub(crate) fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    -(-a).div_euclid(b)
}

/// Work budget for branch-and-bound searches.
#[derive(Debug, Clone)]
pub(crate) struct Budget {
    pub steps: u64,
    pub limit: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            steps: 0,
            limit: 50_000_000,
        }
    }
}

impl Budget {
    pub fn with_limit(limit: u64) -> Self {
        Budget { steps: 0, limit }
    }

    pub fn tick(&mut self, n: u64) -> Result<()> {
        self.steps += n;
        if self.steps > self.limit {
            Err(Error::SearchBudgetExceeded { budget: self.limit })
        } else {
            Ok(())
        }
    }
}

/// Variable interval with optional (unbounded) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interval {
    pub lo: Option<i64>,
    pub hi: Option<i64>,
}

impl Interval {
    pub fn full() -> Self {
        Interval { lo: None, hi: None }
    }

    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    pub fn singleton(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    pub fn width(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => Some(h.saturating_sub(l)),
            _ => None,
        }
    }
}

/// A constraint system over `n` integer variables, used by emptiness,
/// sampling, counting, and enumeration.
#[derive(Debug, Clone)]
pub(crate) struct System {
    pub n: usize,
    pub constraints: Vec<Constraint>,
}

impl System {
    pub fn new(n: usize, constraints: Vec<Constraint>) -> Self {
        System { n, constraints }
    }

    /// Substitutes away equality-defined variables (Gaussian elimination on
    /// unit-coefficient equalities). Eliminated variables are functions of
    /// the rest, so feasibility and point counts over the remaining
    /// variables are unchanged. Removes eliminated variables from `active`.
    pub fn gauss_eliminate(&mut self, active: &mut Vec<usize>) {
        loop {
            let mut target: Option<(usize, LinExpr)> = None;
            'scan: for c in &self.constraints {
                if c.kind != ConstraintKind::Eq {
                    continue;
                }
                for (v, coef) in c.expr.terms() {
                    if (coef == 1 || coef == -1) && active.contains(&v) {
                        // v = -(expr - coef*v)/coef
                        let mut rest = c.expr.clone();
                        rest.set_coeff(v, 0);
                        let replacement = if coef == 1 { -rest } else { rest };
                        target = Some((v, replacement));
                        break 'scan;
                    }
                }
            }
            let Some((v, replacement)) = target else {
                break;
            };
            for c in &mut self.constraints {
                c.expr = c.expr.substitute(v, &replacement);
            }
            self.constraints.retain(|c| {
                !(c.expr.is_constant()
                    && match c.kind {
                        ConstraintKind::Eq => c.expr.constant_term() == 0,
                        ConstraintKind::GeZero => c.expr.constant_term() >= 0,
                    })
            });
            active.retain(|&x| x != v);
        }
    }

    /// Detects contradictions between pairs of inequalities with exactly
    /// negated variable parts (`e >= 0` and `-e + k >= 0` with `k` too
    /// small), which interval propagation cannot see. Returns `false` on
    /// contradiction.
    pub fn negated_pair_consistent(&self) -> bool {
        use std::collections::HashMap;
        // Normalized var-part -> max constant seen with that part.
        let mut best: HashMap<Vec<(usize, i64)>, i64> = HashMap::new();
        let mut exprs: Vec<LinExpr> = Vec::new();
        for c in &self.constraints {
            match c.kind {
                ConstraintKind::GeZero => exprs.push(c.expr.clone()),
                ConstraintKind::Eq => {
                    exprs.push(c.expr.clone());
                    exprs.push(c.expr.clone() * -1);
                }
            }
        }
        for e in exprs {
            if e.is_constant() {
                if e.constant_term() < 0 {
                    return false;
                }
                continue;
            }
            let part: Vec<(usize, i64)> = e.terms().collect();
            let neg: Vec<(usize, i64)> = part.iter().map(|&(v, c)| (v, -c)).collect();
            if let Some(&kneg) = best.get(&neg) {
                // part·x + k >= 0 and -part·x + kneg >= 0 => k + kneg >= 0.
                if e.constant_term() + kneg < 0 {
                    return false;
                }
            }
            let entry = best.entry(part).or_insert(i64::MIN);
            *entry = (*entry).max(e.constant_term());
        }
        true
    }

    /// Decides feasibility without producing a sample: eliminates
    /// equalities first, which lets the interval/negated-pair machinery
    /// refute systems with long equality chains (dependence-analysis
    /// queries) cheaply.
    pub fn is_feasible(&self, budget: &mut Budget) -> Result<bool> {
        let mut sys = self.clone();
        let mut active: Vec<usize> = (0..self.n).collect();
        sys.gauss_eliminate(&mut active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        sys.feasible_rec(&active, budget)
    }

    fn feasible_rec(&self, active: &[usize], budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        let Some(iv) = self.propagate(budget)? else {
            return Ok(false);
        };
        if !self.negated_pair_consistent() {
            return Ok(false);
        }
        // Residual constraints after fixing singletons.
        let mut sys = self.clone();
        let mut remaining: Vec<usize> = Vec::new();
        for &v in active {
            if let Some(x) = iv[v].singleton() {
                sys.substitute(v, x);
            } else {
                remaining.push(v);
            }
        }
        for c in &sys.constraints {
            if c.expr.is_constant() {
                let k = c.expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if !ok {
                    return Ok(false);
                }
            }
        }
        // Drop variables that no longer appear in any constraint.
        remaining.retain(|&v| sys.constraints.iter().any(|c| c.expr.coeff(v) != 0));
        if remaining.is_empty() {
            return Ok(true);
        }
        let mut sub_active = remaining.clone();
        sys.gauss_eliminate(&mut sub_active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        sub_active.retain(|&v| sys.constraints.iter().any(|c| c.expr.coeff(v) != 0));
        if sub_active.is_empty() {
            // Only constant constraints can remain; re-check them.
            return Ok(sys.constraints.iter().all(|c| {
                !c.expr.is_constant()
                    || match c.kind {
                        ConstraintKind::Eq => c.expr.constant_term() == 0,
                        ConstraintKind::GeZero => c.expr.constant_term() >= 0,
                    }
            }));
        }
        let Some(iv2) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Branch on the narrowest-interval variable.
        let mut best: Option<(usize, i64)> = None;
        for &v in &sub_active {
            if let Some(w) = iv2[v].width() {
                if best.is_none_or(|(_, bw)| w < bw) {
                    best = Some((v, w));
                }
            }
        }
        let Some((var, _)) = best else {
            return Err(Error::Unbounded { var: sub_active[0] });
        };
        let (lo, hi) = (iv2[var].lo.unwrap(), iv2[var].hi.unwrap());
        let rest: Vec<usize> = sub_active.iter().copied().filter(|&v| v != var).collect();
        for x in lo..=hi {
            budget.tick(1)?;
            let mut s = sys.clone();
            s.substitute(var, x);
            if s.feasible_rec(&rest, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Interval propagation to (bounded) fixpoint. Returns `None` if a
    /// contradiction is detected.
    pub fn propagate(&self, budget: &mut Budget) -> Result<Option<Vec<Interval>>> {
        let mut iv = vec![Interval::full(); self.n];
        // Round-robin until fixpoint or iteration cap.
        let max_rounds = 4 + 2 * self.n.max(4);
        for _ in 0..max_rounds {
            budget.tick(self.constraints.len() as u64)?;
            let mut changed = false;
            for c in &self.constraints {
                match c.kind {
                    ConstraintKind::GeZero => {
                        if !tighten_ge0(&c.expr, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                    }
                    ConstraintKind::Eq => {
                        if !tighten_ge0(&c.expr, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                        let neg = c.expr.clone() * -1;
                        if !tighten_ge0(&neg, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                    }
                }
            }
            if iv.iter().any(Interval::is_empty) {
                return Ok(None);
            }
            if !changed {
                break;
            }
        }
        Ok(Some(iv))
    }

    /// Substitutes variable `idx` with a constant, removing it from all
    /// constraints (its coefficient becomes zero).
    pub fn substitute(&mut self, idx: usize, value: i64) {
        for c in &mut self.constraints {
            c.expr = c.expr.substitute_const(idx, value);
        }
    }

    /// Checks whether a full assignment satisfies all constraints.
    pub fn check(&self, values: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(values))
    }

    /// Finds one integer solution or proves emptiness.
    #[allow(clippy::type_complexity)]
    pub fn sample(&self, budget: &mut Budget) -> Result<Option<Vec<i64>>> {
        let mut values = vec![None; self.n];
        if self.sample_rec(&mut values, budget)? {
            Ok(Some(values.into_iter().map(|v| v.unwrap_or(0)).collect()))
        } else {
            Ok(None)
        }
    }

    fn sample_rec(&self, values: &mut Vec<Option<i64>>, budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        // Build the residual system with known values substituted.
        let mut sys = self.clone();
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = *v {
                sys.substitute(i, v);
            }
        }
        let Some(iv) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Assign all singletons.
        let mut fixed = Vec::new();
        for i in 0..self.n {
            if values[i].is_none() {
                if let Some(v) = iv[i].singleton() {
                    values[i] = Some(v);
                    fixed.push(i);
                }
            }
        }
        // Find the unassigned variable with the smallest finite range.
        let mut best: Option<(usize, i64)> = None;
        let mut unbounded_free = None;
        for i in 0..self.n {
            if values[i].is_some() {
                continue;
            }
            match iv[i].width() {
                Some(w) => {
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((i, w));
                    }
                }
                None => unbounded_free = Some(i),
            }
        }
        match best {
            None => {
                let mut trial = values.clone();
                if let Some(u) = unbounded_free {
                    // Try anchoring each half-bounded variable at its finite
                    // endpoint (covers common one-sided cases like `i >= 0`);
                    // fully free variables get 0.
                    for (i, v) in trial.iter_mut().enumerate() {
                        if v.is_none() {
                            *v = Some(iv[i].lo.or(iv[i].hi).unwrap_or(0));
                        }
                    }
                    let full: Vec<i64> = trial.iter().map(|v| v.unwrap()).collect();
                    if self.check(&full) {
                        *values = trial;
                        return Ok(true);
                    }
                    // Residual constraints still mention a free variable and
                    // the anchor failed: we cannot decide without an
                    // unbounded search.
                    let mut sys2 = self.clone();
                    for (i, v) in values.iter().enumerate() {
                        if let Some(v) = *v {
                            sys2.substitute(i, v);
                        }
                    }
                    let residual_mentions_free = sys2
                        .constraints
                        .iter()
                        .any(|c| c.expr.terms().any(|(i, _)| values[i].is_none()));
                    if residual_mentions_free {
                        return Err(Error::Unbounded { var: u });
                    }
                }
                let full: Vec<i64> = values.iter().map(|v| v.unwrap_or(0)).collect();
                if self.check(&full) {
                    for (i, v) in values.iter_mut().enumerate() {
                        if v.is_none() {
                            *v = Some(full[i]);
                        }
                    }
                    Ok(true)
                } else {
                    for i in fixed {
                        values[i] = None;
                    }
                    Ok(false)
                }
            }
            Some((var, _)) => {
                let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
                for v in lo..=hi {
                    budget.tick(1)?;
                    values[var] = Some(v);
                    if self.sample_rec(values, budget)? {
                        return Ok(true);
                    }
                }
                values[var] = None;
                for i in fixed {
                    values[i] = None;
                }
                Ok(false)
            }
        }
    }
}

/// Tightens intervals using `expr >= 0`. Returns false on contradiction.
fn tighten_ge0(expr: &LinExpr, iv: &mut [Interval], changed: &mut bool) -> bool {
    // max over box of expr; None = +infinity.
    let mut smax: Option<i64> = Some(expr.constant_term());
    for (i, c) in expr.terms() {
        let contrib = if c > 0 {
            iv[i].hi.map(|h| c.saturating_mul(h))
        } else {
            iv[i].lo.map(|l| c.saturating_mul(l))
        };
        match (smax, contrib) {
            (Some(s), Some(x)) => smax = Some(s.saturating_add(x)),
            _ => smax = None,
        }
    }
    if let Some(s) = smax {
        if s < 0 {
            return false;
        }
    }
    // Tighten each variable: a_j * v_j >= -(expr - a_j v_j) over the box.
    for (j, a) in expr.terms() {
        // rest_max = max over box of (expr - a_j * v_j)
        let mut rest_max: Option<i64> = Some(expr.constant_term());
        for (i, c) in expr.terms() {
            if i == j {
                continue;
            }
            let contrib = if c > 0 {
                iv[i].hi.map(|h| c.saturating_mul(h))
            } else {
                iv[i].lo.map(|l| c.saturating_mul(l))
            };
            match (rest_max, contrib) {
                (Some(s), Some(x)) => rest_max = Some(s.saturating_add(x)),
                _ => rest_max = None,
            }
        }
        let Some(rm) = rest_max else { continue };
        if a > 0 {
            // v_j >= ceil(-rm / a)
            let bound = ceil_div(-rm, a);
            if iv[j].lo.is_none_or(|l| bound > l) {
                iv[j].lo = Some(bound);
                *changed = true;
            }
        } else {
            // v_j <= floor(-rm / a)  (a negative: flips)
            let bound = floor_div(rm, -a);
            if iv[j].hi.is_none_or(|h| bound < h) {
                iv[j].hi = Some(bound);
                *changed = true;
            }
        }
        if iv[j].is_empty() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2(n: i64, m: i64) -> BasicSet {
        // { [i,j] : 0 <= i < n, 0 <= j < m }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n - 1);
        b.add_range(1, 0, m - 1);
        b
    }

    #[test]
    fn universe_and_contains() {
        let b = box2(4, 3);
        assert!(b.contains(&[0, 0]).unwrap());
        assert!(b.contains(&[3, 2]).unwrap());
        assert!(!b.contains(&[4, 0]).unwrap());
        assert!(!b.contains(&[-1, 0]).unwrap());
    }

    #[test]
    fn sample_and_emptiness() {
        let b = box2(4, 3);
        assert!(!b.is_empty().unwrap());
        let p = b.sample().unwrap().unwrap();
        assert!(b.contains(&p[..2]).unwrap());

        let mut e = box2(4, 3);
        e.add_ge0(LinExpr::var(0) - LinExpr::constant(10)); // i >= 10: empty
        assert!(e.is_empty().unwrap());
    }

    #[test]
    fn equality_constraints() {
        let mut b = box2(10, 10);
        // i + j == 7, i - j == 1  =>  i=4, j=3
        b.add_eq(LinExpr::var(0) + LinExpr::var(1) - LinExpr::constant(7));
        b.add_eq(LinExpr::var(0) - LinExpr::var(1) - LinExpr::constant(1));
        let p = b.sample().unwrap().unwrap();
        assert_eq!(&p[..2], &[4, 3]);
    }

    #[test]
    fn div_semantics() {
        // { [i] : 0 <= i < 16, q = floor(i/4), q == 2 }  =>  i in 8..12
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 15);
        let q = b.add_div(LinExpr::var(0), 4);
        b.add_eq(LinExpr::var(q) - LinExpr::constant(2));
        assert!(b.contains(&[8]).unwrap());
        assert!(b.contains(&[11]).unwrap());
        assert!(!b.contains(&[7]).unwrap());
        assert!(!b.contains(&[12]).unwrap());
        assert!(b.all_divs_determined());
    }

    #[test]
    fn modulo_via_divs() {
        // { [i] : 0 <= i < 12, i mod 3 == 1 } => 1,4,7,10
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 11);
        let q = b.add_div(LinExpr::var(0), 3);
        // i - 3q == 1
        b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 3 - LinExpr::constant(1));
        let members: Vec<i64> = (0..12).filter(|&i| b.contains(&[i]).unwrap()).collect();
        assert_eq!(members, vec![1, 4, 7, 10]);
    }

    #[test]
    fn intersect_merges_divs() {
        let mut a = BasicSet::universe(Space::set(0, 1));
        a.add_range(0, 0, 15);
        let qa = a.add_div(LinExpr::var(0), 4);
        a.add_eq(LinExpr::var(qa) - LinExpr::constant(2));

        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 15);
        let qb = b.add_div(LinExpr::var(0), 2);
        // i even: i - 2*floor(i/2) == 0
        b.add_eq(LinExpr::var(0) - LinExpr::var(qb) * 2);

        let c = a.intersect(&b).unwrap();
        let members: Vec<i64> = (0..16).filter(|&i| c.contains(&[i]).unwrap()).collect();
        assert_eq!(members, vec![8, 10]);
    }

    #[test]
    fn projection_keeps_points() {
        // { [i,j] : 0<=i<4, j == 2i } project j out => { [i] : 0<=i<4 }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 3);
        b.add_eq(LinExpr::var(1) - LinExpr::var(0) * 2);
        let p = b.project_dims_out(1, 1);
        assert_eq!(p.space().n_dim(), 1);
        assert!(!p.all_divs_determined());
        // Sampling still works (existential found by search).
        let s = p.sample().unwrap().unwrap();
        assert!((0..4).contains(&s[0]));
    }

    #[test]
    fn simplify_normalizes() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::var(0) * 2 - LinExpr::constant(3)); // 2i >= 3 => i >= 2
        assert!(b.simplify());
        assert_eq!(b.constraints().len(), 1);
        assert!(b.contains(&[2]).unwrap());
        assert!(!b.contains(&[1]).unwrap());
    }

    #[test]
    fn simplify_detects_trivial_emptiness() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::constant(-5));
        assert!(!b.simplify());
        assert!(b.is_empty().unwrap());
    }

    #[test]
    fn unbounded_reported() {
        // { [i] : i >= 0 } with a genuine search need is unbounded-but-satisfiable:
        // sampling should still succeed because propagation leaves residual
        // constraints mentioning the free var... i >= 0 gives lo bound but no hi.
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::var(0));
        // i >= 0 alone: propagation gives lo=0, no hi; no other constraints
        // mention i after substitution... the constraint itself mentions i.
        // The solver reports Unbounded in this case, which is acceptable.
        match b.sample() {
            Ok(Some(p)) => assert!(p[0] >= 0),
            Err(Error::Unbounded { .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
