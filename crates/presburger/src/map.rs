//! Integer relations (maps) built from the same constraint language as
//! sets, with composition, inversion, domain/range operations, and an
//! explicit lexicographic-minimum solver.

use std::fmt;

use crate::basic::{BasicSet, Div};
use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::set::Set;
use crate::space::Space;
use crate::Constraint;

/// A single-disjunct integer relation `{ [x] -> [y] : constraints }`.
#[derive(Debug, Clone)]
pub struct BasicMap {
    inner: BasicSet,
}

impl BasicMap {
    /// The universe relation of a map space.
    ///
    /// # Panics
    ///
    /// Panics if `space` is a set space.
    pub fn universe(space: Space) -> Self {
        assert!(!space.is_set() || space.n_out() == 0, "map space expected");
        BasicMap {
            inner: BasicSet::universe(space),
        }
    }

    /// Builds the map `{ [x] -> [y] : y_j == exprs[j](params, x) }`,
    /// the common shape of array access and schedule maps.
    pub fn from_affine_exprs(n_param: usize, n_in: usize, exprs: &[LinExpr]) -> Self {
        let space = Space::map(n_param, n_in, exprs.len());
        let mut m = BasicMap::universe(space.clone());
        for (j, e) in exprs.iter().enumerate() {
            // e is over [params, in]; layout matches the map's prefix.
            let out_var = LinExpr::var(space.out_offset() + j);
            m.inner.add_eq(out_var - e.clone());
        }
        m
    }

    /// The identity map on `d` dimensions.
    pub fn identity(n_param: usize, d: usize) -> Self {
        let exprs: Vec<LinExpr> = (0..d).map(|i| LinExpr::var(n_param + i)).collect();
        BasicMap::from_affine_exprs(n_param, d, &exprs)
    }

    /// The space.
    pub fn space(&self) -> &Space {
        self.inner.space()
    }

    /// Immutable view of the underlying constraint set.
    pub fn as_basic_set(&self) -> &BasicSet {
        &self.inner
    }

    /// Mutable access for adding constraints over the flat layout
    /// `[params, in, out, divs]`.
    pub fn basic_set_mut(&mut self) -> &mut BasicSet {
        &mut self.inner
    }

    /// Wraps a basic set whose space is a map space.
    pub fn from_basic_set(inner: BasicSet) -> Self {
        BasicMap { inner }
    }

    /// Reverses the relation: `{ [y] -> [x] }`.
    pub fn reverse(&self) -> BasicMap {
        let sp = self.inner.space().clone();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        let n_total = self.inner.n_total();
        let mut perm = vec![0usize; n_total];
        for (p, item) in perm.iter_mut().enumerate().take(np) {
            *item = p;
        }
        for i in 0..ni {
            perm[np + i] = np + no + i;
        }
        for o in 0..no {
            perm[np + ni + o] = np + o;
        }
        for d in 0..self.inner.divs().len() {
            perm[np + ni + no + d] = np + ni + no + d;
        }
        let inner = self.inner.clone().permute(&perm, sp.reversed());
        BasicMap { inner }
    }

    /// Whether the relation holds for a concrete `(params ++ x ++ y)` tuple.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if a search would be needed.
    pub fn contains_pair(&self, point: &[i64]) -> Result<bool> {
        self.inner.contains(point)
    }

    /// Composition `other ∘ self`: first apply `self`, then `other`.
    /// `self: X -> Y`, `other: Y -> Z`, result `X -> Z`. The mid tuple
    /// becomes undetermined existentials.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if `self`'s range arity differs
    /// from `other`'s domain arity or parameter counts differ.
    pub fn apply_range(&self, other: &BasicMap) -> Result<BasicMap> {
        let sa = self.inner.space().clone();
        let sb = other.inner.space().clone();
        if sa.n_out() != sb.n_in() || sa.n_param() != sb.n_param() {
            return Err(Error::SpaceMismatch {
                expected: format!("[{}] -> [..]", sa.n_out()),
                found: format!("[{}] -> [..]", sb.n_in()),
            });
        }
        let (np, nx, ny, nz) = (sa.n_param(), sa.n_in(), sa.n_out(), sb.n_out());
        let (nda, ndb) = (self.inner.divs().len(), other.inner.divs().len());
        let space = Space::map(np, nx, nz);
        let mut out = BasicSet::universe(space.clone());
        // Result layout: [p(np), x(nx), z(nz), y(ny), da(nda), db(ndb)].
        // y-block divs (undetermined):
        for _ in 0..ny {
            out.push_div_raw(Div { def: None });
        }
        let y_base = np + nx + nz;
        let da_base = y_base + ny;
        let db_base = da_base + nda;
        // Permutation for a's vars: [p, x, y, da] -> result indices.
        let mut perm_a = vec![0usize; np + nx + ny + nda];
        for (p, item) in perm_a.iter_mut().enumerate().take(np) {
            *item = p;
        }
        for i in 0..nx {
            perm_a[np + i] = np + i;
        }
        for j in 0..ny {
            perm_a[np + nx + j] = y_base + j;
        }
        for k in 0..nda {
            perm_a[np + nx + ny + k] = da_base + k;
        }
        // Permutation for b's vars: [p, y, z, db] -> result indices.
        let mut perm_b = vec![0usize; np + ny + nz + ndb];
        for (p, item) in perm_b.iter_mut().enumerate().take(np) {
            *item = p;
        }
        for j in 0..ny {
            perm_b[np + j] = y_base + j;
        }
        for m in 0..nz {
            perm_b[np + ny + m] = np + nx + m;
        }
        for k in 0..ndb {
            perm_b[np + ny + nz + k] = db_base + k;
        }
        // Divs of a and b: keep definitions unless they reference an
        // undetermined (y-block or previously demoted) variable.
        let mut undet: Vec<usize> = (y_base..y_base + ny).collect();
        for (k, d) in self.inner.divs().iter().enumerate() {
            let new_def = d.def.as_ref().and_then(|(n, den)| {
                let n = n.permute_vars(&perm_a);
                if n.terms().any(|(i, _)| undet.contains(&i)) {
                    None
                } else {
                    Some((n, *den))
                }
            });
            if new_def.is_none() {
                undet.push(da_base + k);
            }
            out.push_div_raw(Div { def: new_def });
        }
        for (k, d) in other.inner.divs().iter().enumerate() {
            let new_def = d.def.as_ref().and_then(|(n, den)| {
                let n = n.permute_vars(&perm_b);
                if n.terms().any(|(i, _)| undet.contains(&i)) {
                    None
                } else {
                    Some((n, *den))
                }
            });
            if new_def.is_none() {
                undet.push(db_base + k);
            }
            out.push_div_raw(Div { def: new_def });
        }
        for c in self.inner.constraints() {
            out.add_constraint(Constraint {
                expr: c.expr.permute_vars(&perm_a),
                kind: c.kind,
            });
        }
        for c in other.inner.constraints() {
            out.add_constraint(Constraint {
                expr: c.expr.permute_vars(&perm_b),
                kind: c.kind,
            });
        }
        Ok(BasicMap { inner: out })
    }

    /// The domain of the relation as a set (outputs projected out).
    pub fn domain(&self) -> BasicSet {
        let sp = self.inner.space();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        let as_set = self.inner.clone().recast(Space::set(np, ni + no));
        as_set.project_dims_out(ni, no)
    }

    /// The range of the relation as a set (inputs projected out).
    pub fn range(&self) -> BasicSet {
        let sp = self.inner.space();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        let as_set = self.inner.clone().recast(Space::set(np, ni + no));
        as_set.project_dims_out(0, ni).recast(Space::set(np, no))
    }

    /// Intersects the domain with a set over the input space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] on arity mismatch.
    pub fn intersect_domain(&self, dom: &BasicSet) -> Result<BasicMap> {
        self.embed_intersect(dom, true)
    }

    /// Intersects the range with a set over the output space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] on arity mismatch.
    pub fn intersect_range(&self, rng: &BasicSet) -> Result<BasicMap> {
        self.embed_intersect(rng, false)
    }

    fn embed_intersect(&self, s: &BasicSet, on_domain: bool) -> Result<BasicMap> {
        let sp = self.inner.space().clone();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        let want = if on_domain { ni } else { no };
        if s.space().n_dim() != want || s.space().n_param() != np {
            return Err(Error::SpaceMismatch {
                expected: format!("set of {want} dims"),
                found: format!("set of {} dims", s.space().n_dim()),
            });
        }
        let mut out = self.inner.clone();
        let div_base = out.n_total();
        // Map s's vars [p, dims, divs_s] into the map layout.
        let mut perm = vec![0usize; s.n_total()];
        for (p, item) in perm.iter_mut().enumerate().take(np) {
            *item = p;
        }
        let dim_base = if on_domain { np } else { np + ni };
        for d in 0..want {
            perm[np + d] = dim_base + d;
        }
        for k in 0..s.divs().len() {
            perm[np + want + k] = div_base + k;
        }
        for d in s.divs() {
            out.push_div_raw(Div {
                def: d.def.as_ref().map(|(n, den)| (n.permute_vars(&perm), *den)),
            });
        }
        for c in s.constraints() {
            out.add_constraint(Constraint {
                expr: c.expr.permute_vars(&perm),
                kind: c.kind,
            });
        }
        Ok(BasicMap { inner: out })
    }

    /// Intersection with another relation over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the spaces differ.
    pub fn intersect(&self, other: &BasicMap) -> Result<BasicMap> {
        Ok(BasicMap {
            inner: self.inner.intersect(&other.inner)?,
        })
    }

    /// A concrete `(x, y)` pair in the relation, if one exists — the
    /// witness-extraction primitive for dependence analysis: a nonempty
    /// dependence relation yields an actual conflicting iteration pair.
    ///
    /// # Errors
    ///
    /// Propagates solver budget errors.
    pub fn sample_pair(&self) -> Result<Option<(Vec<i64>, Vec<i64>)>> {
        let sp = self.inner.space();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        Ok(self
            .inner
            .sample()?
            .map(|v| (v[np..np + ni].to_vec(), v[np + ni..np + ni + no].to_vec())))
    }

    /// [`BasicMap::sample_pair`] through a batched [`crate::Context`],
    /// reusing its solver arena (the relation was typically just checked
    /// non-empty in the same batch).
    ///
    /// # Errors
    ///
    /// Propagates solver budget errors.
    pub fn sample_pair_in(&self, ctx: &mut crate::Context) -> Result<Option<(Vec<i64>, Vec<i64>)>> {
        let sp = self.inner.space();
        let (np, ni, no) = (sp.n_param(), sp.n_in(), sp.n_out());
        Ok(ctx
            .sample(self.as_basic_set())?
            .map(|v| (v[np..np + ni].to_vec(), v[np + ni..np + ni + no].to_vec())))
    }

    /// For a relation with equal input/output arity `d`, the set of
    /// differences `{ y - x : (x -> y) in self }` (exact; the original
    /// tuples become existentials).
    pub fn deltas(&self) -> BasicSet {
        let sp = self.inner.space();
        let (np, d) = (sp.n_param(), sp.n_in());
        assert_eq!(sp.n_in(), sp.n_out(), "deltas requires equal arities");
        // Target layout: [p, delta(d), x(d), y(d), divs...].
        let n_old = self.inner.n_total();
        let mut perm = vec![0usize; n_old];
        for (p, item) in perm.iter_mut().enumerate().take(np) {
            *item = p;
        }
        for i in 0..d {
            perm[np + i] = np + d + i; // x
            perm[np + d + i] = np + 2 * d + i; // y
        }
        for k in 0..self.inner.divs().len() {
            perm[np + 2 * d + k] = np + 3 * d + k;
        }
        let mut out = BasicSet::universe(Space::set(np, d));
        for i in 0..2 * d {
            let _ = i;
            out.push_div_raw(Div { def: None });
        }
        for dv in self.inner.divs() {
            // x/y became existentials: demote defs that reference them.
            let def = dv.def.as_ref().and_then(|(n, den)| {
                let n = n.permute_vars(&perm);
                if n.terms().any(|(i, _)| (np + d..np + 3 * d).contains(&i)) {
                    None
                } else {
                    Some((n, *den))
                }
            });
            out.push_div_raw(Div { def });
        }
        for c in self.inner.constraints() {
            out.add_constraint(Constraint {
                expr: c.expr.permute_vars(&perm),
                kind: c.kind,
            });
        }
        for i in 0..d {
            // delta_i == y_i - x_i
            out.add_eq(
                LinExpr::var(np + i) + LinExpr::var(np + d + i) - LinExpr::var(np + 2 * d + i),
            );
        }
        out
    }
}

impl fmt::Display for BasicMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

/// A finite union of [`BasicMap`] disjuncts.
///
/// Like [`Set`], disjuncts are kept disjoint by [`Map::union`].
#[derive(Debug, Clone)]
pub struct Map {
    space: Space,
    basics: Vec<BasicMap>,
}

impl Map {
    /// The empty relation of a map space.
    pub fn empty(space: Space) -> Self {
        Map {
            space,
            basics: Vec::new(),
        }
    }

    /// Wraps a single basic map.
    pub fn from_basic(m: BasicMap) -> Self {
        Map {
            space: m.space().clone(),
            basics: vec![m],
        }
    }

    /// The space.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The disjuncts.
    pub fn basics(&self) -> &[BasicMap] {
        &self.basics
    }

    fn to_set(&self) -> Set {
        let sp = Space::set(self.space.n_param(), self.space.n_dim());
        let mut s = Set::empty(sp.clone());
        for b in &self.basics {
            s = s
                .union_disjoint(&Set::from_basic(b.inner.clone().recast(sp.clone())))
                .expect("same space");
        }
        s
    }

    fn from_set(s: Set, space: Space) -> Map {
        let basics = s
            .basics()
            .iter()
            .map(|b| BasicMap {
                inner: b.clone().recast(space.clone()),
            })
            .collect();
        Map { space, basics }
    }

    /// Union preserving disjointness (requires determined divs in `self`).
    ///
    /// # Errors
    ///
    /// See [`Set::union`].
    pub fn union(&self, other: &Map) -> Result<Map> {
        let s = self.to_set().union(&other.to_set())?;
        Ok(Map::from_set(s, self.space.clone()))
    }

    /// Union without disjointness enforcement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the spaces differ.
    pub fn union_disjoint(&self, other: &Map) -> Result<Map> {
        if self.space != other.space {
            return Err(Error::SpaceMismatch {
                expected: self.space.to_string(),
                found: other.space.to_string(),
            });
        }
        let mut basics = self.basics.clone();
        basics.extend(other.basics.iter().cloned());
        Ok(Map {
            space: self.space.clone(),
            basics,
        })
    }

    /// Intersection.
    ///
    /// # Errors
    ///
    /// See [`Set::intersect`].
    pub fn intersect(&self, other: &Map) -> Result<Map> {
        let s = self.to_set().intersect(&other.to_set())?;
        Ok(Map::from_set(s, self.space.clone()))
    }

    /// Difference `self \ other`.
    ///
    /// # Errors
    ///
    /// See [`Set::subtract`].
    pub fn subtract(&self, other: &Map) -> Result<Map> {
        let s = self.to_set().subtract(&other.to_set())?;
        Ok(Map::from_set(s, self.space.clone()))
    }

    /// Composition `other ∘ self` over all disjunct pairs.
    ///
    /// # Errors
    ///
    /// See [`BasicMap::apply_range`].
    pub fn apply_range(&self, other: &Map) -> Result<Map> {
        let space = Space::map(self.space.n_param(), self.space.n_in(), other.space.n_out());
        let mut out = Map::empty(space);
        for a in &self.basics {
            for b in &other.basics {
                out.basics.push(a.apply_range(b)?);
            }
        }
        Ok(out)
    }

    /// Reversal of every disjunct.
    pub fn reverse(&self) -> Map {
        Map {
            space: self.space.reversed(),
            basics: self.basics.iter().map(BasicMap::reverse).collect(),
        }
    }

    /// Domain as a union set.
    pub fn domain(&self) -> Set {
        let sp = Space::set(self.space.n_param(), self.space.n_in());
        let mut s = Set::empty(sp.clone());
        for b in &self.basics {
            s = s
                .union_disjoint(&Set::from_basic(b.domain()))
                .expect("same space");
        }
        s
    }

    /// Range as a union set.
    pub fn range(&self) -> Set {
        let sp = Space::set(self.space.n_param(), self.space.n_out());
        let mut s = Set::empty(sp.clone());
        for b in &self.basics {
            s = s
                .union_disjoint(&Set::from_basic(b.range()))
                .expect("same space");
        }
        s
    }

    /// Counts the pairs in the relation (disjuncts must be disjoint).
    ///
    /// # Errors
    ///
    /// See [`Set::count`].
    pub fn count_pairs(&self) -> Result<i128> {
        self.to_set().count()
    }

    /// Counts the pairs in the relation through a batched [`crate::Context`],
    /// sharing its memoizing count cache across queries.
    ///
    /// # Errors
    ///
    /// See [`Set::count`].
    pub fn count_pairs_in(&self, ctx: &mut crate::Context) -> Result<i128> {
        ctx.count_set(&self.to_set())
    }

    /// Whether the relation is empty.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn is_empty(&self) -> Result<bool> {
        self.to_set().is_empty()
    }

    /// A concrete `(x, y)` pair from the first inhabited disjunct.
    ///
    /// # Errors
    ///
    /// See [`BasicMap::sample_pair`].
    pub fn sample_pair(&self) -> Result<Option<(Vec<i64>, Vec<i64>)>> {
        for b in &self.basics {
            if let Some(p) = b.sample_pair()? {
                return Ok(Some(p));
            }
        }
        Ok(None)
    }

    /// Enumerates up to `max` pairs `(x, y)` in lexicographic order of the
    /// concatenated tuple.
    ///
    /// # Errors
    ///
    /// See [`Set::enumerate`].
    pub fn enumerate_pairs(&self, max: u64) -> Result<Vec<(Vec<i64>, Vec<i64>)>> {
        let ni = self.space.n_in();
        Ok(self
            .to_set()
            .enumerate(max)?
            .into_iter()
            .map(|p| (p[..ni].to_vec(), p[ni..].to_vec()))
            .collect())
    }

    /// Whether `self ⊆ other` as relations.
    ///
    /// # Errors
    ///
    /// See [`Set::subtract`] (requires determined divs in `other`).
    pub fn is_subset(&self, other: &Map) -> Result<bool> {
        self.to_set().is_subset(&other.to_set())
    }

    /// Whether the relations contain exactly the same pairs.
    ///
    /// # Errors
    ///
    /// See [`Map::is_subset`].
    pub fn is_equal(&self, other: &Map) -> Result<bool> {
        Ok(self.is_subset(other)? && other.is_subset(self)?)
    }

    /// For each point of the (finite, enumerable) domain, the
    /// lexicographically smallest image point — the explicit analogue of
    /// isl's `lexmin`. Exact for any relation, intended for small exact
    /// analyses.
    ///
    /// # Errors
    ///
    /// Returns budget errors if the domain exceeds `max_domain` points.
    pub fn lexmin_explicit(&self, max_domain: u64) -> Result<Vec<(Vec<i64>, Vec<i64>)>> {
        let dom = self.domain();
        let points = dom.enumerate(max_domain)?;
        let np = self.space.n_param();
        let ni = self.space.n_in();
        let no = self.space.n_out();
        let mut out = Vec::with_capacity(points.len());
        for x in points {
            let mut best: Option<Vec<i64>> = None;
            for b in &self.basics {
                let mut bs = b.inner.clone();
                for (i, &v) in x.iter().enumerate() {
                    bs.fix_var(np + i, v);
                }
                if let Some(y) = lexmin_out(&bs, np + ni, no)? {
                    best = match best {
                        None => Some(y),
                        Some(cur) => Some(if y < cur { y } else { cur }),
                    };
                }
            }
            if let Some(y) = best {
                out.push((x, y));
            }
        }
        Ok(out)
    }
}

/// Sequentially minimizes the `no` variables starting at `base` within a
/// feasible basic set, returning the lexicographic minimum assignment of
/// those variables (or `None` if the set is empty).
fn lexmin_out(bs: &BasicSet, base: usize, no: usize) -> Result<Option<Vec<i64>>> {
    let mut cur = bs.clone();
    if cur.is_empty()? {
        return Ok(None);
    }
    let mut result = Vec::with_capacity(no);
    for k in 0..no {
        let var = base + k;
        // Propagated lower bound, then ascend to the first feasible value.
        let sys = cur.system();
        let mut budget = crate::basic::Budget::default();
        let Some(iv) = sys.propagate(&mut budget)? else {
            return Ok(None);
        };
        let Some(lo) = iv[var].lo else {
            return Err(Error::Unbounded { var });
        };
        let hi = iv[var].hi.ok_or(Error::Unbounded { var })?;
        let mut found = None;
        for v in lo..=hi {
            let mut probe = cur.clone();
            probe.fix_var(var, v);
            if !probe.is_empty()? {
                found = Some(v);
                cur = probe;
                break;
            }
        }
        match found {
            Some(v) => result.push(v),
            None => return Ok(None),
        }
    }
    Ok(Some(result))
}

impl fmt::Display for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.basics.is_empty() {
            return write!(f, "{{ -> }}");
        }
        let parts: Vec<String> = self.basics.iter().map(|b| b.to_string()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `{ [i] -> [2i + 1] : 0 <= i < 10 }`
    fn affine_map() -> BasicMap {
        let mut m =
            BasicMap::from_affine_exprs(0, 1, &[LinExpr::var(0) * 2 + LinExpr::constant(1)]);
        m.basic_set_mut().add_range(0, 0, 9);
        m
    }

    #[test]
    fn affine_map_contains() {
        let m = affine_map();
        assert!(m.contains_pair(&[3, 7]).unwrap());
        assert!(!m.contains_pair(&[3, 6]).unwrap());
        assert!(!m.contains_pair(&[10, 21]).unwrap());
    }

    #[test]
    fn reverse_swaps() {
        let m = affine_map().reverse();
        assert!(m.contains_pair(&[7, 3]).unwrap());
        assert!(!m.contains_pair(&[3, 7]).unwrap());
    }

    #[test]
    fn composition() {
        // a: i -> 2i+1 (0<=i<10); b: j -> j+10. b∘a: i -> 2i+11.
        let a = affine_map();
        let mut b = BasicMap::from_affine_exprs(0, 1, &[LinExpr::var(0) + LinExpr::constant(10)]);
        b.basic_set_mut().add_range(0, 0, 100);
        let c = a.apply_range(&b).unwrap();
        let m = Map::from_basic(c);
        let pairs = m.enumerate_pairs(100).unwrap();
        assert_eq!(pairs.len(), 10);
        for (x, y) in pairs {
            assert_eq!(y[0], 2 * x[0] + 11);
        }
    }

    #[test]
    fn domain_and_range() {
        let m = Map::from_basic(affine_map());
        assert_eq!(m.domain().count().unwrap(), 10);
        let r = m.range();
        assert_eq!(r.count().unwrap(), 10);
        let pts = r.enumerate(100).unwrap();
        assert_eq!(pts[0], vec![1]);
        assert_eq!(pts[9], vec![19]);
    }

    #[test]
    fn count_pairs_matches() {
        let m = Map::from_basic(affine_map());
        assert_eq!(m.count_pairs().unwrap(), 10);
    }

    #[test]
    fn intersect_domain_restricts() {
        let m = affine_map();
        let mut dom = BasicSet::universe(Space::set(0, 1));
        dom.add_range(0, 2, 4);
        let r = Map::from_basic(m.intersect_domain(&dom).unwrap());
        assert_eq!(r.count_pairs().unwrap(), 3);
    }

    #[test]
    fn deltas_of_shift() {
        // { [i] -> [i+3] : 0<=i<5 } has deltas {3}.
        let mut m = BasicMap::from_affine_exprs(0, 1, &[LinExpr::var(0) + LinExpr::constant(3)]);
        m.basic_set_mut().add_range(0, 0, 4);
        let d = m.deltas();
        let s = Set::from_basic(d);
        let pts = s.enumerate(10).unwrap();
        assert_eq!(pts, vec![vec![3]]);
    }

    #[test]
    fn lexmin_explicit_picks_smallest() {
        // { [i] -> [j] : 0<=i<3, i <= j < 5 }: lexmin is j = i.
        let mut m = BasicMap::universe(Space::map(0, 1, 1));
        m.basic_set_mut().add_range(0, 0, 2);
        m.basic_set_mut().add_ge0(LinExpr::var(1) - LinExpr::var(0));
        m.basic_set_mut()
            .add_ge0(LinExpr::constant(4) - LinExpr::var(1));
        let lm = Map::from_basic(m).lexmin_explicit(100).unwrap();
        assert_eq!(lm.len(), 3);
        for (x, y) in lm {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn identity_map() {
        let id = BasicMap::identity(0, 2);
        assert!(id.contains_pair(&[1, 2, 1, 2]).unwrap());
        assert!(!id.contains_pair(&[1, 2, 2, 1]).unwrap());
    }

    #[test]
    fn subset_and_equal_relations() {
        let mut small = BasicMap::universe(Space::map(0, 1, 1));
        small.basic_set_mut().add_range(0, 0, 3);
        small
            .basic_set_mut()
            .add_eq(LinExpr::var(0) - LinExpr::var(1));
        let mut big = BasicMap::universe(Space::map(0, 1, 1));
        big.basic_set_mut().add_range(0, 0, 3);
        big.basic_set_mut().add_range(1, 0, 3);
        let (s, b) = (Map::from_basic(small), Map::from_basic(big));
        assert!(s.is_subset(&b).unwrap());
        assert!(!b.is_subset(&s).unwrap());
        assert!(s.is_equal(&s).unwrap());
        assert!(!s.is_equal(&b).unwrap());
    }

    #[test]
    fn map_subtract() {
        // all pairs 0..3 x 0..3 minus identity: 12 pairs.
        let mut all = BasicMap::universe(Space::map(0, 1, 1));
        all.basic_set_mut().add_range(0, 0, 3);
        all.basic_set_mut().add_range(1, 0, 3);
        let mut id = BasicMap::universe(Space::map(0, 1, 1));
        id.basic_set_mut().add_range(0, 0, 3);
        id.basic_set_mut().add_eq(LinExpr::var(0) - LinExpr::var(1));
        let d = Map::from_basic(all).subtract(&Map::from_basic(id)).unwrap();
        assert_eq!(d.count_pairs().unwrap(), 12);
    }
}
