//! Error type for Presburger operations.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by set/map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands had incompatible spaces.
    SpaceMismatch {
        /// What the operation expected.
        expected: String,
        /// What it got.
        found: String,
    },
    /// An operation required all div variables to be integer-division
    /// definitions (functions of the other variables), but an undetermined
    /// existential was present (e.g. introduced by projection/composition).
    UndeterminedDivs {
        /// The operation that could not proceed.
        operation: &'static str,
    },
    /// The branch-and-bound search exceeded its work budget.
    SearchBudgetExceeded {
        /// Budget that was exceeded, in search steps.
        budget: u64,
    },
    /// A variable was unbounded where a bounded search was required.
    Unbounded {
        /// Index of the unbounded variable in the flat layout.
        var: usize,
    },
    /// A parse error in the textual constraint syntax.
    Parse(String),
    /// Arithmetic overflow during constraint manipulation.
    Overflow,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SpaceMismatch { expected, found } => {
                write!(f, "space mismatch: expected {expected}, found {found}")
            }
            Error::UndeterminedDivs { operation } => {
                write!(
                    f,
                    "operation `{operation}` requires determined div variables"
                )
            }
            Error::SearchBudgetExceeded { budget } => {
                write!(f, "integer search exceeded budget of {budget} steps")
            }
            Error::Unbounded { var } => {
                write!(f, "variable {var} is unbounded in a bounded search")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<Error> = vec![
            Error::SpaceMismatch {
                expected: "a".into(),
                found: "b".into(),
            },
            Error::UndeterminedDivs {
                operation: "subtract",
            },
            Error::SearchBudgetExceeded { budget: 42 },
            Error::Unbounded { var: 3 },
            Error::Parse("bad token".into()),
            Error::Overflow,
        ];
        for e in cases {
            let m = e.to_string();
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
            assert!(!m.ends_with('.'), "{m}");
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Overflow);
    }
}
