//! Runtime A/B lever selecting between the flat-arena Presburger core and
//! the frozen Vec-based [`crate::reference`] implementation.
//!
//! Mirrors the simulation-path lever from the trace simulator: the
//! environment variable `POLYUFC_PRESBURGER_PATH=legacy` flips the default,
//! and [`force_presburger_path`] overrides it programmatically (used by the
//! differential harnesses to A/B both cores inside one process).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which Presburger solver core answers `is_empty` / `sample` / count
/// queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresburgerPath {
    /// The flat arena-row core (default).
    Flat,
    /// The frozen per-constraint reference core ([`crate::reference`]).
    Legacy,
}

/// 0 = follow the environment, 1 = force flat, 2 = force legacy.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Whether `POLYUFC_PRESBURGER_PATH=legacy` was set at first query.
static ENV_LEGACY: OnceLock<bool> = OnceLock::new();

/// Overrides the solver path for this process. `None` returns to honoring
/// the `POLYUFC_PRESBURGER_PATH` environment variable.
pub fn force_presburger_path(path: Option<PresburgerPath>) {
    let v = match path {
        None => 0,
        Some(PresburgerPath::Flat) => 1,
        Some(PresburgerPath::Legacy) => 2,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// The currently selected solver path.
pub fn presburger_path() -> PresburgerPath {
    if use_legacy() {
        PresburgerPath::Legacy
    } else {
        PresburgerPath::Flat
    }
}

/// Whether queries should route to the legacy reference core.
pub(crate) fn use_legacy() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENV_LEGACY.get_or_init(|| {
            std::env::var("POLYUFC_PRESBURGER_PATH")
                .map(|v| v.eq_ignore_ascii_case("legacy"))
                .unwrap_or(false)
        }),
    }
}
