//! Lexicographic order relations `{ [x] -> [y] : x ≺ y }` and friends,
//! used to build the forward/backward reuse maps of the cache model
//! (paper Sec. IV-A).

use crate::linexpr::LinExpr;
use crate::map::{BasicMap, Map};
use crate::space::Space;

fn lex_map(n_param: usize, d: usize, strict: bool, less: bool) -> Map {
    let space = Space::map(n_param, d, d);
    let mut out = Map::empty(space.clone());
    // Piece j (0-based): x_0 == y_0, ..., x_{j-1} == y_{j-1}, x_j < y_j
    // (or > for "greater"). Pieces are disjoint by construction.
    for j in 0..d {
        let mut m = BasicMap::universe(space.clone());
        for k in 0..j {
            let xk = LinExpr::var(n_param + k);
            let yk = LinExpr::var(n_param + d + k);
            m.basic_set_mut().add_eq(yk - xk);
        }
        let xj = LinExpr::var(n_param + j);
        let yj = LinExpr::var(n_param + d + j);
        if less {
            // y_j - x_j >= 1
            m.basic_set_mut().add_ge0(yj - xj - LinExpr::constant(1));
        } else {
            m.basic_set_mut().add_ge0(xj - yj - LinExpr::constant(1));
        }
        out = out.union_disjoint(&Map::from_basic(m)).expect("same space");
    }
    if !strict {
        // Add the equality piece x == y.
        let mut m = BasicMap::universe(space.clone());
        for k in 0..d {
            let xk = LinExpr::var(n_param + k);
            let yk = LinExpr::var(n_param + d + k);
            m.basic_set_mut().add_eq(yk - xk);
        }
        out = out.union_disjoint(&Map::from_basic(m)).expect("same space");
    }
    out
}

/// `{ [x] -> [y] : x ≺ y }` on `d`-dimensional tuples.
pub fn lex_lt_map(n_param: usize, d: usize) -> Map {
    lex_map(n_param, d, true, true)
}

/// `{ [x] -> [y] : x ⪯ y }`.
pub fn lex_le_map(n_param: usize, d: usize) -> Map {
    lex_map(n_param, d, false, true)
}

/// `{ [x] -> [y] : x ≻ y }`.
pub fn lex_gt_map(n_param: usize, d: usize) -> Map {
    lex_map(n_param, d, true, false)
}

/// `{ [x] -> [y] : x ⪰ y }`.
pub fn lex_ge_map(n_param: usize, d: usize) -> Map {
    lex_map(n_param, d, false, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicSet;
    use crate::set::Set;

    fn bounded(map: Map, lo: i64, hi: i64) -> Map {
        // Restrict both tuples to a box so pairs are enumerable.
        let d = map.space().n_in();
        let np = map.space().n_param();
        let mut dom = BasicSet::universe(Space::set(np, d));
        for i in 0..d {
            dom.add_range(np + i, lo, hi);
        }
        let mut out = Map::empty(map.space().clone());
        for b in map.basics() {
            let m = b
                .intersect_domain(&dom)
                .unwrap()
                .intersect_range(&dom)
                .unwrap();
            out = out.union_disjoint(&Map::from_basic(m)).unwrap();
        }
        out
    }

    #[test]
    fn lex_lt_1d_is_less_than() {
        let m = bounded(lex_lt_map(0, 1), 0, 3);
        let pairs = m.enumerate_pairs(100).unwrap();
        assert_eq!(pairs.len(), 6); // C(4,2)
        for (x, y) in pairs {
            assert!(x[0] < y[0]);
        }
    }

    #[test]
    fn lex_lt_2d_counts() {
        // 0..2 x 0..2 tuples: 9 points, strict pairs = 36.
        let m = bounded(lex_lt_map(0, 2), 0, 2);
        assert_eq!(m.count_pairs().unwrap(), 36);
        for (x, y) in m.enumerate_pairs(100).unwrap() {
            assert!(x < y, "{x:?} should be lex-less than {y:?}");
        }
    }

    #[test]
    fn lex_le_includes_equality() {
        let m = bounded(lex_le_map(0, 2), 0, 2);
        assert_eq!(m.count_pairs().unwrap(), 45);
    }

    #[test]
    fn lex_gt_is_reverse_of_lt() {
        let lt = bounded(lex_lt_map(0, 2), 0, 1);
        let gt = bounded(lex_gt_map(0, 2), 0, 1);
        let ltp: std::collections::BTreeSet<_> = lt
            .enumerate_pairs(100)
            .unwrap()
            .into_iter()
            .map(|(x, y)| (y, x))
            .collect();
        let gtp: std::collections::BTreeSet<_> =
            gt.enumerate_pairs(100).unwrap().into_iter().collect();
        assert_eq!(ltp, gtp);
    }

    #[test]
    fn lexorder_composes_with_sets() {
        // Next-access pattern: points {0,2,5}; successor pairs under lex_lt.
        let sp = Space::set(0, 1);
        let mut pts = Set::empty(sp.clone());
        for v in [0i64, 2, 5] {
            let mut b = BasicSet::universe(sp.clone());
            b.fix_var(0, v);
            pts = pts.union_disjoint(&Set::from_basic(b)).unwrap();
        }
        let lt = lex_lt_map(0, 1);
        let mut restricted = Map::empty(lt.space().clone());
        for b in lt.basics() {
            for db in pts.basics() {
                for rb in pts.basics() {
                    let m = b.intersect_domain(db).unwrap().intersect_range(rb).unwrap();
                    restricted = restricted.union_disjoint(&Map::from_basic(m)).unwrap();
                }
            }
        }
        assert_eq!(restricted.count_pairs().unwrap(), 3);
    }
}
