//! Closed-form symbolic counting by Fourier–Motzkin bound derivation and
//! Faulhaber summation — the size-independent first-choice strategy of the
//! barvinok substitute.
//!
//! The recursive enumerator in [`crate::count`] branches the narrowest
//! variable of a coupled component over its full interval, so a triangular
//! PolyBench domain at `N = 512` costs ~512 recursive solves and paper-scale
//! sizes (`N >= 4000`) exhaust the solver budget. This module instead
//! eliminates one variable at a time *symbolically*:
//!
//! 1. collect the variable's affine lower/upper bounds from the component's
//!    constraints (unit coefficient, or any coefficient against a constant
//!    rest, which rounds to an exact integer bound);
//! 2. if several lower (or upper) bounds compete, split the outer region on
//!    which bound dominates — each branch keeps a single `max`/`min`
//!    candidate, so the piecewise structure is made explicit;
//! 3. with a single bound pair `L <= v <= U`, the running count polynomial
//!    `P` is summed in closed form: `Σ_{v=L}^{U} v^k = S_k(U) - S_k(L-1)`
//!    with `S_k` the Faulhaber (Bernoulli) power-sum polynomial, composed
//!    with the affine bounds — a polynomial in the remaining variables;
//! 4. the region keeps the constraint `U - L >= 0`, so emptiness shows up
//!    as a violated constant constraint once every variable is eliminated.
//!
//! Triangle, trapezoid, banded, stride (div) and tile-tail shapes — the
//! domains affine loop nests actually produce — collapse to `O(poly(dims))`
//! work independent of the problem size. Shapes outside the fragment
//! (non-unit coefficients against non-constant rests, unbounded variables,
//! excessive region splits, coefficient overflow) return `None` and the
//! caller falls back to the verified enumerator.
//!
//! All arithmetic is exact: rationals over `i128` with checked operations;
//! any overflow aborts the symbolic attempt rather than corrupting a count.

use std::collections::BTreeMap;

use crate::basic::{ceil_div, floor_div, System};
use crate::{BasicSet, Constraint, ConstraintKind, LinExpr};

/// Work cap for one symbolic attempt, in elementary polynomial/region
/// operations. Failing shapes bail out quickly to the enumerator.
const MAX_WORK: u64 = 200_000;
/// Cap on region splits (branches of step 2).
const MAX_REGIONS: u64 = 4_096;
/// Cap on the monomial count of any intermediate polynomial.
const MAX_TERMS: usize = 4_096;
/// Cap on the degree of a summed variable (bounds the Faulhaber order).
const MAX_DEGREE: u32 = 16;

// ---------------------------------------------------------------------------
// Exact rationals over i128
// ---------------------------------------------------------------------------

/// A reduced rational with positive denominator. All operations are
/// checked; `None` means i128 overflow (the attempt is abandoned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rat {
    num: i128,
    den: i128,
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    const ZERO: Rat = Rat { num: 0, den: 1 };

    fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let (num, den) = if den < 0 {
            (num.checked_neg()?, den.checked_neg()?)
        } else {
            (num, den)
        };
        let g = gcd_i128(num, den).max(1);
        Some(Rat {
            num: num / g,
            den: den / g,
        })
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn add(self, o: Rat) -> Option<Rat> {
        let num = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Rat::new(num, self.den.checked_mul(o.den)?)
    }

    fn mul(self, o: Rat) -> Option<Rat> {
        Rat::new(self.num.checked_mul(o.num)?, self.den.checked_mul(o.den)?)
    }

    fn as_int(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }
}

// ---------------------------------------------------------------------------
// Multivariate polynomials with rational coefficients
// ---------------------------------------------------------------------------

/// A monomial: sorted `(variable, exponent > 0)` pairs.
type Monomial = Vec<(usize, u32)>;

/// A multivariate polynomial over the solver variables, stored as a
/// canonical monomial → coefficient map (zero coefficients are dropped, so
/// equality and term counts are meaningful).
#[derive(Debug, Clone, Default)]
struct Poly {
    terms: BTreeMap<Monomial, Rat>,
}

impl Poly {
    fn constant(r: Rat) -> Poly {
        let mut p = Poly::default();
        if !r.is_zero() {
            p.terms.insert(Vec::new(), r);
        }
        p
    }

    fn one() -> Poly {
        Poly::constant(Rat::int(1))
    }

    /// Lifts an affine expression into a polynomial.
    fn from_affine(e: &LinExpr) -> Poly {
        let mut p = Poly::constant(Rat::int(e.constant_term() as i128));
        for (v, c) in e.terms() {
            p.terms.insert(vec![(v, 1)], Rat::int(c as i128));
        }
        p
    }

    fn add_term(&mut self, m: Monomial, r: Rat) -> Option<()> {
        if r.is_zero() {
            return Some(());
        }
        match self.terms.entry(m) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(r);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let s = e.get().add(r)?;
                if s.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = s;
                }
            }
        }
        Some(())
    }

    fn add(&self, o: &Poly) -> Option<Poly> {
        let mut out = self.clone();
        for (m, &r) in &o.terms {
            out.add_term(m.clone(), r)?;
        }
        Some(out)
    }

    fn mul(&self, o: &Poly, work: &mut Work) -> Option<Poly> {
        let mut out = Poly::default();
        for (ma, &ra) in &self.terms {
            for (mb, &rb) in &o.terms {
                work.tick(1)?;
                out.add_term(mul_monomials(ma, mb)?, ra.mul(rb)?)?;
            }
        }
        (out.terms.len() <= MAX_TERMS).then_some(out)
    }

    fn mul_rat(&self, r: Rat) -> Option<Poly> {
        let mut out = Poly::default();
        for (m, &c) in &self.terms {
            out.add_term(m.clone(), c.mul(r)?)?;
        }
        Some(out)
    }

    /// Splits by the power of `v`: returns `(k, Q_k)` pairs such that
    /// `self = Σ_k Q_k · v^k` and no `Q_k` mentions `v`.
    fn split_var(&self, v: usize) -> Vec<(u32, Poly)> {
        let mut by_pow: BTreeMap<u32, Poly> = BTreeMap::new();
        for (m, &r) in &self.terms {
            let k = m
                .iter()
                .find(|&&(var, _)| var == v)
                .map(|&(_, e)| e)
                .unwrap_or(0);
            let rest: Monomial = m.iter().filter(|&&(var, _)| var != v).cloned().collect();
            // Coefficients of distinct source monomials with the same
            // residual monomial cannot collide (the split is a bijection),
            // so the unwrap-free insert below cannot lose terms.
            by_pow
                .entry(k)
                .or_default()
                .terms
                .entry(rest)
                .and_modify(|c| *c = c.add(r).unwrap_or(Rat::ZERO))
                .or_insert(r);
        }
        by_pow.into_iter().collect()
    }

    /// Substitutes variable `v` with an affine expression.
    fn subst_affine(&self, v: usize, e: &LinExpr, work: &mut Work) -> Option<Poly> {
        let repl = Poly::from_affine(e);
        let mut out = Poly::default();
        for (k, q) in self.split_var(v) {
            let p = repl.pow(k, work)?;
            out = out.add(&q.mul(&p, work)?)?;
        }
        Some(out)
    }

    fn pow(&self, k: u32, work: &mut Work) -> Option<Poly> {
        let mut out = Poly::one();
        for _ in 0..k {
            out = out.mul(self, work)?;
        }
        Some(out)
    }

    /// The value of a constant polynomial (fails on any remaining
    /// variable or a non-integer constant).
    fn as_const_int(&self) -> Option<i128> {
        match self.terms.len() {
            0 => Some(0),
            1 => {
                let (m, r) = self.terms.iter().next()?;
                m.is_empty().then_some(())?;
                r.as_int()
            }
            _ => None,
        }
    }
}

fn mul_monomials(a: &Monomial, b: &Monomial) -> Option<Monomial> {
    let mut out: Monomial = a.clone();
    for &(v, e) in b {
        match out.iter_mut().find(|(var, _)| *var == v) {
            Some((_, oe)) => *oe = oe.checked_add(e)?,
            None => out.push((v, e)),
        }
    }
    out.sort_unstable_by_key(|&(v, _)| v);
    (out.iter().map(|&(_, e)| e).sum::<u32>() <= MAX_DEGREE + 1).then_some(out)
}

// ---------------------------------------------------------------------------
// Faulhaber power sums
// ---------------------------------------------------------------------------

/// Bernoulli numbers `B⁺_0..=B⁺_m` (the `B_1 = +1/2` convention used by the
/// Faulhaber formula), by the standard recurrence.
fn bernoulli_plus(m: usize) -> Option<Vec<Rat>> {
    let mut b: Vec<Rat> = Vec::with_capacity(m + 1);
    b.push(Rat::int(1));
    for n in 1..=m {
        // B_n = -1/(n+1) · Σ_{j<n} C(n+1, j) B_j  (B⁻ convention)
        let mut acc = Rat::ZERO;
        for (j, bj) in b.iter().enumerate() {
            acc = acc.add(Rat::int(binom(n as u32 + 1, j as u32)?).mul(*bj)?)?;
        }
        b.push(acc.mul(Rat::new(-1, n as i128 + 1)?)?);
    }
    if m >= 1 {
        b[1] = Rat::new(1, 2)?; // flip to B⁺
    }
    Some(b)
}

fn binom(n: u32, k: u32) -> Option<i128> {
    let mut out: i128 = 1;
    for i in 0..k.min(n - k) {
        out = out.checked_mul((n - i) as i128)? / (i as i128 + 1);
    }
    Some(out)
}

/// The Faulhaber polynomial `S_k(x) = Σ_{t=1}^{x} t^k`, composed with the
/// polynomial `x`. Valid as a polynomial identity for every integer
/// argument (also negative), so `Σ_{t=L}^{U} t^k = S_k(U) - S_k(L-1)`
/// whenever `L <= U`.
fn power_sum(k: u32, x: &Poly, work: &mut Work) -> Option<Poly> {
    if k > MAX_DEGREE {
        return None;
    }
    let bern = bernoulli_plus(k as usize)?;
    // Powers x^1 ..= x^(k+1).
    let mut pows: Vec<Poly> = Vec::with_capacity(k as usize + 2);
    pows.push(Poly::one());
    for i in 1..=(k + 1) {
        let prev = pows[i as usize - 1].clone();
        pows.push(prev.mul(x, work)?);
    }
    // S_k(x) = 1/(k+1) · Σ_{j=0}^{k} C(k+1, j) B⁺_j x^{k+1-j}
    let mut acc = Poly::default();
    for (j, bj) in bern.iter().enumerate() {
        let coef = Rat::int(binom(k + 1, j as u32)?).mul(*bj)?;
        acc = acc.add(&pows[(k + 1) as usize - j].mul_rat(coef)?)?;
    }
    acc.mul_rat(Rat::new(1, k as i128 + 1)?)
}

// ---------------------------------------------------------------------------
// The region recursion
// ---------------------------------------------------------------------------

/// Work/region budget of one symbolic attempt.
#[derive(Debug)]
struct Work {
    steps: u64,
    regions: u64,
}

impl Work {
    fn new() -> Work {
        Work {
            steps: 0,
            regions: 0,
        }
    }

    fn tick(&mut self, n: u64) -> Option<()> {
        self.steps += n;
        (self.steps <= MAX_WORK).then_some(())
    }

    fn region(&mut self) -> Option<()> {
        self.regions += 1;
        (self.regions <= MAX_REGIONS).then_some(())
    }
}

/// Attempts a closed-form count of the solutions of `sys` over `vars`
/// (every constraint must only mention variables in `vars`), additionally
/// reporting how many regions were fanned out across the worker pool
/// (0 when the shape never split wide enough to parallelize). `None` means
/// the shape is outside the symbolic fragment — fall back to enumeration.
pub(crate) fn try_count_with_stats(sys: &System, vars: &[usize]) -> Option<(i128, u64)> {
    let n_rows = sys.n_rows();
    let in_fragment = (0..n_rows).all(|i| {
        sys.coeffs(i)
            .iter()
            .enumerate()
            .all(|(v, &c)| c == 0 || vars.contains(&v))
    });
    if !in_fragment {
        return None;
    }
    let root = Region {
        cons: sys.to_constraints(),
        vars: vars.to_vec(),
        poly: Poly::one(),
    };
    let (n, splits) = count_regions(root)?;
    (n >= 0).then_some((n, splits))
}

/// [`try_count_with_stats`] without the parallel-split counter.
pub(crate) fn try_count(sys: &System, vars: &[usize]) -> Option<i128> {
    try_count_with_stats(sys, vars).map(|(n, _)| n)
}

/// Strictly sequential variant over a plain constraint list, used by the
/// frozen [`crate::reference`] core (which must not share the parallel
/// driver with the code under test).
pub(crate) fn try_count_sequential(cons: &[Constraint], vars: &[usize]) -> Option<i128> {
    let in_vars = |i: usize| vars.contains(&i);
    if cons
        .iter()
        .any(|c| c.expr.terms().any(|(i, _)| !in_vars(i)))
    {
        return None;
    }
    let root = Region {
        cons: cons.to_vec(),
        vars: vars.to_vec(),
        poly: Poly::one(),
    };
    let n = drain_one(root, &mut Work::new())?;
    (n >= 0).then_some(n)
}

/// Symbolic count of a basic set with determined divs, when the shape is
/// inside the closed-form fragment. This is the public entry used by the
/// differential test suite and diagnostics; the counting pipeline invokes
/// the same machinery per connected component via [`crate::Set::count`].
pub fn symbolic_count(set: &BasicSet) -> Option<i128> {
    if !set.all_divs_determined() {
        return None;
    }
    let sys = set.system();
    let vars: Vec<usize> = (0..sys.n).collect();
    try_count(&sys, &vars)
}

/// Normalizes a constraint by the gcd of its coefficients (exact for
/// integer points: equalities must divide evenly, inequalities floor).
/// Returns `None` for a proven-empty region.
fn normalize(c: &Constraint) -> Option<Constraint> {
    let g = c.expr.coeff_gcd();
    if g <= 1 {
        return Some(c.clone());
    }
    let k = c.expr.constant_term();
    let mut expr = LinExpr::zero();
    for (v, coef) in c.expr.terms() {
        expr.set_coeff(v, coef / g);
    }
    match c.kind {
        ConstraintKind::Eq => {
            if k % g != 0 {
                return None;
            }
            expr.set_constant(k / g);
        }
        ConstraintKind::GeZero => expr.set_constant(floor_div(k, g)),
    }
    Some(Constraint { expr, kind: c.kind })
}

/// How a variable can be eliminated from the current region.
enum Elimination {
    /// `v = expr` via a unit-coefficient (or constant-rest) equality.
    Substitute(LinExpr),
    /// Inequality bounds `max(lowers) <= v <= min(uppers)`.
    Bounds {
        lowers: Vec<LinExpr>,
        uppers: Vec<LinExpr>,
    },
    /// The region is empty (an indivisible constant-rest equality).
    Empty,
}

/// Classifies how `v` can be eliminated, or `None` if some constraint
/// containing `v` is outside the fragment.
fn classify(cons: &[Constraint], v: usize) -> Option<Elimination> {
    let mut lowers: Vec<LinExpr> = Vec::new();
    let mut uppers: Vec<LinExpr> = Vec::new();
    let mut subst: Option<LinExpr> = None;
    for c in cons {
        let a = c.expr.coeff(v);
        if a == 0 {
            continue;
        }
        let mut rest = c.expr.clone();
        rest.set_coeff(v, 0);
        let rest_const = rest.is_constant();
        match c.kind {
            ConstraintKind::Eq => {
                if a == 1 {
                    subst.get_or_insert(-rest);
                } else if a == -1 {
                    subst.get_or_insert(rest);
                } else if rest_const {
                    let k = rest.constant_term();
                    if k % a != 0 {
                        return Some(Elimination::Empty);
                    }
                    subst.get_or_insert(LinExpr::constant(-k / a));
                } else {
                    return None;
                }
            }
            ConstraintKind::GeZero => {
                if a == 1 {
                    lowers.push(-rest); // v >= -rest
                } else if a == -1 {
                    uppers.push(rest); // v <= rest
                } else if rest_const {
                    let k = rest.constant_term();
                    if a > 1 {
                        lowers.push(LinExpr::constant(ceil_div(-k, a)));
                    } else {
                        uppers.push(LinExpr::constant(floor_div(k, -a)));
                    }
                } else {
                    return None;
                }
            }
        }
    }
    if let Some(e) = subst {
        return Some(Elimination::Substitute(e));
    }
    lowers.sort_unstable_by(cmp_expr);
    lowers.dedup();
    uppers.sort_unstable_by(cmp_expr);
    uppers.dedup();
    if lowers.is_empty() || uppers.is_empty() {
        return None; // unbounded
    }
    Some(Elimination::Bounds { lowers, uppers })
}

/// Deterministic expression order for bound dedup (coefficients, then
/// constant).
fn cmp_expr(a: &LinExpr, b: &LinExpr) -> std::cmp::Ordering {
    let ta: Vec<(usize, i64)> = a.terms().collect();
    let tb: Vec<(usize, i64)> = b.terms().collect();
    ta.cmp(&tb)
        .then_with(|| a.constant_term().cmp(&b.constant_term()))
}

/// One independent piece of the piecewise count: a constraint region, the
/// variables still to eliminate, and the running count polynomial. Regions
/// are self-contained, which is what lets split branches be evaluated on
/// different worker threads.
#[derive(Debug, Clone)]
struct Region {
    cons: Vec<Constraint>,
    vars: Vec<usize>,
    poly: Poly,
}

/// Result of advancing one region until it finishes or splits.
enum StepOutcome {
    /// The region's exact contribution to the total.
    Done(i128),
    /// The region split on a dominating-bound case distinction; both
    /// branches must be evaluated and summed.
    Split(Region, Region),
}

/// Advances a region until it resolves to a count or splits in two.
/// Substitutions and single-bound-pair summations loop in place (the
/// tail-recursive cases of the old recursion); each loop iteration pays
/// the same tick/region budget a recursive call used to.
fn region_step(mut r: Region, work: &mut Work) -> Option<StepOutcome> {
    loop {
        work.tick(1 + r.cons.len() as u64)?;
        work.region()?;

        // Constant constraints decide emptiness; the rest is gcd-normalized.
        let mut live: Vec<Constraint> = Vec::with_capacity(r.cons.len());
        for c in &r.cons {
            if c.expr.is_constant() {
                let k = c.expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if !ok {
                    return Some(StepOutcome::Done(0));
                }
                continue;
            }
            match normalize(c) {
                Some(n) => live.push(n),
                None => return Some(StepOutcome::Done(0)),
            }
        }

        if r.vars.is_empty() {
            // All constraints were constant and satisfied.
            return r.poly.as_const_int().map(StepOutcome::Done);
        }

        // Pick the eliminable variable needing the fewest region splits;
        // prefer higher indices (innermost dims / divs) on ties so the
        // traversal mirrors loop order deterministically.
        let mut best: Option<(u64, usize, Elimination)> = None;
        for &v in r.vars.iter().rev() {
            let Some(e) = classify(&live, v) else {
                continue;
            };
            let cost = match &e {
                Elimination::Substitute(_) | Elimination::Empty => 0,
                Elimination::Bounds { lowers, uppers } => (lowers.len() + uppers.len() - 2) as u64,
            };
            if best.as_ref().is_none_or(|b| cost < b.0) {
                let done = cost == 0;
                best = Some((cost, v, e));
                if done {
                    break;
                }
            }
        }
        let (_, v, elim) = best?;
        let rest_vars: Vec<usize> = r.vars.iter().copied().filter(|&x| x != v).collect();

        match elim {
            Elimination::Empty => return Some(StepOutcome::Done(0)),
            Elimination::Substitute(repl) => {
                let next: Vec<Constraint> = live
                    .iter()
                    .map(|c| Constraint {
                        expr: c.expr.substitute(v, &repl),
                        kind: c.kind,
                    })
                    .collect();
                let p = r.poly.subst_affine(v, &repl, work)?;
                r = Region {
                    cons: next,
                    vars: rest_vars,
                    poly: p,
                };
            }
            Elimination::Bounds { lowers, uppers } => {
                let others: Vec<Constraint> = live
                    .iter()
                    .filter(|c| c.expr.coeff(v) == 0)
                    .cloned()
                    .collect();
                if lowers.len() > 1 || uppers.len() > 1 {
                    // Split the outer region on which bound dominates; each
                    // branch drops one competitor.
                    let (a, b, flip) = if lowers.len() > 1 {
                        (&lowers[0], &lowers[1], false)
                    } else {
                        (&uppers[0], &uppers[1], true)
                    };
                    let rebuild = |drop: &LinExpr, extra: LinExpr| -> Vec<Constraint> {
                        let mut out = others.clone();
                        for l in &lowers {
                            if !(std::ptr::eq(l, drop)) {
                                out.push(Constraint::ge0(
                                    LinExpr::var(v) - l.clone(), // v >= l
                                ));
                            }
                        }
                        for u in &uppers {
                            if !(std::ptr::eq(u, drop)) {
                                out.push(Constraint::ge0(u.clone() - LinExpr::var(v)));
                            }
                        }
                        out.push(Constraint::ge0(extra));
                        out
                    };
                    // For lower bounds: branch A keeps `a` (a >= b), branch B
                    // keeps `b` (b >= a+1). For upper bounds the comparison
                    // flips (keep the smaller one).
                    let (cons_a, cons_b) = if !flip {
                        (
                            rebuild(b, a.clone() - b.clone()),
                            rebuild(a, b.clone() - a.clone() - LinExpr::constant(1)),
                        )
                    } else {
                        (
                            rebuild(b, b.clone() - a.clone()),
                            rebuild(a, a.clone() - b.clone() - LinExpr::constant(1)),
                        )
                    };
                    let mut vars_with_v = rest_vars.clone();
                    vars_with_v.push(v);
                    vars_with_v.sort_unstable();
                    return Some(StepOutcome::Split(
                        Region {
                            cons: cons_a,
                            vars: vars_with_v.clone(),
                            poly: r.poly.clone(),
                        },
                        Region {
                            cons: cons_b,
                            vars: vars_with_v,
                            poly: r.poly,
                        },
                    ));
                }
                // Single bound pair: sum `poly` over `v` in `[L, U]` and keep
                // the nonemptiness constraint on the outer region.
                let (lo, up) = (&lowers[0], &uppers[0]);
                let mut next = others;
                next.push(Constraint::ge0(up.clone() - lo.clone()));
                let summed = sum_over(&r.poly, v, lo, up, work)?;
                r = Region {
                    cons: next,
                    vars: rest_vars,
                    poly: summed,
                };
            }
        }
    }
}

/// Fully evaluates one region (and every region it splits into) with an
/// explicit stack, depth-first in the same branch order as the old
/// recursion (branch A before branch B).
fn drain_one(root: Region, work: &mut Work) -> Option<i128> {
    let mut total: i128 = 0;
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        match region_step(r, work)? {
            StepOutcome::Done(n) => total = total.checked_add(n)?,
            StepOutcome::Split(a, b) => {
                stack.push(b);
                stack.push(a);
            }
        }
    }
    Some(total)
}

/// Minimum pending-region count before the stack fans out across the
/// worker pool. Below this, splits are drained sequentially — most shapes
/// split once or not at all, and threads cost more than they save.
const PAR_MIN_REGIONS: usize = 4;

/// Minimum sequential work (in [`Work`] ticks) before fan-out is allowed.
/// Scoped-thread spawn costs tens of microseconds; a shape that resolves
/// in fewer ticks than this finishes sequentially faster than the pool
/// can even start, so only shapes that have already proven heavy ship
/// their pending regions to the workers.
const PAR_MIN_STEPS: u64 = 20_000;

/// Evaluates the root region, fanning pending split branches out over the
/// `polyufc-par` pool once enough independent regions have accumulated
/// and the shape has consumed enough sequential work to amortize thread
/// spawn. Every region's contribution is exact (checked i128 arithmetic)
/// and addition is commutative, so the total is schedule-independent; the
/// returned split count is the number of regions shipped to the pool.
fn count_regions(root: Region) -> Option<(i128, u64)> {
    count_regions_with(root, PAR_MIN_REGIONS, PAR_MIN_STEPS)
}

/// [`count_regions`] with explicit fan-out thresholds, so tests can force
/// the parallel path on small shapes without waiting for a heavy one.
fn count_regions_with(root: Region, min_regions: usize, min_steps: u64) -> Option<(i128, u64)> {
    let mut work = Work::new();
    let mut total: i128 = 0;
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        match region_step(r, &mut work)? {
            StepOutcome::Done(n) => total = total.checked_add(n)?,
            StepOutcome::Split(a, b) => {
                stack.push(b);
                stack.push(a);
                if stack.len() >= min_regions && work.steps >= min_steps {
                    let regions = std::mem::take(&mut stack);
                    let splits = regions.len() as u64;
                    let results = polyufc_par::par_map(&regions, |region| {
                        let mut w = Work::new();
                        drain_one(region.clone(), &mut w)
                    });
                    for res in results {
                        total = total.checked_add(res?)?;
                    }
                    return Some((total, splits));
                }
            }
        }
    }
    Some((total, 0))
}

/// `Σ_{v=L}^{U} poly` in closed form (assumes the region enforces
/// `U >= L`).
fn sum_over(poly: &Poly, v: usize, lo: &LinExpr, up: &LinExpr, work: &mut Work) -> Option<Poly> {
    let up_p = Poly::from_affine(up);
    let lom1 = Poly::from_affine(&(lo.clone() - LinExpr::constant(1)));
    let mut acc = Poly::default();
    for (k, q) in poly.split_var(v) {
        let hi = power_sum(k, &up_p, work)?;
        let lo = power_sum(k, &lom1, work)?;
        let diff = hi.add(&lo.mul_rat(Rat::int(-1))?)?;
        acc = acc.add(&q.mul(&diff, work)?)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Space;

    fn sym(b: &BasicSet) -> Option<i128> {
        symbolic_count(b)
    }

    #[test]
    fn rationals_reduce() {
        let r = Rat::new(6, -4).unwrap();
        assert_eq!(r, Rat { num: -3, den: 2 });
        assert_eq!(Rat::new(4, 2).unwrap().as_int(), Some(2));
        assert_eq!(r.as_int(), None);
    }

    #[test]
    fn faulhaber_matches_brute_force() {
        // Σ t^k over [L, U] via S_k(U) - S_k(L-1), checked against a loop —
        // including negative ranges.
        let mut work = Work::new();
        for k in 0..=6u32 {
            for (l, u) in [(0i128, 10i128), (-7, 5), (3, 3), (-4, -2), (1, 20)] {
                let x = Poly::from_affine(&LinExpr::var(0));
                let s = power_sum(k, &x, &mut work).unwrap();
                let at = |n: i128| {
                    s.terms
                        .iter()
                        .map(|(m, r)| {
                            let pow = m.first().map(|&(_, e)| e).unwrap_or(0);
                            r.mul(Rat::int(n.pow(pow))).unwrap()
                        })
                        .fold(Rat::ZERO, |a, b| a.add(b).unwrap())
                };
                let closed = at(u).add(at(l - 1).mul(Rat::int(-1)).unwrap()).unwrap();
                let brute: i128 = (l..=u).map(|t| t.pow(k)).sum();
                assert_eq!(closed.as_int(), Some(brute), "k={k} [{l},{u}]");
            }
        }
    }

    #[test]
    fn counts_box() {
        let mut b = BasicSet::universe(Space::set(0, 3));
        b.add_range(0, 0, 9);
        b.add_range(1, -3, 4);
        b.add_range(2, 5, 5);
        assert_eq!(sym(&b), Some(10 * 8));
    }

    #[test]
    fn counts_triangle_size_independent() {
        for n in [8i64, 512, 4000, 1_000_000] {
            let mut b = BasicSet::universe(Space::set(0, 2));
            b.add_range(0, 0, n - 1);
            b.add_ge0(LinExpr::var(1));
            b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
            let expect = (n as i128) * (n as i128 + 1) / 2;
            assert_eq!(sym(&b), Some(expect), "n={n}");
        }
    }

    #[test]
    fn counts_3d_simplex() {
        // { [i,j,k] : 0 <= k <= j <= i < n } = C(n+2, 3)
        let n = 100i64;
        let mut b = BasicSet::universe(Space::set(0, 3));
        b.add_range(0, 0, n - 1);
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        b.add_ge0(LinExpr::var(1) - LinExpr::var(2));
        b.add_ge0(LinExpr::var(2));
        let n = n as i128;
        assert_eq!(sym(&b), Some(n * (n + 1) * (n + 2) / 6));
    }

    #[test]
    fn counts_band() {
        // { [i,j] : 0 <= i < 100, i-2 <= j <= i+2, 0 <= j < 100 }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 99);
        b.add_range(1, 0, 99);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(2));
        b.add_ge0(LinExpr::var(0) + LinExpr::constant(2) - LinExpr::var(1));
        let brute: i128 = (0..100i64)
            .map(|i| {
                (0..100i64)
                    .filter(|&j| (i - 2..=i + 2).contains(&j))
                    .count() as i128
            })
            .sum();
        assert_eq!(sym(&b), Some(brute));
    }

    #[test]
    fn counts_tiled_domain_with_tail() {
        // { [t,i] : 0 <= i < 100, 32t <= i < 32t+32, 0 <= t <= 3 }
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(1, 0, 99);
        b.add_range(0, 0, 3);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) * 32);
        b.add_ge0(LinExpr::var(0) * 32 + LinExpr::constant(31) - LinExpr::var(1));
        assert_eq!(sym(&b), Some(100));
    }

    #[test]
    fn counts_strided_set() {
        // { [i] : 0 <= i < 100, i mod 4 == 0 } via a determined div.
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 99);
        let q = b.add_div(LinExpr::var(0), 4);
        b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
        assert_eq!(sym(&b), Some(25));
    }

    #[test]
    fn empty_region_is_zero() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 5);
        b.add_ge0(LinExpr::var(0) - LinExpr::constant(10));
        assert_eq!(sym(&b), Some(0));
    }

    #[test]
    fn unbounded_is_out_of_fragment() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_ge0(LinExpr::var(0));
        assert_eq!(sym(&b), None);
    }

    #[test]
    fn non_unit_coupling_is_out_of_fragment() {
        // 3i - 2j == 0 over a box couples with non-unit coefficients both
        // ways; the fragment refuses rather than guessing.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 99);
        b.add_range(1, 0, 99);
        b.add_ge0(LinExpr::var(0) * 3 - LinExpr::var(1) * 2);
        assert_eq!(sym(&b), None);
    }

    #[test]
    fn sequential_and_parallel_drivers_agree() {
        // Trapezoid with competing bounds splits regions; the stack driver
        // (with parallel fan-out) and the strictly sequential reference
        // driver must agree exactly.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 49);
        b.add_range(1, 0, 99);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0));
        b.add_ge0(LinExpr::constant(99) - LinExpr::var(0) - LinExpr::var(1));
        let sys = b.system();
        let vars: Vec<usize> = (0..sys.n).collect();
        let (n, _) = try_count_with_stats(&sys, &vars).unwrap();
        let seq = try_count_sequential(&sys.to_constraints(), &vars).unwrap();
        assert_eq!(n, seq);
    }

    #[test]
    fn forced_fanout_agrees_with_sequential() {
        // Force the pool fan-out on a small trapezoid by zeroing both
        // thresholds: the parallel drain and the sequential drain must
        // produce the identical count, and splits must be reported.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 49);
        b.add_range(1, 0, 99);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0));
        b.add_ge0(LinExpr::constant(99) - LinExpr::var(0) - LinExpr::var(1));
        let sys = b.system();
        let vars: Vec<usize> = (0..sys.n).collect();
        let root = Region {
            cons: sys.to_constraints(),
            vars: vars.clone(),
            poly: Poly::one(),
        };
        let (n, splits) = count_regions_with(root, 2, 0).unwrap();
        assert!(splits >= 2, "fan-out must trigger with zeroed thresholds");
        let seq = try_count_sequential(&sys.to_constraints(), &vars).unwrap();
        assert_eq!(n, seq);
    }

    #[test]
    fn multi_split_shape_counts_exactly() {
        // Several competing bounds on both dims force repeated splits, deep
        // enough to exercise the fan-out path.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 29);
        b.add_range(1, 0, 29);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) + LinExpr::constant(10)); // j >= i-10
        b.add_ge0(LinExpr::var(1) + LinExpr::var(0) - LinExpr::constant(8)); // i+j >= 8
        b.add_ge0(LinExpr::constant(50) - LinExpr::var(0) - LinExpr::var(1)); // i+j <= 50
        let brute: i128 = (0..30i64)
            .flat_map(|i| (0..30i64).map(move |j| (i, j)))
            .filter(|&(i, j)| j >= i - 10 && i + j >= 8 && i + j <= 50)
            .count() as i128;
        assert_eq!(sym(&b), Some(brute));
        let sys = b.system();
        let vars: Vec<usize> = (0..sys.n).collect();
        assert_eq!(
            try_count_sequential(&sys.to_constraints(), &vars),
            Some(brute)
        );
    }

    #[test]
    fn trapezoid_matches_enumeration() {
        // { [i,j] : 0 <= i < 50, i <= j < 100 - i } — a trapezoid whose
        // upper/lower bounds compete with the box bounds.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 49);
        b.add_range(1, 0, 99);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0));
        b.add_ge0(LinExpr::constant(99) - LinExpr::var(0) - LinExpr::var(1));
        let brute: i128 = (0..50i64)
            .map(|i| (0..100i64).filter(|&j| j >= i && i + j <= 99).count() as i128)
            .sum();
        assert_eq!(sym(&b), Some(brute));
    }
}
