//! Frozen reference implementation of the Presburger solver core.
//!
//! This module is a verbatim copy of the per-constraint `Vec<i64>` solver
//! and counting path as they existed before the flat arena-row rewrite of
//! [`crate::basic`]. It exists for two reasons:
//!
//! * **Differential testing** — the proptest suite pins the rewritten flat
//!   core against this module for `is_empty`, `sample`, `contains`, and
//!   counting on random shapes, so any behavioural drift in the rewrite is
//!   caught immediately.
//! * **A/B benchmarking** — setting `POLYUFC_PRESBURGER_PATH=legacy` (or
//!   calling [`crate::force_presburger_path`]) routes emptiness, sampling,
//!   and counting through this module, which is how `count_microbench`
//!   measures the rewrite's speedup against an in-tree frozen baseline.
//!
//! Do not "improve" this code: its value is that it does not change.

use std::collections::HashMap;

use crate::basic::{Budget, Interval};
use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::{polysum, BasicSet, Constraint, ConstraintKind, CountLimit};

/// Integer division rounding toward negative infinity.
fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    a.div_euclid(b)
}

/// Integer division rounding toward positive infinity.
fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b != 0);
    -(-a).div_euclid(b)
}

/// The pre-rewrite constraint system: one heap-allocated [`Constraint`]
/// (and its `Vec<i64>` of coefficients) per row.
#[derive(Debug, Clone)]
pub(crate) struct RefSystem {
    pub n: usize,
    pub constraints: Vec<Constraint>,
}

impl RefSystem {
    pub fn new(n: usize, constraints: Vec<Constraint>) -> Self {
        RefSystem { n, constraints }
    }

    /// Substitutes away equality-defined variables (Gaussian elimination on
    /// unit-coefficient equalities).
    pub fn gauss_eliminate(&mut self, active: &mut Vec<usize>) {
        loop {
            let mut target: Option<(usize, LinExpr)> = None;
            'scan: for c in &self.constraints {
                if c.kind != ConstraintKind::Eq {
                    continue;
                }
                for (v, coef) in c.expr.terms() {
                    if (coef == 1 || coef == -1) && active.contains(&v) {
                        // v = -(expr - coef*v)/coef
                        let mut rest = c.expr.clone();
                        rest.set_coeff(v, 0);
                        let replacement = if coef == 1 { -rest } else { rest };
                        target = Some((v, replacement));
                        break 'scan;
                    }
                }
            }
            let Some((v, replacement)) = target else {
                break;
            };
            for c in &mut self.constraints {
                c.expr = c.expr.substitute(v, &replacement);
            }
            self.constraints.retain(|c| {
                !(c.expr.is_constant()
                    && match c.kind {
                        ConstraintKind::Eq => c.expr.constant_term() == 0,
                        ConstraintKind::GeZero => c.expr.constant_term() >= 0,
                    })
            });
            active.retain(|&x| x != v);
        }
    }

    /// Detects contradictions between pairs of inequalities with exactly
    /// negated variable parts. Returns `false` on contradiction.
    pub fn negated_pair_consistent(&self) -> bool {
        // Normalized var-part -> max constant seen with that part.
        let mut best: HashMap<Vec<(usize, i64)>, i64> = HashMap::new();
        let mut exprs: Vec<LinExpr> = Vec::new();
        for c in &self.constraints {
            match c.kind {
                ConstraintKind::GeZero => exprs.push(c.expr.clone()),
                ConstraintKind::Eq => {
                    exprs.push(c.expr.clone());
                    exprs.push(c.expr.clone() * -1);
                }
            }
        }
        for e in exprs {
            if e.is_constant() {
                if e.constant_term() < 0 {
                    return false;
                }
                continue;
            }
            let part: Vec<(usize, i64)> = e.terms().collect();
            let neg: Vec<(usize, i64)> = part.iter().map(|&(v, c)| (v, -c)).collect();
            if let Some(&kneg) = best.get(&neg) {
                // part·x + k >= 0 and -part·x + kneg >= 0 => k + kneg >= 0.
                if e.constant_term() + kneg < 0 {
                    return false;
                }
            }
            let entry = best.entry(part).or_insert(i64::MIN);
            *entry = (*entry).max(e.constant_term());
        }
        true
    }

    /// Decides feasibility without producing a sample.
    pub fn is_feasible(&self, budget: &mut Budget) -> Result<bool> {
        let mut sys = self.clone();
        let mut active: Vec<usize> = (0..self.n).collect();
        sys.gauss_eliminate(&mut active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        sys.feasible_rec(&active, budget)
    }

    fn feasible_rec(&self, active: &[usize], budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        let Some(iv) = self.propagate(budget)? else {
            return Ok(false);
        };
        if !self.negated_pair_consistent() {
            return Ok(false);
        }
        // Residual constraints after fixing singletons.
        let mut sys = self.clone();
        let mut remaining: Vec<usize> = Vec::new();
        for &v in active {
            if let Some(x) = iv[v].singleton() {
                sys.substitute(v, x);
            } else {
                remaining.push(v);
            }
        }
        for c in &sys.constraints {
            if c.expr.is_constant() {
                let k = c.expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if !ok {
                    return Ok(false);
                }
            }
        }
        // Drop variables that no longer appear in any constraint.
        remaining.retain(|&v| sys.constraints.iter().any(|c| c.expr.coeff(v) != 0));
        if remaining.is_empty() {
            return Ok(true);
        }
        let mut sub_active = remaining.clone();
        sys.gauss_eliminate(&mut sub_active);
        if !sys.negated_pair_consistent() {
            return Ok(false);
        }
        sub_active.retain(|&v| sys.constraints.iter().any(|c| c.expr.coeff(v) != 0));
        if sub_active.is_empty() {
            // Only constant constraints can remain; re-check them.
            return Ok(sys.constraints.iter().all(|c| {
                !c.expr.is_constant()
                    || match c.kind {
                        ConstraintKind::Eq => c.expr.constant_term() == 0,
                        ConstraintKind::GeZero => c.expr.constant_term() >= 0,
                    }
            }));
        }
        let Some(iv2) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Branch on the narrowest-interval variable.
        let mut best: Option<(usize, i64)> = None;
        for &v in &sub_active {
            if let Some(w) = iv2[v].width() {
                if best.is_none_or(|(_, bw)| w < bw) {
                    best = Some((v, w));
                }
            }
        }
        let Some((var, _)) = best else {
            return Err(Error::Unbounded { var: sub_active[0] });
        };
        let (lo, hi) = (iv2[var].lo.unwrap(), iv2[var].hi.unwrap());
        let rest: Vec<usize> = sub_active.iter().copied().filter(|&v| v != var).collect();
        for x in lo..=hi {
            budget.tick(1)?;
            let mut s = sys.clone();
            s.substitute(var, x);
            if s.feasible_rec(&rest, budget)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Interval propagation to (bounded) fixpoint. Returns `None` if a
    /// contradiction is detected.
    pub fn propagate(&self, budget: &mut Budget) -> Result<Option<Vec<Interval>>> {
        let mut iv = vec![Interval::full(); self.n];
        // Round-robin until fixpoint or iteration cap.
        let max_rounds = 4 + 2 * self.n.max(4);
        for _ in 0..max_rounds {
            budget.tick(self.constraints.len() as u64)?;
            let mut changed = false;
            for c in &self.constraints {
                match c.kind {
                    ConstraintKind::GeZero => {
                        if !tighten_ge0(&c.expr, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                    }
                    ConstraintKind::Eq => {
                        if !tighten_ge0(&c.expr, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                        let neg = c.expr.clone() * -1;
                        if !tighten_ge0(&neg, &mut iv, &mut changed) {
                            return Ok(None);
                        }
                    }
                }
            }
            if iv.iter().any(Interval::is_empty) {
                return Ok(None);
            }
            if !changed {
                break;
            }
        }
        Ok(Some(iv))
    }

    /// Substitutes variable `idx` with a constant.
    pub fn substitute(&mut self, idx: usize, value: i64) {
        for c in &mut self.constraints {
            c.expr = c.expr.substitute_const(idx, value);
        }
    }

    /// Checks whether a full assignment satisfies all constraints.
    pub fn check(&self, values: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(values))
    }

    /// Finds one integer solution or proves emptiness.
    #[allow(clippy::type_complexity)]
    pub fn sample(&self, budget: &mut Budget) -> Result<Option<Vec<i64>>> {
        let mut values = vec![None; self.n];
        if self.sample_rec(&mut values, budget)? {
            Ok(Some(values.into_iter().map(|v| v.unwrap_or(0)).collect()))
        } else {
            Ok(None)
        }
    }

    fn sample_rec(&self, values: &mut Vec<Option<i64>>, budget: &mut Budget) -> Result<bool> {
        budget.tick(1)?;
        // Build the residual system with known values substituted.
        let mut sys = self.clone();
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = *v {
                sys.substitute(i, v);
            }
        }
        let Some(iv) = sys.propagate(budget)? else {
            return Ok(false);
        };
        // Assign all singletons.
        let mut fixed = Vec::new();
        for i in 0..self.n {
            if values[i].is_none() {
                if let Some(v) = iv[i].singleton() {
                    values[i] = Some(v);
                    fixed.push(i);
                }
            }
        }
        // Find the unassigned variable with the smallest finite range.
        let mut best: Option<(usize, i64)> = None;
        let mut unbounded_free = None;
        for i in 0..self.n {
            if values[i].is_some() {
                continue;
            }
            match iv[i].width() {
                Some(w) => {
                    if best.is_none_or(|(_, bw)| w < bw) {
                        best = Some((i, w));
                    }
                }
                None => unbounded_free = Some(i),
            }
        }
        match best {
            None => {
                let mut trial = values.clone();
                if let Some(u) = unbounded_free {
                    // Try anchoring each half-bounded variable at its finite
                    // endpoint; fully free variables get 0.
                    for (i, v) in trial.iter_mut().enumerate() {
                        if v.is_none() {
                            *v = Some(iv[i].lo.or(iv[i].hi).unwrap_or(0));
                        }
                    }
                    let full: Vec<i64> = trial.iter().map(|v| v.unwrap()).collect();
                    if self.check(&full) {
                        *values = trial;
                        return Ok(true);
                    }
                    // Residual constraints still mention a free variable and
                    // the anchor failed: we cannot decide without an
                    // unbounded search.
                    let mut sys2 = self.clone();
                    for (i, v) in values.iter().enumerate() {
                        if let Some(v) = *v {
                            sys2.substitute(i, v);
                        }
                    }
                    let residual_mentions_free = sys2
                        .constraints
                        .iter()
                        .any(|c| c.expr.terms().any(|(i, _)| values[i].is_none()));
                    if residual_mentions_free {
                        return Err(Error::Unbounded { var: u });
                    }
                }
                let full: Vec<i64> = values.iter().map(|v| v.unwrap_or(0)).collect();
                if self.check(&full) {
                    for (i, v) in values.iter_mut().enumerate() {
                        if v.is_none() {
                            *v = Some(full[i]);
                        }
                    }
                    Ok(true)
                } else {
                    for i in fixed {
                        values[i] = None;
                    }
                    Ok(false)
                }
            }
            Some((var, _)) => {
                let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
                for v in lo..=hi {
                    budget.tick(1)?;
                    values[var] = Some(v);
                    if self.sample_rec(values, budget)? {
                        return Ok(true);
                    }
                }
                values[var] = None;
                for i in fixed {
                    values[i] = None;
                }
                Ok(false)
            }
        }
    }
}

/// Tightens intervals using `expr >= 0`. Returns false on contradiction.
/// This is the original O(t²) saturating-`i64` tightener.
fn tighten_ge0(expr: &LinExpr, iv: &mut [Interval], changed: &mut bool) -> bool {
    // max over box of expr; None = +infinity.
    let mut smax: Option<i64> = Some(expr.constant_term());
    for (i, c) in expr.terms() {
        let contrib = if c > 0 {
            iv[i].hi.map(|h| c.saturating_mul(h))
        } else {
            iv[i].lo.map(|l| c.saturating_mul(l))
        };
        match (smax, contrib) {
            (Some(s), Some(x)) => smax = Some(s.saturating_add(x)),
            _ => smax = None,
        }
    }
    if let Some(s) = smax {
        if s < 0 {
            return false;
        }
    }
    // Tighten each variable: a_j * v_j >= -(expr - a_j v_j) over the box.
    for (j, a) in expr.terms() {
        // rest_max = max over box of (expr - a_j * v_j)
        let mut rest_max: Option<i64> = Some(expr.constant_term());
        for (i, c) in expr.terms() {
            if i == j {
                continue;
            }
            let contrib = if c > 0 {
                iv[i].hi.map(|h| c.saturating_mul(h))
            } else {
                iv[i].lo.map(|l| c.saturating_mul(l))
            };
            match (rest_max, contrib) {
                (Some(s), Some(x)) => rest_max = Some(s.saturating_add(x)),
                _ => rest_max = None,
            }
        }
        let Some(rm) = rest_max else { continue };
        if a > 0 {
            // v_j >= ceil(-rm / a)
            let bound = ceil_div(-rm, a);
            if iv[j].lo.is_none_or(|l| bound > l) {
                iv[j].lo = Some(bound);
                *changed = true;
            }
        } else {
            // v_j <= floor(-rm / a)  (a negative: flips)
            let bound = floor_div(rm, -a);
            if iv[j].hi.is_none_or(|h| bound < h) {
                iv[j].hi = Some(bound);
                *changed = true;
            }
        }
        if iv[j].is_empty() {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Frozen counting path
// ---------------------------------------------------------------------------

struct RefCtx {
    budget: Budget,
    allow_symbolic: bool,
}

/// Counts the integer solutions of a Vec-based system where every variable
/// is free — the frozen pre-rewrite counting recursion.
pub(crate) fn count_constraints(
    n: usize,
    constraints: Vec<Constraint>,
    limit: CountLimit,
    allow_symbolic: bool,
) -> Result<i128> {
    let mut ctx = RefCtx {
        budget: Budget::with_limit(limit.0),
        allow_symbolic,
    };
    let sys = RefSystem::new(n, constraints);
    let active: Vec<usize> = (0..n).collect();
    count_rec(sys, &active, &mut ctx)
}

fn count_rec(mut sys: RefSystem, active: &[usize], ctx: &mut RefCtx) -> Result<i128> {
    ctx.budget.tick(1)?;
    let Some(iv) = sys.propagate(&mut ctx.budget)? else {
        return Ok(0);
    };

    // Fix singleton variables.
    let mut remaining: Vec<usize> = Vec::with_capacity(active.len());
    for &v in active {
        if let Some(x) = iv[v].singleton() {
            sys.substitute(v, x);
        } else {
            remaining.push(v);
        }
    }
    // Constant constraints left after substitution may be contradictions.
    for c in &sys.constraints {
        if c.expr.is_constant() {
            let k = c.expr.constant_term();
            let ok = match c.kind {
                ConstraintKind::Eq => k == 0,
                ConstraintKind::GeZero => k >= 0,
            };
            if !ok {
                return Ok(0);
            }
        }
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    sys.gauss_eliminate(&mut remaining);
    if !sys.negated_pair_consistent() {
        return Ok(0);
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    let Some(iv) = sys.propagate(&mut ctx.budget)? else {
        return Ok(0);
    };

    let components = connected_components(&sys, &remaining);
    let mut total: i128 = 1;
    for comp in components {
        let c = count_component(&sys, &comp, &iv, ctx)?;
        total = total.checked_mul(c).ok_or(Error::Overflow)?;
        if total == 0 {
            return Ok(0);
        }
    }
    Ok(total)
}

fn count_component(
    sys: &RefSystem,
    comp: &[usize],
    iv: &[Interval],
    ctx: &mut RefCtx,
) -> Result<i128> {
    if comp.len() == 1 {
        let v = comp[0];
        let (lo, hi) = match (iv[v].lo, iv[v].hi) {
            (Some(l), Some(h)) => (l, h),
            _ => return Err(Error::Unbounded { var: v }),
        };
        if hi < lo {
            return Ok(0);
        }
        return Ok((hi - lo + 1) as i128);
    }
    let mut in_comp = vec![false; sys.n];
    for &v in comp {
        in_comp[v] = true;
    }
    let constraints: Vec<Constraint> = sys
        .constraints
        .iter()
        .filter(|c| {
            c.expr
                .terms()
                .any(|(i, _)| in_comp.get(i).copied().unwrap_or(false))
        })
        .cloned()
        .collect();
    let sub = RefSystem::new(sys.n, constraints);

    // First choice: the (sequential) closed-form symbolic layer.
    if ctx.allow_symbolic {
        if let Some(c) = polysum::try_count_sequential(&sub.constraints, comp) {
            ctx.budget.tick(comp.len() as u64)?;
            return Ok(c);
        }
    }

    // Branch on the variable with the smallest finite width.
    let mut best: Option<(usize, i64)> = None;
    for &v in comp {
        if let Some(w) = iv[v].width() {
            if best.is_none_or(|(_, bw)| w < bw) {
                best = Some((v, w));
            }
        }
    }
    let Some((var, _)) = best else {
        return Err(Error::Unbounded { var: comp[0] });
    };
    let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
    let rest: Vec<usize> = comp.iter().copied().filter(|&v| v != var).collect();
    let mut total: i128 = 0;
    'branch: for x in lo..=hi {
        ctx.budget.tick(1)?;
        let mut constraints = Vec::with_capacity(sub.constraints.len());
        for c in &sub.constraints {
            let expr = c.expr.substitute_const(var, x);
            if expr.is_constant() {
                let k = expr.constant_term();
                let ok = match c.kind {
                    ConstraintKind::Eq => k == 0,
                    ConstraintKind::GeZero => k >= 0,
                };
                if ok {
                    continue;
                }
                continue 'branch;
            }
            constraints.push(Constraint { expr, kind: c.kind });
        }
        let s = RefSystem::new(sys.n, constraints);
        total = total
            .checked_add(count_rec(s, &rest, ctx)?)
            .ok_or(Error::Overflow)?;
    }
    Ok(total)
}

fn connected_components(sys: &RefSystem, vars: &[usize]) -> Vec<Vec<usize>> {
    let mut parent: HashMap<usize, usize> = vars.iter().map(|&v| (v, v)).collect();

    fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
        let p = parent[&x];
        if p == x {
            x
        } else {
            let r = find(parent, p);
            parent.insert(x, r);
            r
        }
    }

    for c in &sys.constraints {
        let mut prev: Option<usize> = None;
        for (i, _) in c.expr.terms() {
            if !parent.contains_key(&i) {
                continue; // fixed or foreign variable
            }
            if let Some(p) = prev {
                let (ra, rb) = (find(&mut parent, p), find(&mut parent, i));
                if ra != rb {
                    parent.insert(ra, rb);
                }
            }
            prev = Some(i);
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for &v in vars {
        let r = find(&mut parent, v);
        groups.entry(r).or_default().push(v);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

// ---------------------------------------------------------------------------
// Public reference entry points
// ---------------------------------------------------------------------------

/// Reference emptiness: the frozen Vec-based solver's verdict on whether
/// `set` contains no integer points.
///
/// # Errors
///
/// Returns an error if the search budget is exceeded or a variable is
/// unbounded — the same failure modes as [`BasicSet::is_empty`].
pub fn is_empty(set: &BasicSet) -> Result<bool> {
    let sys = RefSystem::new(set.n_total(), set.constraints().to_vec());
    Ok(!sys.is_feasible(&mut Budget::default())?)
}

/// Reference sampling: the frozen Vec-based solver's search for one integer
/// point of `set` (full assignment over `params ++ dims ++ divs`).
///
/// # Errors
///
/// Returns an error if the search budget is exceeded or a variable is
/// unbounded with constraints that prevent a decision.
#[allow(clippy::type_complexity)]
pub fn sample(set: &BasicSet) -> Result<Option<Vec<i64>>> {
    let sys = RefSystem::new(set.n_total(), set.constraints().to_vec());
    sys.sample(&mut Budget::default())
}

/// Reference counting: the frozen pre-rewrite counting recursion (with the
/// sequential symbolic layer) applied to one basic set.
///
/// # Errors
///
/// Returns [`Error::UndeterminedDivs`] if a div lacks a definition, and
/// propagates budget/unboundedness errors.
pub fn count(set: &BasicSet, limit: CountLimit) -> Result<i128> {
    if !set.all_divs_determined() {
        return Err(Error::UndeterminedDivs {
            operation: "reference::count",
        });
    }
    count_constraints(set.n_total(), set.constraints().to_vec(), limit, true)
}
