//! Affine (linear + constant) expressions over the variables of a space.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression `c_0*v_0 + ... + c_{n-1}*v_{n-1} + k` over the flat
/// variable layout of a [`crate::Space`] (params, dims, divs).
///
/// Coefficient vectors may be shorter than the full variable count of the
/// constraint system they appear in; missing trailing coefficients are zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    coeffs: Vec<i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(k: i64) -> Self {
        LinExpr {
            coeffs: Vec::new(),
            constant: k,
        }
    }

    /// The expression consisting of variable `idx` with coefficient 1.
    pub fn var(idx: usize) -> Self {
        let mut coeffs = vec![0; idx + 1];
        coeffs[idx] = 1;
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from explicit coefficients and a constant.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        let mut e = LinExpr { coeffs, constant };
        e.trim();
        e
    }

    fn trim(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// The coefficient of variable `idx` (zero if beyond the stored length).
    pub fn coeff(&self, idx: usize) -> i64 {
        self.coeffs.get(idx).copied().unwrap_or(0)
    }

    /// Sets the coefficient of variable `idx`.
    pub fn set_coeff(&mut self, idx: usize, c: i64) {
        if idx >= self.coeffs.len() {
            if c == 0 {
                return;
            }
            self.coeffs.resize(idx + 1, 0);
        }
        self.coeffs[idx] = c;
        self.trim();
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, k: i64) {
        self.constant = k;
    }

    /// Adds `delta` to the constant term.
    pub fn add_constant(&mut self, delta: i64) {
        self.constant += delta;
    }

    /// Number of stored coefficients (highest referenced variable + 1).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether no variable coefficient is stored (constant expression
    /// storage-wise; prefer [`LinExpr::is_constant`] for semantics).
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Whether the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0 && self.coeffs.iter().all(|&c| c == 0)
    }

    /// Whether the expression is constant (no variable has a nonzero
    /// coefficient).
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Iterator over `(var_index, coefficient)` pairs with nonzero
    /// coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.coeffs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c != 0)
    }

    /// Evaluates the expression on a full variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the highest referenced variable.
    pub fn eval(&self, values: &[i64]) -> i64 {
        let mut acc = self.constant;
        for (i, c) in self.terms() {
            acc += c * values[i];
        }
        acc
    }

    /// Evaluates with partial values: variables at indices `>= values.len()`
    /// or whose entry is `None` stay symbolic; returns `None` if any such
    /// variable has a nonzero coefficient.
    pub fn eval_partial(&self, values: &[Option<i64>]) -> Option<i64> {
        let mut acc = self.constant;
        for (i, c) in self.terms() {
            acc += c * (*values.get(i)?)?;
        }
        Some(acc)
    }

    /// Substitutes variable `idx` with the given expression, returning the
    /// resulting expression.
    pub fn substitute(&self, idx: usize, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(idx);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(idx, 0);
        out = out + replacement.clone() * c;
        out
    }

    /// Substitutes variable `idx` with the constant `value`.
    pub fn substitute_const(&self, idx: usize, value: i64) -> LinExpr {
        let c = self.coeff(idx);
        if c == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.set_coeff(idx, 0);
        out.constant += c * value;
        out
    }

    /// Shifts all variable indices at or above `at` up by `by` (used when
    /// inserting variables into a space).
    pub fn shift_vars(&self, at: usize, by: usize) -> LinExpr {
        if by == 0 || self.coeffs.len() <= at {
            return self.clone();
        }
        let mut coeffs = vec![0; self.coeffs.len() + by];
        for (i, &c) in self.coeffs.iter().enumerate() {
            let j = if i >= at { i + by } else { i };
            coeffs[j] = c;
        }
        LinExpr::new(coeffs, self.constant)
    }

    /// Applies an arbitrary index permutation/relocation: variable `i`
    /// becomes variable `perm[i]`. Variables beyond `perm.len()` must have
    /// zero coefficient.
    ///
    /// # Panics
    ///
    /// Panics if a variable with nonzero coefficient has no mapping.
    pub fn permute_vars(&self, perm: &[usize]) -> LinExpr {
        let mut out = LinExpr::constant(self.constant);
        for (i, c) in self.terms() {
            let j = *perm
                .get(i)
                .unwrap_or_else(|| panic!("permute_vars: variable {i} has no mapping"));
            out.set_coeff(j, out.coeff(j) + c);
        }
        out
    }

    /// The greatest common divisor of all variable coefficients (0 if the
    /// expression is constant).
    pub fn coeff_gcd(&self) -> i64 {
        let mut g: i64 = 0;
        for (_, c) in self.terms() {
            g = gcd(g, c.abs());
        }
        g
    }

    /// Formats with variable names supplied by `name`.
    pub fn display_with<'a>(
        &'a self,
        name: impl Fn(usize) -> String + 'a,
    ) -> impl fmt::Display + 'a {
        DisplayExpr {
            expr: self,
            name: Box::new(name),
        }
    }
}

/// Greatest common divisor of two non-negative integers.
pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

struct DisplayExpr<'a> {
    expr: &'a LinExpr,
    name: Box<dyn Fn(usize) -> String + 'a>,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.expr.terms() {
            let n = (self.name)(i);
            if first {
                match c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    _ => write!(f, "{c}{n}")?,
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + {n}")?;
                } else {
                    write!(f, " + {c}{n}")?;
                }
            } else if c == -1 {
                write!(f, " - {n}")?;
            } else {
                write!(f, " - {}{n}", -c)?;
            }
        }
        let k = self.expr.constant_term();
        if first {
            write!(f, "{k}")?;
        } else if k > 0 {
            write!(f, " + {k}")?;
        } else if k < 0 {
            write!(f, " - {}", -k)?;
        }
        Ok(())
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|i| format!("v{i}")))
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: LinExpr) -> LinExpr {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(i) + rhs.coeff(i);
        }
        LinExpr::new(coeffs, self.constant + rhs.constant)
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr::new(self.coeffs.iter().map(|&c| -c).collect(), -self.constant)
    }
}

impl Mul<i64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: i64) -> LinExpr {
        LinExpr::new(
            self.coeffs.iter().map(|&c| c * k).collect(),
            self.constant * k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_eval() {
        // 2*v0 - v2 + 3
        let e = LinExpr::var(0) * 2 - LinExpr::var(2) + LinExpr::constant(3);
        assert_eq!(e.coeff(0), 2);
        assert_eq!(e.coeff(1), 0);
        assert_eq!(e.coeff(2), -1);
        assert_eq!(e.eval(&[5, 100, 4]), 9);
    }

    #[test]
    fn substitution() {
        // v0 + 2*v1, substitute v1 := v0 - 1  =>  3*v0 - 2
        let e = LinExpr::var(0) + LinExpr::var(1) * 2;
        let r = LinExpr::var(0) - LinExpr::constant(1);
        let s = e.substitute(1, &r);
        assert_eq!(s.coeff(0), 3);
        assert_eq!(s.coeff(1), 0);
        assert_eq!(s.constant_term(), -2);
    }

    #[test]
    fn substitute_const_folds() {
        let e = LinExpr::var(0) * 4 + LinExpr::constant(1);
        let s = e.substitute_const(0, 3);
        assert!(s.is_constant());
        assert_eq!(s.constant_term(), 13);
    }

    #[test]
    fn shift_and_permute() {
        let e = LinExpr::var(0) + LinExpr::var(1) * 5;
        let s = e.shift_vars(1, 2);
        assert_eq!(s.coeff(0), 1);
        assert_eq!(s.coeff(3), 5);
        let p = e.permute_vars(&[1, 0]);
        assert_eq!(p.coeff(0), 5);
        assert_eq!(p.coeff(1), 1);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::var(0) * 2 - LinExpr::var(1) - LinExpr::constant(7);
        assert_eq!(format!("{e}"), "2v0 - v1 - 7");
        assert_eq!(format!("{}", LinExpr::zero()), "0");
    }

    #[test]
    fn gcd_of_coeffs() {
        let e = LinExpr::var(0) * 6 + LinExpr::var(1) * 9;
        assert_eq!(e.coeff_gcd(), 3);
        assert_eq!(LinExpr::constant(5).coeff_gcd(), 0);
    }
}
