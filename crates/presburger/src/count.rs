//! Integer point counting by recursive bound decomposition with
//! connected-component factoring — the barvinok substitute.
//!
//! The counter works on the solver [`System`]: after interval propagation
//! and fixing of singleton variables, the variable-interaction graph is
//! split into connected components whose counts multiply. Single-variable
//! components are counted in closed form from their propagated interval.
//! Multi-variable components are handed to the closed-form symbolic layer
//! first ([`crate::polysum`]): Fourier–Motzkin bound derivation plus
//! Faulhaber summation collapses triangle, trapezoid, banded, and
//! tile-tail shapes to work independent of the problem size. Components
//! outside the symbolic fragment fall back to enumerating the narrowest
//! variable and recursing, so every query that terminated before still
//! terminates with the identical count.

use std::collections::HashMap;

use crate::basic::{row_is_constant, Budget, System};
use crate::error::{Error, Result};
use crate::{polysum, BasicSet};

/// A work limit for counting, in solver steps.
///
/// The default (50M steps) is sized so that every query issued by the
/// PolyUFC cache model on the evaluation workloads completes; the paper's
/// own flow uses a 30-minute timeout for the same role (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountLimit(pub u64);

impl Default for CountLimit {
    fn default() -> Self {
        CountLimit(50_000_000)
    }
}

/// Per-invocation strategy tallies: how many coupled components were
/// resolved by the closed-form symbolic layer vs the enumerating fallback.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StrategyStats {
    /// Components counted in closed form by [`crate::polysum`].
    pub symbolic: u64,
    /// Components that fell back to branch-and-recurse enumeration.
    pub enumerated: u64,
    /// Regions the symbolic layer fanned out across the worker pool.
    pub parallel_splits: u64,
}

/// Shared state of one counting invocation.
struct Ctx {
    budget: Budget,
    /// When false, the symbolic layer is skipped entirely — the reference
    /// behaviour for differential testing.
    allow_symbolic: bool,
    stats: StrategyStats,
}

/// Counts the integer solutions of a system where every variable is free.
pub(crate) fn count_system(sys: &System, limit: CountLimit) -> Result<i128> {
    count_system_with_stats(sys, limit, true).map(|(c, _)| c)
}

/// Counts with an explicit strategy switch, reporting per-strategy tallies
/// alongside the count.
pub(crate) fn count_system_with_stats(
    sys: &System,
    limit: CountLimit,
    allow_symbolic: bool,
) -> Result<(i128, StrategyStats)> {
    if crate::path::use_legacy() {
        let c = crate::reference::count_constraints(
            sys.n,
            sys.to_constraints(),
            limit,
            allow_symbolic,
        )?;
        return Ok((c, StrategyStats::default()));
    }
    let mut ctx = Ctx {
        budget: Budget::with_limit(limit.0),
        allow_symbolic,
        stats: StrategyStats::default(),
    };
    let active: Vec<usize> = (0..sys.n).collect();
    let c = count_rec(sys.clone(), &active, &mut ctx)?;
    Ok((c, ctx.stats))
}

/// Counts a basic set with the symbolic closed-form layer disabled: every
/// coupled component is resolved by the recursive enumerator. This is the
/// reference oracle of the differential test suite — production counting
/// ([`crate::Set::count`]) tries [`crate::symbolic_count`]'s machinery
/// first and falls back to exactly this path.
///
/// # Errors
///
/// Returns [`Error::UndeterminedDivs`] if a div lacks a definition, and
/// propagates budget/unboundedness errors.
pub fn count_basic_enumerative(set: &BasicSet, limit: CountLimit) -> Result<i128> {
    if !set.all_divs_determined() {
        return Err(Error::UndeterminedDivs {
            operation: "count_basic_enumerative",
        });
    }
    count_system_with_stats(&set.system(), limit, false).map(|(c, _)| c)
}

/// Canonical form of one constraint: `(kind, constant, sorted terms)` with
/// an equality's sign normalized so the first nonzero coefficient is
/// positive (both signs describe the same hyperplane).
type CanonConstraint = (u8, i64, Vec<(usize, i64)>);

/// Canonical hash key of a [`System`]: variable count, the count limit, and
/// the sorted canonical constraints. Two systems with the same key describe
/// the same solution set, so their point counts can be shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CountKey {
    n: usize,
    limit: u64,
    constraints: Vec<CanonConstraint>,
}

fn canonicalize_row(coeffs: &[i64], constant: i64, is_eq: bool) -> CanonConstraint {
    // Dense rows store coefficients by ascending variable index, so the
    // terms come out sorted with no extra pass.
    let mut terms: Vec<(usize, i64)> = coeffs
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c != 0)
        .map(|(v, &c)| (v, c))
        .collect();
    let mut k = constant;
    let tag = if is_eq {
        // i - j = 0 and j - i = 0 are the same hyperplane.
        if terms.first().is_some_and(|&(_, c)| c < 0) {
            for t in &mut terms {
                t.1 = -t.1;
            }
            k = -k;
        }
        0u8
    } else {
        1u8
    };
    (tag, k, terms)
}

pub(crate) fn count_key(sys: &System, limit: CountLimit) -> CountKey {
    let mut constraints: Vec<CanonConstraint> = (0..sys.n_rows())
        .map(|i| canonicalize_row(sys.coeffs(i), sys.constant(i), sys.is_eq(i)))
        .collect();
    constraints.sort_unstable();
    constraints.dedup();
    CountKey {
        n: sys.n,
        limit: limit.0,
        constraints,
    }
}

/// Memoization cache for [`crate::Set::count_cached`].
///
/// The PolyUFC cache model issues the *same* Presburger counting query many
/// times while analyzing one kernel — once per reference per cache level
/// for the dominating-prefix and outer-trip counts. Keys are the canonical
/// form of the solver system (sorted, sign-normalized constraints), so hits
/// are exact: a cached count is returned only for a query whose solution
/// set provably equals a previously answered one. Only successful counts
/// are cached; errors (budget, unboundedness) are recomputed so their
/// diagnostics stay accurate.
///
/// The cache is bounded: once [`CountCache::len`] reaches
/// [`CountCache::capacity`], the next insert clears the map (a generational
/// reset — cheaper and less pathological than per-entry LRU for the
/// compile pipeline's bursty, phase-local reuse). Evicted entries are
/// tallied in [`CountCache::evictions`]. The cache also aggregates the
/// per-strategy tallies of every miss it computed, surfaced through
/// [`CountCache::symbolic`] / [`CountCache::enumerated`].
#[derive(Debug, Clone)]
pub struct CountCache {
    map: HashMap<CountKey, i128>,
    hits: u64,
    misses: u64,
    symbolic: u64,
    enumerated: u64,
    parallel_splits: u64,
    evictions: u64,
    capacity: usize,
}

impl Default for CountCache {
    fn default() -> Self {
        CountCache::with_capacity(CountCache::DEFAULT_CAPACITY)
    }
}

impl CountCache {
    /// Default entry bound: far above what one multi-program compile
    /// session produces (the full large suite stays in the low thousands),
    /// yet small enough to keep worst-case memory in the tens of MiB.
    pub const DEFAULT_CAPACITY: usize = 32_768;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        CountCache::default()
    }

    /// An empty cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        CountCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            symbolic: 0,
            enumerated: 0,
            parallel_splits: 0,
            evictions: 0,
            capacity,
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that had to run the counter.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct cached systems.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entry bound above which an insert clears the cache.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries discarded by the capacity guard so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Coupled components resolved by the closed-form symbolic layer
    /// across all misses computed through this cache.
    pub fn symbolic(&self) -> u64 {
        self.symbolic
    }

    /// Coupled components that fell back to the recursive enumerator
    /// across all misses computed through this cache.
    pub fn enumerated(&self) -> u64 {
        self.enumerated
    }

    /// Symbolic regions fanned out across the worker pool across all
    /// misses computed through this cache.
    pub fn parallel_splits(&self) -> u64 {
        self.parallel_splits
    }

    /// Estimated heap footprint of the cached entries, in bytes. An
    /// estimate (hash-map overhead is approximated by the table capacity),
    /// meant for growth monitoring rather than exact accounting.
    pub fn approx_bytes(&self) -> usize {
        let slot = std::mem::size_of::<CountKey>() + std::mem::size_of::<i128>();
        let mut total = self.map.capacity() * slot;
        for key in self.map.keys() {
            total += key.constraints.capacity() * std::mem::size_of::<CanonConstraint>();
            for (_, _, terms) in &key.constraints {
                total += terms.capacity() * std::mem::size_of::<(usize, i64)>();
            }
        }
        total
    }

    /// Folds another cache's counters into this one (used when per-kernel
    /// caches are aggregated into a compile report).
    pub fn absorb_stats(&mut self, other: &CountCache) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.symbolic += other.symbolic;
        self.enumerated += other.enumerated;
        self.parallel_splits += other.parallel_splits;
        self.evictions += other.evictions;
    }
}

/// Counts through the cache: canonical-key lookup first, full counter on a
/// miss, successful results inserted under the capacity guard.
pub(crate) fn count_system_cached(
    sys: &System,
    limit: CountLimit,
    cache: &mut CountCache,
) -> Result<i128> {
    let key = count_key(sys, limit);
    if let Some(&c) = cache.map.get(&key) {
        cache.hits += 1;
        return Ok(c);
    }
    cache.misses += 1;
    let (c, stats) = count_system_with_stats(sys, limit, true)?;
    cache.symbolic += stats.symbolic;
    cache.enumerated += stats.enumerated;
    cache.parallel_splits += stats.parallel_splits;
    if cache.map.len() >= cache.capacity {
        cache.evictions += cache.map.len() as u64;
        cache.map.clear();
    }
    cache.map.insert(key, c);
    Ok(c)
}

fn count_rec(mut sys: System, active: &[usize], ctx: &mut Ctx) -> Result<i128> {
    ctx.budget.tick(1)?;
    let Some(iv) = sys.propagate(&mut ctx.budget)? else {
        return Ok(0);
    };

    // Fix singleton variables.
    let mut remaining: Vec<usize> = Vec::with_capacity(active.len());
    for &v in active {
        if let Some(x) = iv[v].singleton() {
            sys.substitute(v, x);
        } else {
            remaining.push(v);
        }
    }
    // Constant constraints left after substitution may be contradictions.
    if !sys.constant_rows_ok() {
        return Ok(0);
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    // Eliminate equality-defined variables (they are functions of the
    // rest, so the point count over the remaining variables is unchanged)
    // and refute negated-pair contradictions that intervals cannot see.
    sys.gauss_eliminate(&mut remaining);
    if !sys.negated_pair_consistent() {
        return Ok(0);
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    let Some(iv) = sys.propagate(&mut ctx.budget)? else {
        return Ok(0);
    };

    // Partition remaining variables into connected components.
    let components = connected_components(&sys, &remaining);
    let mut total: i128 = 1;
    for comp in components {
        let c = count_component(&sys, &comp, &iv, ctx)?;
        total = total.checked_mul(c).ok_or(Error::Overflow)?;
        if total == 0 {
            return Ok(0);
        }
    }
    Ok(total)
}

fn count_component(
    sys: &System,
    comp: &[usize],
    iv: &[crate::basic::Interval],
    ctx: &mut Ctx,
) -> Result<i128> {
    if comp.len() == 1 {
        let v = comp[0];
        let (lo, hi) = match (iv[v].lo, iv[v].hi) {
            (Some(l), Some(h)) => (l, h),
            _ => return Err(Error::Unbounded { var: v }),
        };
        if hi < lo {
            return Ok(0);
        }
        return Ok((hi - lo + 1) as i128);
    }
    // Restrict to the component's constraints (constraints touching only
    // fixed or other-component variables are irrelevant here), filtered
    // once per recursion through a bitmap.
    let mut in_comp = vec![false; sys.n];
    for &v in comp {
        in_comp[v] = true;
    }
    let sub = sys.filtered(|row| {
        row[..sys.n]
            .iter()
            .enumerate()
            .any(|(i, &c)| c != 0 && in_comp[i])
    });

    // First choice: the closed-form symbolic layer. It either answers
    // exactly (size-independent work) or declines, in which case the
    // verified enumerating fallback below takes over.
    if ctx.allow_symbolic {
        if let Some((c, splits)) = polysum::try_count_with_stats(&sub, comp) {
            ctx.stats.symbolic += 1;
            ctx.stats.parallel_splits += splits;
            ctx.budget.tick(comp.len() as u64)?;
            return Ok(c);
        }
    }
    ctx.stats.enumerated += 1;

    // Branch on the variable with the smallest finite width.
    let mut best: Option<(usize, i64)> = None;
    for &v in comp {
        if let Some(w) = iv[v].width() {
            if best.is_none_or(|(_, bw)| w < bw) {
                best = Some((v, w));
            }
        }
    }
    let Some((var, _)) = best else {
        return Err(Error::Unbounded { var: comp[0] });
    };
    let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
    let rest: Vec<usize> = comp.iter().copied().filter(|&v| v != var).collect();
    let mut total: i128 = 0;
    // Each branch clones the component's flat system (usually an inline
    // memcpy), substitutes the branch value in place, decides constant
    // rows on the spot — contradictory branches cost no recursive call —
    // and compacts satisfied constants away before recursing.
    let n = sys.n;
    'branch: for x in lo..=hi {
        ctx.budget.tick(1)?;
        let mut child = sub.clone();
        child.substitute(var, x);
        if !child.constant_rows_ok() {
            continue 'branch;
        }
        child.retain_rows(|row| !row_is_constant(row, n));
        total = total
            .checked_add(count_rec(child, &rest, ctx)?)
            .ok_or(Error::Overflow)?;
    }
    Ok(total)
}

fn connected_components(sys: &System, vars: &[usize]) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut parent: HashMap<usize, usize> = vars.iter().map(|&v| (v, v)).collect();

    fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
        let p = parent[&x];
        if p == x {
            x
        } else {
            let r = find(parent, p);
            parent.insert(x, r);
            r
        }
    }

    for r in 0..sys.n_rows() {
        let coeffs = sys.coeffs(r);
        let mut prev: Option<usize> = None;
        for (i, &c) in coeffs.iter().enumerate() {
            if c == 0 || !parent.contains_key(&i) {
                continue; // zero, fixed, or foreign variable
            }
            if let Some(p) = prev {
                let (ra, rb) = (find(&mut parent, p), find(&mut parent, i));
                if ra != rb {
                    parent.insert(ra, rb);
                }
            }
            prev = Some(i);
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for &v in vars {
        let r = find(&mut parent, v);
        groups.entry(r).or_default().push(v);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicSet, LinExpr, Space};

    fn count(b: &BasicSet) -> i128 {
        count_system(&b.system(), CountLimit::default()).unwrap()
    }

    #[test]
    fn count_box() {
        let mut b = BasicSet::universe(Space::set(0, 3));
        b.add_range(0, 0, 9);
        b.add_range(1, 0, 4);
        b.add_range(2, 3, 7);
        assert_eq!(count(&b), 10 * 5 * 5);
    }

    #[test]
    fn count_triangle() {
        // { [i,j] : 0 <= i < 10, 0 <= j <= i } => 55
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        assert_eq!(count(&b), 55);
    }

    #[test]
    fn count_empty() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 5);
        b.add_ge0(LinExpr::var(0) - LinExpr::constant(10));
        assert_eq!(count(&b), 0);
    }

    #[test]
    fn count_with_divs() {
        // { [i] : 0 <= i < 100, i mod 4 == 0 } => 25
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 99);
        let q = b.add_div(LinExpr::var(0), 4);
        b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
        assert_eq!(count(&b), 25);
    }

    #[test]
    fn count_tiled_domain() {
        // Tiled 1-D loop: { [t, i] : 0 <= i < 100, 32t <= i < 32t+32, t >= 0, t <= 3 }
        // Every i has exactly one t => 100 points.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(1, 0, 99);
        b.add_range(0, 0, 3);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) * 32);
        b.add_ge0(LinExpr::var(0) * 32 + LinExpr::constant(31) - LinExpr::var(1));
        assert_eq!(count(&b), 100);
    }

    #[test]
    fn components_factor_large_boxes() {
        // A 6-D box with extents 64 each: 64^6 ~ 6.9e10 — must count in
        // closed form via factoring, far under the budget.
        let mut b = BasicSet::universe(Space::set(0, 6));
        for d in 0..6 {
            b.add_range(d, 0, 63);
        }
        let c = count_system(&b.system(), CountLimit(10_000)).unwrap();
        assert_eq!(c, 64i128.pow(6));
    }

    #[test]
    fn budget_exceeded_reported() {
        // A coupled 3-D set counted with the symbolic layer disabled: the
        // enumerator genuinely needs per-point work, so a tiny budget must
        // surface as a reported error.
        let mut b = BasicSet::universe(Space::set(0, 3));
        for d in 0..3 {
            b.add_range(d, 0, 999);
        }
        b.add_ge0(LinExpr::var(0) + LinExpr::var(1) + LinExpr::var(2) - LinExpr::constant(1));
        match count_basic_enumerative(&b, CountLimit(50)) {
            Err(Error::SearchBudgetExceeded { .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_equality() {
        // { [i,j] : 0<=i<10, 0<=j<10, i == j } => 10
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_range(1, 0, 9);
        b.add_eq(LinExpr::var(0) - LinExpr::var(1));
        assert_eq!(count(&b), 10);
    }

    #[test]
    fn symbolic_strategy_resolves_triangle() {
        // The coupled triangle must be answered by the closed-form layer,
        // with no component falling back to enumeration.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        let (c, stats) = count_system_with_stats(&b.system(), CountLimit::default(), true).unwrap();
        assert_eq!(c, 55);
        assert!(stats.symbolic >= 1);
        assert_eq!(stats.enumerated, 0);
    }

    #[test]
    fn symbolic_makes_huge_triangles_cheap() {
        // { [i,j] : 0 <= i < N, 0 <= j <= i } at N = 1e6: enumeration would
        // need ~1e6 steps; the symbolic path answers within a tiny budget.
        let n = 1_000_000i64;
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, n - 1);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        let c = count_system(&b.system(), CountLimit(10_000)).unwrap();
        assert_eq!(c, (n as i128) * (n as i128 + 1) / 2);
    }

    #[test]
    fn out_of_fragment_component_falls_back() {
        // 3i - 2j == 0 couples both variables with non-unit coefficients,
        // which the symbolic fragment refuses; the enumerator must answer
        // with the identical count (multiples of (2,3) in the box: 17).
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 32);
        b.add_range(1, 0, 99);
        b.add_eq(LinExpr::var(0) * 3 - LinExpr::var(1) * 2);
        let (c, stats) = count_system_with_stats(&b.system(), CountLimit::default(), true).unwrap();
        assert_eq!(c, 17);
        assert!(stats.enumerated >= 1);
        let (c_enum, _) =
            count_system_with_stats(&b.system(), CountLimit::default(), false).unwrap();
        assert_eq!(c_enum, c);
    }

    #[test]
    fn enumerative_oracle_matches_default_path() {
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 19);
        b.add_range(1, 0, 19);
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1) + LinExpr::constant(3));
        assert_eq!(
            count_basic_enumerative(&b, CountLimit::default()).unwrap(),
            count(&b)
        );
    }

    #[test]
    fn cache_capacity_guard_evicts() {
        let mut cache = CountCache::with_capacity(2);
        for extent in [3i64, 4, 5] {
            let mut b = BasicSet::universe(Space::set(0, 1));
            b.add_range(0, 0, extent);
            let c = count_system_cached(&b.system(), CountLimit::default(), &mut cache).unwrap();
            assert_eq!(c, (extent + 1) as i128);
        }
        // Third insert hits the bound: the map is cleared (2 evictions)
        // before the new entry lands.
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0);
        // Evicted entries recount as misses, with unchanged values.
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 3);
        let c = count_system_cached(&b.system(), CountLimit::default(), &mut cache).unwrap();
        assert_eq!(c, 4);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn cache_aggregates_strategy_tallies() {
        let mut cache = CountCache::new();
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        let sys = b.system();
        count_system_cached(&sys, CountLimit::default(), &mut cache).unwrap();
        count_system_cached(&sys, CountLimit::default(), &mut cache).unwrap();
        assert_eq!(cache.hits(), 1);
        assert!(cache.symbolic() >= 1);
        assert_eq!(cache.enumerated(), 0);
        // absorb_stats folds every counter.
        let mut agg = CountCache::new();
        agg.absorb_stats(&cache);
        assert_eq!(agg.symbolic(), cache.symbolic());
        assert_eq!(agg.evictions(), cache.evictions());
    }
}
