//! Integer point counting by recursive bound decomposition with
//! connected-component factoring — the barvinok substitute.
//!
//! The counter works on the solver [`System`]: after interval propagation
//! and fixing of singleton variables, the variable-interaction graph is
//! split into connected components whose counts multiply. Single-variable
//! components are counted in closed form from their propagated interval;
//! multi-variable components enumerate the narrowest variable and recurse.
//! For the box-like and tile-shaped sets produced by affine loop nests this
//! collapses to near-closed-form evaluation.

use std::collections::HashMap;

use crate::basic::{Budget, System};
use crate::error::{Error, Result};
use crate::{ConstraintKind, LinExpr};

/// A work limit for counting, in solver steps.
///
/// The default (50M steps) is sized so that every query issued by the
/// PolyUFC cache model on the evaluation workloads completes; the paper's
/// own flow uses a 30-minute timeout for the same role (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountLimit(pub u64);

impl Default for CountLimit {
    fn default() -> Self {
        CountLimit(50_000_000)
    }
}

/// Counts the integer solutions of a system where every variable is free.
pub(crate) fn count_system(sys: &System, limit: CountLimit) -> Result<i128> {
    let mut budget = Budget::with_limit(limit.0);
    let active: Vec<usize> = (0..sys.n).collect();
    count_rec(sys.clone(), &active, &mut budget)
}

/// Canonical form of one constraint: `(kind, constant, sorted terms)` with
/// an equality's sign normalized so the first nonzero coefficient is
/// positive (both signs describe the same hyperplane).
type CanonConstraint = (u8, i64, Vec<(usize, i64)>);

/// Canonical hash key of a [`System`]: variable count, the count limit, and
/// the sorted canonical constraints. Two systems with the same key describe
/// the same solution set, so their point counts can be shared.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CountKey {
    n: usize,
    limit: u64,
    constraints: Vec<CanonConstraint>,
}

fn canonicalize_constraint(expr: &LinExpr, kind: ConstraintKind) -> CanonConstraint {
    let mut terms: Vec<(usize, i64)> = expr.terms().collect();
    terms.sort_unstable_by_key(|&(v, _)| v);
    let mut k = expr.constant_term();
    let tag = match kind {
        ConstraintKind::Eq => {
            // i - j = 0 and j - i = 0 are the same hyperplane.
            if terms.first().is_some_and(|&(_, c)| c < 0) {
                for t in &mut terms {
                    t.1 = -t.1;
                }
                k = -k;
            }
            0u8
        }
        ConstraintKind::GeZero => 1u8,
    };
    (tag, k, terms)
}

pub(crate) fn count_key(sys: &System, limit: CountLimit) -> CountKey {
    let mut constraints: Vec<CanonConstraint> = sys
        .constraints
        .iter()
        .map(|c| canonicalize_constraint(&c.expr, c.kind))
        .collect();
    constraints.sort_unstable();
    constraints.dedup();
    CountKey {
        n: sys.n,
        limit: limit.0,
        constraints,
    }
}

/// Memoization cache for [`crate::Set::count_cached`].
///
/// The PolyUFC cache model issues the *same* Presburger counting query many
/// times while analyzing one kernel — once per reference per cache level
/// for the dominating-prefix and outer-trip counts. Keys are the canonical
/// form of the solver system (sorted, sign-normalized constraints), so hits
/// are exact: a cached count is returned only for a query whose solution
/// set provably equals a previously answered one. Only successful counts
/// are cached; errors (budget, unboundedness) are recomputed so their
/// diagnostics stay accurate.
#[derive(Debug, Clone, Default)]
pub struct CountCache {
    map: HashMap<CountKey, i128>,
    hits: u64,
    misses: u64,
}

impl CountCache {
    /// An empty cache.
    pub fn new() -> Self {
        CountCache::default()
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that had to run the counter.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of distinct cached systems.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds another cache's hit/miss counters into this one (used when
    /// per-kernel caches are aggregated into a compile report).
    pub fn absorb_stats(&mut self, other: &CountCache) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Counts through the cache: canonical-key lookup first, full counter on a
/// miss, successful results inserted.
pub(crate) fn count_system_cached(
    sys: &System,
    limit: CountLimit,
    cache: &mut CountCache,
) -> Result<i128> {
    let key = count_key(sys, limit);
    if let Some(&c) = cache.map.get(&key) {
        cache.hits += 1;
        return Ok(c);
    }
    cache.misses += 1;
    let c = count_system(sys, limit)?;
    cache.map.insert(key, c);
    Ok(c)
}

fn count_rec(mut sys: System, active: &[usize], budget: &mut Budget) -> Result<i128> {
    budget.tick(1)?;
    let Some(iv) = sys.propagate(budget)? else {
        return Ok(0);
    };

    // Fix singleton variables.
    let mut remaining: Vec<usize> = Vec::with_capacity(active.len());
    for &v in active {
        if let Some(x) = iv[v].singleton() {
            sys.substitute(v, x);
        } else {
            remaining.push(v);
        }
    }
    // Constant constraints left after substitution may be contradictions.
    for c in &sys.constraints {
        if c.expr.is_constant() {
            let k = c.expr.constant_term();
            let ok = match c.kind {
                crate::ConstraintKind::Eq => k == 0,
                crate::ConstraintKind::GeZero => k >= 0,
            };
            if !ok {
                return Ok(0);
            }
        }
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    // Eliminate equality-defined variables (they are functions of the
    // rest, so the point count over the remaining variables is unchanged)
    // and refute negated-pair contradictions that intervals cannot see.
    sys.gauss_eliminate(&mut remaining);
    if !sys.negated_pair_consistent() {
        return Ok(0);
    }
    if remaining.is_empty() {
        return Ok(1);
    }
    let Some(iv) = sys.propagate(budget)? else {
        return Ok(0);
    };

    // Partition remaining variables into connected components.
    let components = connected_components(&sys, &remaining);
    let mut total: i128 = 1;
    for comp in components {
        let c = count_component(&sys, &comp, &iv, budget)?;
        total = total.checked_mul(c).ok_or(Error::Overflow)?;
        if total == 0 {
            return Ok(0);
        }
    }
    Ok(total)
}

fn count_component(
    sys: &System,
    comp: &[usize],
    iv: &[crate::basic::Interval],
    budget: &mut Budget,
) -> Result<i128> {
    if comp.len() == 1 {
        let v = comp[0];
        let (lo, hi) = match (iv[v].lo, iv[v].hi) {
            (Some(l), Some(h)) => (l, h),
            _ => return Err(Error::Unbounded { var: v }),
        };
        if hi < lo {
            return Ok(0);
        }
        return Ok((hi - lo + 1) as i128);
    }
    // Restrict to the component's constraints (constraints touching only
    // fixed or other-component variables are irrelevant here).
    let comp_set: std::collections::HashSet<usize> = comp.iter().copied().collect();
    let constraints: Vec<_> = sys
        .constraints
        .iter()
        .filter(|c| c.expr.terms().any(|(i, _)| comp_set.contains(&i)))
        .cloned()
        .collect();
    let sub = System::new(sys.n, constraints);

    // Branch on the variable with the smallest finite width.
    let mut best: Option<(usize, i64)> = None;
    for &v in comp {
        if let Some(w) = iv[v].width() {
            if best.is_none_or(|(_, bw)| w < bw) {
                best = Some((v, w));
            }
        }
    }
    let Some((var, _)) = best else {
        return Err(Error::Unbounded { var: comp[0] });
    };
    let (lo, hi) = (iv[var].lo.unwrap(), iv[var].hi.unwrap());
    let rest: Vec<usize> = comp.iter().copied().filter(|&v| v != var).collect();
    let mut total: i128 = 0;
    for x in lo..=hi {
        budget.tick(1)?;
        let mut s = sub.clone();
        s.substitute(var, x);
        total = total
            .checked_add(count_rec(s, &rest, budget)?)
            .ok_or(Error::Overflow)?;
    }
    Ok(total)
}

fn connected_components(sys: &System, vars: &[usize]) -> Vec<Vec<usize>> {
    use std::collections::HashMap;
    let mut parent: HashMap<usize, usize> = vars.iter().map(|&v| (v, v)).collect();

    fn find(parent: &mut HashMap<usize, usize>, x: usize) -> usize {
        let p = parent[&x];
        if p == x {
            x
        } else {
            let r = find(parent, p);
            parent.insert(x, r);
            r
        }
    }

    for c in &sys.constraints {
        let mut prev: Option<usize> = None;
        for (i, _) in c.expr.terms() {
            if !parent.contains_key(&i) {
                continue; // fixed or foreign variable
            }
            if let Some(p) = prev {
                let (ra, rb) = (find(&mut parent, p), find(&mut parent, i));
                if ra != rb {
                    parent.insert(ra, rb);
                }
            }
            prev = Some(i);
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for &v in vars {
        let r = find(&mut parent, v);
        groups.entry(r).or_default().push(v);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BasicSet, LinExpr, Space};

    fn count(b: &BasicSet) -> i128 {
        count_system(&b.system(), CountLimit::default()).unwrap()
    }

    #[test]
    fn count_box() {
        let mut b = BasicSet::universe(Space::set(0, 3));
        b.add_range(0, 0, 9);
        b.add_range(1, 0, 4);
        b.add_range(2, 3, 7);
        assert_eq!(count(&b), 10 * 5 * 5);
    }

    #[test]
    fn count_triangle() {
        // { [i,j] : 0 <= i < 10, 0 <= j <= i } => 55
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1));
        assert_eq!(count(&b), 55);
    }

    #[test]
    fn count_empty() {
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 5);
        b.add_ge0(LinExpr::var(0) - LinExpr::constant(10));
        assert_eq!(count(&b), 0);
    }

    #[test]
    fn count_with_divs() {
        // { [i] : 0 <= i < 100, i mod 4 == 0 } => 25
        let mut b = BasicSet::universe(Space::set(0, 1));
        b.add_range(0, 0, 99);
        let q = b.add_div(LinExpr::var(0), 4);
        b.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
        assert_eq!(count(&b), 25);
    }

    #[test]
    fn count_tiled_domain() {
        // Tiled 1-D loop: { [t, i] : 0 <= i < 100, 32t <= i < 32t+32, t >= 0, t <= 3 }
        // Every i has exactly one t => 100 points.
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(1, 0, 99);
        b.add_range(0, 0, 3);
        b.add_ge0(LinExpr::var(1) - LinExpr::var(0) * 32);
        b.add_ge0(LinExpr::var(0) * 32 + LinExpr::constant(31) - LinExpr::var(1));
        assert_eq!(count(&b), 100);
    }

    #[test]
    fn components_factor_large_boxes() {
        // A 6-D box with extents 64 each: 64^6 ~ 6.9e10 — must count in
        // closed form via factoring, far under the budget.
        let mut b = BasicSet::universe(Space::set(0, 6));
        for d in 0..6 {
            b.add_range(d, 0, 63);
        }
        let c = count_system(&b.system(), CountLimit(10_000)).unwrap();
        assert_eq!(c, 64i128.pow(6));
    }

    #[test]
    fn budget_exceeded_reported() {
        // A coupled 3-D set that genuinely needs enumeration.
        let mut b = BasicSet::universe(Space::set(0, 3));
        for d in 0..3 {
            b.add_range(d, 0, 999);
        }
        b.add_ge0(LinExpr::var(0) + LinExpr::var(1) + LinExpr::var(2) - LinExpr::constant(1));
        match count_system(&b.system(), CountLimit(50)) {
            Err(Error::SearchBudgetExceeded { .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_equality() {
        // { [i,j] : 0<=i<10, 0<=j<10, i == j } => 10
        let mut b = BasicSet::universe(Space::set(0, 2));
        b.add_range(0, 0, 9);
        b.add_range(1, 0, 9);
        b.add_eq(LinExpr::var(0) - LinExpr::var(1));
        assert_eq!(count(&b), 10);
    }
}
