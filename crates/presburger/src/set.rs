//! Finite unions of basic sets.

use std::fmt;

use crate::basic::{BasicSet, Div};
use crate::count::{count_system, count_system_cached, CountCache, CountLimit};
use crate::enumerate::enumerate_points;
use crate::error::{Error, Result};
use crate::linexpr::LinExpr;
use crate::space::Space;
use crate::{Constraint, ConstraintKind};

/// A finite union of [`BasicSet`] disjuncts over a common space.
///
/// The disjuncts are kept **pairwise disjoint**: [`Set::union`] subtracts
/// the current set from the incoming one, so [`Set::count`] can simply sum
/// per-disjunct counts. Use [`Set::union_disjoint`] when disjointness is
/// known by construction (it is cheaper and does not require determined
/// divs).
#[derive(Debug, Clone)]
pub struct Set {
    space: Space,
    basics: Vec<BasicSet>,
}

impl Set {
    /// The empty set of a space.
    pub fn empty(space: Space) -> Self {
        Set {
            space,
            basics: Vec::new(),
        }
    }

    /// The universe set of a space.
    pub fn universe(space: Space) -> Self {
        Set {
            space: space.clone(),
            basics: vec![BasicSet::universe(space)],
        }
    }

    /// Wraps a single basic set.
    pub fn from_basic(basic: BasicSet) -> Self {
        Set {
            space: basic.space().clone(),
            basics: vec![basic],
        }
    }

    /// Parses a conjunction of textual constraints into a single-disjunct
    /// set. Textual syntax: dims are named `i, j, k, l, m`
    /// (alias `d0..`), params `n, p, q` (alias `p0..`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed input.
    pub fn from_constraint_strs(space: Space, constraints: &[&str]) -> Result<Set> {
        let mut b = BasicSet::universe(space);
        for s in constraints {
            let c = crate::parse::parse_constraint(s, b.space())?;
            b.add_constraint(c);
        }
        Ok(Set::from_basic(b))
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The disjuncts.
    pub fn basics(&self) -> &[BasicSet] {
        &self.basics
    }

    /// Number of disjuncts.
    pub fn n_basic(&self) -> usize {
        self.basics.len()
    }

    /// Whether all disjuncts have determined divs (negation is sound).
    pub fn all_divs_determined(&self) -> bool {
        self.basics.iter().all(BasicSet::all_divs_determined)
    }

    fn check_space(&self, other: &Set) -> Result<()> {
        if self.space != other.space {
            return Err(Error::SpaceMismatch {
                expected: self.space.to_string(),
                found: other.space.to_string(),
            });
        }
        Ok(())
    }

    /// Intersection (pairwise on disjuncts; disjointness is preserved).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SpaceMismatch`] if the spaces differ.
    pub fn intersect(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in &other.basics {
                let mut c = a.intersect(b)?;
                if c.simplify() {
                    basics.push(c);
                }
            }
        }
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Union preserving the disjointness invariant: the incoming disjuncts
    /// are first reduced by subtracting `self`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if `self` contains undetermined
    /// existentials (subtraction would be unsound); use
    /// [`Set::union_disjoint`] if disjointness is known.
    pub fn union(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let fresh = other.subtract(self)?;
        let mut basics = self.basics.clone();
        basics.extend(fresh.basics);
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Union without a disjointness check. Counting will double-count any
    /// overlap; only use when the operands are disjoint by construction.
    pub fn union_disjoint(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let mut basics = self.basics.clone();
        basics.extend(other.basics.iter().cloned());
        Ok(Set {
            space: self.space.clone(),
            basics,
        })
    }

    /// Set difference `self \ other`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if `other` has undetermined divs
    /// (its constraints cannot be negated), or [`Error::SpaceMismatch`].
    pub fn subtract(&self, other: &Set) -> Result<Set> {
        self.check_space(other)?;
        let mut pieces = self.basics.clone();
        for b in &other.basics {
            let mut next = Vec::new();
            for a in &pieces {
                next.extend(subtract_basic(a, b)?);
            }
            pieces = next;
        }
        // Drop trivially/provably empty pieces to keep sizes in check.
        let mut kept = Vec::new();
        for mut p in pieces {
            if !p.simplify() {
                continue;
            }
            match p.is_empty() {
                Ok(true) => {}
                _ => kept.push(p),
            }
        }
        Ok(Set {
            space: self.space.clone(),
            basics: kept,
        })
    }

    /// Whether the set is empty.
    ///
    /// # Errors
    ///
    /// Propagates solver budget/unboundedness errors.
    pub fn is_empty(&self) -> Result<bool> {
        for b in &self.basics {
            if !b.is_empty()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Samples a point (dims only) from the set, if any.
    ///
    /// # Errors
    ///
    /// Propagates solver budget/unboundedness errors.
    pub fn sample_point(&self) -> Result<Option<Vec<i64>>> {
        for b in &self.basics {
            if let Some(full) = b.sample()? {
                let np = self.space.n_param();
                let nd = self.space.n_dim();
                return Ok(Some(full[np..np + nd].to_vec()));
            }
        }
        Ok(None)
    }

    /// Membership test for a point of `n_param + n_dim` coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UndeterminedDivs`] if any disjunct needs a search.
    pub fn contains(&self, point: &[i64]) -> Result<bool> {
        for b in &self.basics {
            if b.contains(point)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Counts the integer points with the default [`CountLimit`].
    ///
    /// # Errors
    ///
    /// Propagates counting errors; falls back to deduplicating enumeration
    /// for disjuncts with undetermined divs.
    pub fn count(&self) -> Result<i128> {
        self.count_with_limit(CountLimit::default())
    }

    /// Counts the integer points with an explicit work limit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SearchBudgetExceeded`] when the limit is hit.
    pub fn count_with_limit(&self, limit: CountLimit) -> Result<i128> {
        let mut total: i128 = 0;
        for b in &self.basics {
            let c = if b.all_divs_determined() {
                count_system(&b.system(), limit)?
            } else {
                enumerate_points(b, limit.0)?.len() as i128
            };
            total = total.checked_add(c).ok_or(Error::Overflow)?;
        }
        Ok(total)
    }

    /// Counts the integer points with the default limit, memoizing
    /// per-disjunct solver queries in `cache`.
    ///
    /// Disjuncts that fall back to enumeration (undetermined divs) are not
    /// cached; everything else is keyed on the canonicalized constraint
    /// system, so repeated queries — e.g. the same iteration-domain prefix
    /// counted for several array references — are answered from the cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`Set::count`].
    pub fn count_cached(&self, cache: &mut CountCache) -> Result<i128> {
        let limit = CountLimit::default();
        let mut total: i128 = 0;
        for b in &self.basics {
            let c = if b.all_divs_determined() {
                count_system_cached(&b.system(), limit, cache)?
            } else {
                enumerate_points(b, limit.0)?.len() as i128
            };
            total = total.checked_add(c).ok_or(Error::Overflow)?;
        }
        Ok(total)
    }

    /// Counts the integer points through a batched [`crate::Context`],
    /// sharing its memoizing count cache across queries.
    ///
    /// # Errors
    ///
    /// Same contract as [`Set::count`].
    pub fn count_in(&self, ctx: &mut crate::Context) -> Result<i128> {
        ctx.count_set(self)
    }

    /// Enumerates up to `max_points` points (dims only), merged and
    /// deduplicated across disjuncts, in lexicographic order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SearchBudgetExceeded`] if the cap is exceeded.
    pub fn enumerate(&self, max_points: u64) -> Result<Vec<Vec<i64>>> {
        let mut all = std::collections::BTreeSet::new();
        for b in &self.basics {
            for p in enumerate_points(b, max_points)? {
                all.insert(p);
            }
            if all.len() as u64 > max_points {
                return Err(Error::SearchBudgetExceeded { budget: max_points });
            }
        }
        Ok(all.into_iter().collect())
    }

    /// Projects out `count` dimensions starting at `first` from every
    /// disjunct (exact; introduces existentials).
    pub fn project_out(&self, first: usize, count: usize) -> Set {
        let basics: Vec<BasicSet> = self
            .basics
            .iter()
            .map(|b| b.project_dims_out(first, count))
            .collect();
        let space = Space::set(self.space.n_param(), self.space.n_dim() - count);
        Set { space, basics }
    }

    /// Fixes parameter `param_idx` to a concrete value in every disjunct.
    pub fn fix_param(&self, param_idx: usize, value: i64) -> Set {
        assert!(
            param_idx < self.space.n_param(),
            "parameter index out of range"
        );
        let mut out = self.clone();
        for b in &mut out.basics {
            b.fix_var(param_idx, value);
        }
        out
    }

    /// Whether `self ⊆ other` (requires `other` to have determined divs).
    ///
    /// # Errors
    ///
    /// See [`Set::subtract`].
    pub fn is_subset(&self, other: &Set) -> Result<bool> {
        self.subtract(other)?.is_empty()
    }

    /// Whether the two sets contain exactly the same points.
    ///
    /// # Errors
    ///
    /// See [`Set::subtract`] (both operands need determined divs).
    pub fn is_equal(&self, other: &Set) -> Result<bool> {
        Ok(self.is_subset(other)? && other.is_subset(self)?)
    }

    /// Removes provably empty disjuncts.
    pub fn coalesce(&self) -> Set {
        let mut out = Set::empty(self.space.clone());
        for b in &self.basics {
            let mut b = b.clone();
            if !b.simplify() {
                continue;
            }
            if let Ok(true) = b.is_empty() {
                continue;
            }
            out.basics.push(b);
        }
        out
    }
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.basics.is_empty() {
            return write!(f, "{{ }}");
        }
        let parts: Vec<String> = self.basics.iter().map(|b| b.display()).collect();
        write!(f, "{}", parts.join(" ∪ "))
    }
}

/// Computes `a \ b` as a list of disjoint pieces.
///
/// Requires `b` to have only determined divs: since each div is a function
/// of the other variables, negating `b`'s non-definition constraints while
/// keeping the definitions pinned is sound.
pub(crate) fn subtract_basic(a: &BasicSet, b: &BasicSet) -> Result<Vec<BasicSet>> {
    if !b.all_divs_determined() {
        return Err(Error::UndeterminedDivs {
            operation: "subtract",
        });
    }
    // Base: `a` extended with b's divs (renumbered) and their definitions.
    let shift_at = a.space().n_var();
    let div_shift = a.divs().len();
    let mut base = a.clone();
    let mut def_exprs: Vec<LinExpr> = Vec::new();
    for d in b.divs() {
        let (num, den) = d.def.as_ref().expect("checked determined");
        let num = num.shift_vars(shift_at, div_shift);
        let q = base.n_total();
        base.push_div_raw(Div {
            def: Some((num.clone(), *den)),
        });
        let rem = num - LinExpr::var(q) * *den;
        base.add_ge0(rem.clone());
        base.add_ge0(LinExpr::constant(*den - 1) - rem.clone());
        def_exprs.push(rem.clone());
        def_exprs.push(LinExpr::constant(*den - 1) - rem);
    }
    // Sequential negation over b's constraints (equalities split in two).
    let mut shifted: Vec<Constraint> = Vec::new();
    for c in b.constraints() {
        let e = c.expr.shift_vars(shift_at, div_shift);
        match c.kind {
            ConstraintKind::GeZero => shifted.push(Constraint::ge0(e)),
            ConstraintKind::Eq => {
                shifted.push(Constraint::ge0(e.clone()));
                shifted.push(Constraint::ge0(-e));
            }
        }
    }
    // Skip constraints that are exactly div definitions (they are pinned in
    // the base; negating them would produce empty pieces anyway, we just
    // save the work).
    let is_def = |e: &LinExpr| def_exprs.iter().any(|d| d == e);

    let mut pieces = Vec::new();
    let mut prefix = base;
    for c in &shifted {
        if is_def(&c.expr) {
            prefix.add_ge0(c.expr.clone());
            continue;
        }
        // Piece: prefix ∧ ¬(e >= 0)  i.e.  -e - 1 >= 0.
        let mut piece = prefix.clone();
        piece.add_ge0(-(c.expr.clone()) - LinExpr::constant(1));
        pieces.push(piece);
        prefix.add_ge0(c.expr.clone());
    }
    Ok(pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(space: Space, var: usize, lo: i64, hi: i64) -> Set {
        let mut b = BasicSet::universe(space);
        b.add_range(var, lo, hi);
        Set::from_basic(b)
    }

    #[test]
    fn union_is_disjoint() {
        let sp = Space::set(0, 1);
        let a = interval(sp.clone(), 0, 0, 9);
        let b = interval(sp.clone(), 0, 5, 14);
        let u = a.union(&b).unwrap();
        assert_eq!(u.count().unwrap(), 15);
    }

    #[test]
    fn subtract_interval() {
        let sp = Space::set(0, 1);
        let a = interval(sp.clone(), 0, 0, 9);
        let b = interval(sp.clone(), 0, 3, 5);
        let d = a.subtract(&b).unwrap();
        assert_eq!(d.count().unwrap(), 7);
        assert!(d.contains(&[2]).unwrap());
        assert!(!d.contains(&[4]).unwrap());
        assert!(d.contains(&[6]).unwrap());
    }

    #[test]
    fn subtract_with_divs() {
        // a = [0,15], b = multiples of 4 in [0,15]; a \ b has 12 points.
        let sp = Space::set(0, 1);
        let a = interval(sp.clone(), 0, 0, 15);
        let mut bb = BasicSet::universe(sp.clone());
        bb.add_range(0, 0, 15);
        let q = bb.add_div(LinExpr::var(0), 4);
        bb.add_eq(LinExpr::var(0) - LinExpr::var(q) * 4);
        let b = Set::from_basic(bb);
        let d = a.subtract(&b).unwrap();
        assert_eq!(d.count().unwrap(), 12);
        assert!(!d.contains(&[8]).unwrap());
        assert!(d.contains(&[9]).unwrap());
    }

    #[test]
    fn intersect_counts() {
        let sp = Space::set(0, 2);
        let mut a = BasicSet::universe(sp.clone());
        a.add_range(0, 0, 9);
        a.add_range(1, 0, 9);
        let mut b = BasicSet::universe(sp.clone());
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1)); // i >= j
        let c = Set::from_basic(a).intersect(&Set::from_basic(b)).unwrap();
        assert_eq!(c.count().unwrap(), 55);
    }

    #[test]
    fn parse_example() {
        let sp = Space::set(0, 2);
        let s = Set::from_constraint_strs(sp, &["i >= 0", "7 - i >= 0", "j >= 0", "i - j >= 0"])
            .unwrap();
        assert_eq!(s.count().unwrap(), 36);
    }

    #[test]
    fn empty_set_behaviour() {
        let sp = Space::set(0, 1);
        let e = Set::empty(sp.clone());
        assert!(e.is_empty().unwrap());
        assert_eq!(e.count().unwrap(), 0);
        assert_eq!(e.sample_point().unwrap(), None);
        let a = interval(sp, 0, 0, 3);
        assert_eq!(a.union(&e).unwrap().count().unwrap(), 4);
        assert_eq!(e.union(&a).unwrap().count().unwrap(), 4);
    }

    #[test]
    fn fix_param_pins_size() {
        // [n] -> { [i] : 0 <= i < n }
        let sp = Space::set(1, 1);
        let mut b = BasicSet::universe(sp);
        b.add_ge0(LinExpr::var(1));
        b.add_ge0(LinExpr::var(0) - LinExpr::var(1) - LinExpr::constant(1));
        let s = Set::from_basic(b).fix_param(0, 12);
        assert_eq!(s.count().unwrap(), 12);
    }

    #[test]
    fn subset_and_equality() {
        let sp = Space::set(0, 1);
        let small = interval(sp.clone(), 0, 2, 5);
        let big = interval(sp.clone(), 0, 0, 9);
        assert!(small.is_subset(&big).unwrap());
        assert!(!big.is_subset(&small).unwrap());
        assert!(big.is_equal(&big).unwrap());
        assert!(!big.is_equal(&small).unwrap());
        // Equality across different disjunct decompositions.
        let left = interval(sp.clone(), 0, 0, 4);
        let right = interval(sp.clone(), 0, 5, 9);
        let split = left.union_disjoint(&right).unwrap();
        assert!(split.is_equal(&big).unwrap());
    }

    #[test]
    fn project_then_count_via_enumeration() {
        let sp = Space::set(0, 2);
        let mut b = BasicSet::universe(sp);
        b.add_range(0, 0, 4);
        b.add_range(1, 0, 6);
        let s = Set::from_basic(b).project_out(0, 1);
        assert_eq!(s.count().unwrap(), 7);
    }
}
