//! Spaces: the signatures of sets and relations.

use std::fmt;

/// The kind of a variable within a [`Space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A symbolic parameter (problem size).
    Param,
    /// An input/tuple dimension (for sets, the only tuple kind).
    In,
    /// An output dimension (relations only).
    Out,
    /// An existentially quantified division variable.
    Div,
}

/// The signature of a set or relation: how many parameters, input
/// dimensions and output dimensions it has.
///
/// Sets use `n_out == 0`; their tuple dimensions are the `In` dimensions.
/// Variables of the associated constraint system are laid out as
/// `[params..., in..., out..., divs...]`; the div count lives on the
/// [`crate::BasicSet`], not here, because different disjuncts of a union may
/// use different numbers of divs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Space {
    n_param: usize,
    n_in: usize,
    n_out: usize,
}

impl Space {
    /// Creates the space of a set with `n_param` parameters and `n_dim`
    /// tuple dimensions.
    pub fn set(n_param: usize, n_dim: usize) -> Self {
        Space {
            n_param,
            n_in: n_dim,
            n_out: 0,
        }
    }

    /// Creates the space of a relation with `n_param` parameters, `n_in`
    /// input dimensions and `n_out` output dimensions.
    pub fn map(n_param: usize, n_in: usize, n_out: usize) -> Self {
        Space {
            n_param,
            n_in,
            n_out,
        }
    }

    /// Number of parameters.
    pub fn n_param(&self) -> usize {
        self.n_param
    }

    /// Number of input dimensions (for sets: the tuple dimensions).
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of output dimensions (zero for sets).
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Total number of tuple dimensions (`n_in + n_out`).
    pub fn n_dim(&self) -> usize {
        self.n_in + self.n_out
    }

    /// Number of non-div variables (`n_param + n_in + n_out`).
    pub fn n_var(&self) -> usize {
        self.n_param + self.n_in + self.n_out
    }

    /// Index of the first input dimension in the flat variable layout.
    pub fn in_offset(&self) -> usize {
        self.n_param
    }

    /// Index of the first output dimension in the flat variable layout.
    pub fn out_offset(&self) -> usize {
        self.n_param + self.n_in
    }

    /// Index of the first div variable in the flat variable layout.
    pub fn div_offset(&self) -> usize {
        self.n_var()
    }

    /// The space of the reversed relation (inputs and outputs swapped).
    pub fn reversed(&self) -> Space {
        Space {
            n_param: self.n_param,
            n_in: self.n_out,
            n_out: self.n_in,
        }
    }

    /// The space of this relation's domain, as a set space.
    pub fn domain(&self) -> Space {
        Space::set(self.n_param, self.n_in)
    }

    /// The space of this relation's range, as a set space.
    pub fn range(&self) -> Space {
        Space::set(self.n_param, self.n_out)
    }

    /// Whether this is a set space (no output dimensions).
    pub fn is_set(&self) -> bool {
        self.n_out == 0
    }

    /// A default debug name for variable `idx` in the flat layout
    /// (`p0..`, `i0..`, `o0..`, divs are named by the caller).
    pub fn var_name(&self, idx: usize) -> String {
        if idx < self.n_param {
            format!("p{idx}")
        } else if idx < self.n_param + self.n_in {
            format!("i{}", idx - self.n_param)
        } else if idx < self.n_var() {
            format!("o{}", idx - self.n_param - self.n_in)
        } else {
            format!("e{}", idx - self.n_var())
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_set() {
            write!(f, "[{} params] {{ [{} dims] }}", self.n_param, self.n_in)
        } else {
            write!(
                f,
                "[{} params] {{ [{}] -> [{}] }}",
                self.n_param, self.n_in, self.n_out
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_space_layout() {
        let s = Space::set(2, 3);
        assert_eq!(s.n_param(), 2);
        assert_eq!(s.n_dim(), 3);
        assert_eq!(s.n_var(), 5);
        assert_eq!(s.in_offset(), 2);
        assert_eq!(s.div_offset(), 5);
        assert!(s.is_set());
    }

    #[test]
    fn map_space_reverse() {
        let m = Space::map(1, 2, 3);
        let r = m.reversed();
        assert_eq!(r.n_in(), 3);
        assert_eq!(r.n_out(), 2);
        assert_eq!(m.domain(), Space::set(1, 2));
        assert_eq!(m.range(), Space::set(1, 3));
    }

    #[test]
    fn var_names() {
        let m = Space::map(1, 1, 1);
        assert_eq!(m.var_name(0), "p0");
        assert_eq!(m.var_name(1), "i0");
        assert_eq!(m.var_name(2), "o0");
        assert_eq!(m.var_name(3), "e0");
    }
}
