//! A long-lived bounded worker pool with per-worker state and a stall
//! watchdog hook.
//!
//! [`crate::par_map`] covers one-shot fan-out; a daemon needs the dual
//! shape: a fixed set of workers that outlive any single batch, a
//! **bounded** submission queue, and an explicit "queue full" signal the
//! caller can turn into backpressure (the serve path sheds load with a
//! typed response instead of buffering unboundedly).
//!
//! Each worker owns a caller-built state value (`S`) for the lifetime of
//! the pool — the serve daemon keeps a persistent compile session
//! (Presburger context + counting cache) per worker, so cache warmth
//! accumulates across requests instead of being rebuilt per job.
//!
//! **Self-healing:** every worker publishes a heartbeat (an atomic
//! "busy since" timestamp) around each job. A supervisor thread can call
//! [`StatefulPool::replace_stalled`] to *detach* workers stuck on one
//! job past a threshold — a hung thread cannot be joined or killed, so
//! its `JoinHandle` is dropped, a `detached` flag tells it to exit
//! whenever its job finally returns, and a fresh worker with freshly
//! built state is spawned on the same shared queue. Capacity recovers in
//! bounded time instead of bleeding away one hung compile at a time.

use polyufc_chk::OrderedMutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A job rejected because the submission queue was at capacity.
///
/// Carries the job back so the caller can retry, reroute, or drop it
/// explicitly.
pub struct PoolFull<S>(pub Box<dyn FnOnce(&mut S) + Send + 'static>);

impl<S> std::fmt::Debug for PoolFull<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

type Job<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// A callback the workers run after every completed job (see
/// [`StatefulPool::set_completion_hook`]).
type CompletionHook = Arc<dyn Fn() + Send + Sync + 'static>;

/// Per-worker heartbeat shared between the worker thread and the
/// supervisor: `busy_since_ms` is `0` while idle, else `1 + milliseconds
/// since the pool epoch` when the current job started (the `+1` keeps
/// `0` unambiguous). `detached` tells a replaced worker to exit as soon
/// as its stuck job returns.
struct WorkerSlot {
    busy_since_ms: AtomicU64,
    detached: AtomicBool,
}

struct Worker {
    slot: Arc<WorkerSlot>,
    handle: JoinHandle<()>,
}

/// Fixed-size worker pool over a bounded queue; each worker owns an `S`.
pub struct StatefulPool<S> {
    /// Behind a mutex so shutdown can close the channel through `&self`
    /// (the pool is shared with a watchdog thread via `Arc`).
    tx: OrderedMutex<Option<SyncSender<Job<S>>>>,
    rx: Arc<OrderedMutex<Receiver<Job<S>>>>,
    workers_m: OrderedMutex<Vec<Worker>>,
    hook: Arc<OrderedMutex<Option<CompletionHook>>>,
    /// Rebuilds a replacement worker's state; runs on the new thread.
    init: Arc<dyn Fn(usize) -> S + Send + Sync>,
    epoch: Instant,
    workers: usize,
    queue_cap: usize,
    next_id: AtomicUsize,
    replaced: AtomicU64,
}

impl<S> std::fmt::Debug for StatefulPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatefulPool")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

impl<S: Send + 'static> StatefulPool<S> {
    /// Spawns `workers` threads (at least 1), each owning `init(i)`, fed
    /// from a queue bounded to `queue_cap` (at least 1) pending jobs.
    /// `init` is retained: a replacement for a stalled worker rebuilds
    /// its state through the same closure.
    pub fn new<F>(workers: usize, queue_cap: usize, init: F) -> Self
    where
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let (tx, rx) = sync_channel::<Job<S>>(queue_cap);
        let pool = StatefulPool {
            tx: OrderedMutex::new("par.pool.tx", Some(tx)),
            rx: Arc::new(OrderedMutex::new("par.pool.rx", rx)),
            workers_m: OrderedMutex::new("par.pool.workers", Vec::with_capacity(workers)),
            hook: Arc::new(OrderedMutex::new("par.pool.hook", None)),
            init: Arc::new(init),
            epoch: Instant::now(),
            workers,
            queue_cap,
            next_id: AtomicUsize::new(workers),
            replaced: AtomicU64::new(0),
        };
        {
            let mut ws = pool.workers_m.lock().unwrap();
            for i in 0..workers {
                ws.push(pool.spawn_worker(i));
            }
        }
        pool
    }

    fn spawn_worker(&self, id: usize) -> Worker {
        let slot = Arc::new(WorkerSlot {
            busy_since_ms: AtomicU64::new(0),
            detached: AtomicBool::new(false),
        });
        let rx = Arc::clone(&self.rx);
        let hook = Arc::clone(&self.hook);
        let init = Arc::clone(&self.init);
        let worker_slot = Arc::clone(&slot);
        let epoch = self.epoch;
        let handle = std::thread::Builder::new()
            .name(format!("polyufc-worker-{id}"))
            .spawn(move || {
                // State is built on the worker thread: a replacement's
                // CompileSession must not be constructed under the
                // supervisor's lock.
                let mut state = init(id);
                worker_loop(&rx, &hook, &worker_slot, epoch, &mut state);
            })
            .expect("spawn pool worker");
        Worker { slot, handle }
    }

    /// Installs (or replaces) a callback every worker runs after each
    /// completed job. An event-driven caller uses this as a doorbell: the
    /// serve reactor parks in `epoll_wait` and needs a wakeup-fd write —
    /// not a poll — to learn that a compile finished and its completion
    /// queue has entries to drain. The hook must be cheap and must not
    /// submit jobs back into this pool (it runs on the worker thread).
    pub fn set_completion_hook<F>(&self, hook: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        *self.hook.lock().unwrap() = Some(Arc::new(hook));
    }

    /// Submits a job without blocking. `Err(PoolFull)` means every worker
    /// is busy *and* the queue is at capacity — the caller should shed.
    /// After shutdown every submit comes back as `PoolFull` too: the
    /// caller's shed path is the right answer either way.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] (carrying the job back) when the queue is at
    /// capacity or the pool is shutting down.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolFull<S>>
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        // Clone the sender out so the (uncontended) lock is not held
        // across try_send.
        let tx = self.tx.lock().unwrap().clone();
        let Some(tx) = tx else {
            return Err(PoolFull(Box::new(job)));
        };
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                Err(PoolFull(job))
            }
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Capacity of the pending-job queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_cap
    }

    /// Workers detached and replaced by [`StatefulPool::replace_stalled`]
    /// over the pool's lifetime.
    pub fn workers_replaced(&self) -> u64 {
        self.replaced.load(Ordering::Relaxed)
    }

    /// Detaches every worker that has been busy on a single job for at
    /// least `threshold` and spawns a replacement for each; returns how
    /// many were replaced. The detached thread cannot be interrupted —
    /// its `JoinHandle` is dropped and it exits on its own when (if) the
    /// stuck job returns. The caller is responsible for poisoning
    /// whatever results the stuck jobs owed (the serve engine aborts
    /// their flights with a typed deadline error).
    pub fn replace_stalled(&self, threshold: Duration) -> usize {
        let now_ms = self.epoch.elapsed().as_millis() as u64;
        let threshold_ms = threshold.as_millis() as u64;
        let mut replaced = 0usize;
        let mut ws = self.workers_m.lock().unwrap();
        for w in ws.iter_mut() {
            let busy = w.slot.busy_since_ms.load(Ordering::Acquire);
            if busy == 0 || now_ms.saturating_sub(busy - 1) < threshold_ms {
                continue;
            }
            w.slot.detached.store(true, Ordering::Release);
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let fresh = self.spawn_worker(id);
            // Dropping the old JoinHandle detaches the hung thread.
            let _stuck = std::mem::replace(w, fresh);
            replaced += 1;
        }
        drop(ws);
        self.replaced.fetch_add(replaced as u64, Ordering::Relaxed);
        replaced
    }

    /// Closes the queue and waits up to `grace` for the workers to
    /// finish already-queued jobs and exit; workers still busy when the
    /// grace expires are detached (their threads exit on their own if
    /// their jobs ever return). Safe to call through a shared reference
    /// and idempotent — a second call finds no workers and returns.
    pub fn shutdown_with_grace(&self, grace: Duration) {
        drop(self.tx.lock().unwrap().take()); // closing the channel ends every worker loop
        let deadline = Instant::now() + grace;
        let workers = std::mem::take(&mut *self.workers_m.lock().unwrap());
        for w in workers {
            while !w.handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if w.handle.is_finished() {
                let _ = w.handle.join();
            } else {
                w.slot.detached.store(true, Ordering::Release);
                drop(w.handle);
            }
        }
    }

    /// Drains the queue, stops the workers, and joins them. Already-queued
    /// jobs run to completion first. (Unbounded wait; use
    /// [`StatefulPool::shutdown_with_grace`] when a worker might be
    /// hung.)
    pub fn shutdown(self) {
        self.shutdown_with_grace(Duration::from_secs(60 * 60));
    }
}

impl<S> Drop for StatefulPool<S> {
    fn drop(&mut self) {
        drop(self.tx.lock().unwrap().take());
        for w in self.workers_m.lock().unwrap().drain(..) {
            let _ = w.handle.join();
        }
    }
}

fn worker_loop<S>(
    rx: &OrderedMutex<Receiver<Job<S>>>,
    hook: &OrderedMutex<Option<CompletionHook>>,
    slot: &WorkerSlot,
    epoch: Instant,
    state: &mut S,
) {
    loop {
        if slot.detached.load(Ordering::Acquire) {
            return; // replaced while stuck; a fresh worker owns the queue
        }
        // Hold the lock only while dequeuing, never while running a job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked mid-recv; stop cleanly
        };
        match job {
            Ok(job) => {
                let now_ms = epoch.elapsed().as_millis() as u64;
                slot.busy_since_ms.store(now_ms + 1, Ordering::Release);
                job(state);
                slot.busy_since_ms.store(0, Ordering::Release);
                // Clone out under the lock, ring outside it: the hook may
                // write to an fd and must not serialize the other workers.
                let h = hook.lock().ok().and_then(|g| g.clone());
                if let Some(h) = h {
                    h();
                }
            }
            Err(_) => return, // channel closed: pool shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_chk::OrderedCondvar;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_preserves_worker_state() {
        let pool = StatefulPool::new(2, 8, |i| (i, 0usize));
        let (tx, rx) = channel();
        for _ in 0..16 {
            let mut job = {
                let tx = tx.clone();
                Box::new(move |state: &mut (usize, usize)| {
                    state.1 += 1; // per-worker counter persists across jobs
                    tx.send(state.0).unwrap();
                }) as Box<dyn FnOnce(&mut (usize, usize)) + Send>
            };
            // The queue is bounded: retry on backpressure.
            loop {
                match pool.try_execute(job) {
                    Ok(()) => break,
                    Err(PoolFull(back)) => {
                        job = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        let mut got = 0;
        while got < 16 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
            got += 1;
        }
        pool.shutdown();
    }

    #[test]
    fn full_queue_returns_pool_full_with_the_job() {
        // One worker blocked on a gate + queue of 1: the third submit
        // must come back as PoolFull, not block or vanish.
        let gate = Arc::new((
            OrderedMutex::new("par.pool.test.gate", false),
            OrderedCondvar::new("par.pool.test.gate"),
        ));
        let pool = StatefulPool::new(1, 1, |_| ());
        let g = Arc::clone(&gate);
        pool.try_execute(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has picked up the blocking job so the
        // queue slot is genuinely free for the second submit.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match pool.try_execute(|_| {}) {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("queue never freed: {e:?}"),
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let res = pool.try_execute(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(res.is_err(), "queue full must be reported");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 0, "shed job must not run");
    }

    #[test]
    fn completion_hook_rings_once_per_job() {
        let pool = StatefulPool::new(2, 16, |_| ());
        let rings = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&rings);
        pool.set_completion_hook(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..12 {
            let ran = Arc::clone(&ran);
            let mut job = Box::new(move |_: &mut ()| {
                ran.fetch_add(1, Ordering::SeqCst);
            }) as Box<dyn FnOnce(&mut ()) + Send>;
            loop {
                match pool.try_execute(job) {
                    Ok(()) => break,
                    Err(PoolFull(back)) => {
                        job = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 12);
        assert_eq!(
            rings.load(Ordering::SeqCst),
            12,
            "hook must run exactly once after each job"
        );
    }

    #[test]
    fn shutdown_completes_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = StatefulPool::new(1, 32, |_| ());
        for _ in 0..10 {
            let d = Arc::clone(&done);
            pool.try_execute(move |_| {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn stalled_worker_is_replaced_and_queue_drains() {
        // One worker wedged on a gated job; the queued follow-up can only
        // run if replace_stalled spawns a replacement on the same queue.
        let gate = Arc::new((
            OrderedMutex::new("par.pool.test.gate", false),
            OrderedCondvar::new("par.pool.test.gate"),
        ));
        let states_built = Arc::new(AtomicUsize::new(0));
        let sb = Arc::clone(&states_built);
        let pool = StatefulPool::new(1, 4, move |_| {
            sb.fetch_add(1, Ordering::SeqCst);
        });
        let g = Arc::clone(&gate);
        pool.try_execute(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        // Queue a second job behind the wedge.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let d2 = Arc::clone(&d);
            match pool.try_execute(move |_| {
                d2.fetch_add(1, Ordering::SeqCst);
            }) {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("queue never freed: {e:?}"),
            }
        }
        // Wait until the wedged job is visibly running, then replace.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.replace_stalled(Duration::from_millis(0)) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never showed as busy"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pool.workers_replaced(), 1);
        // The replacement must drain the queued job while the original
        // worker is still wedged.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "replacement never ran the queued job"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            states_built.load(Ordering::SeqCst) >= 2,
            "replacement must rebuild state through init"
        );
        // Unwedge so the detached thread can exit, then shut down.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown_with_grace(Duration::from_secs(5));
    }

    #[test]
    fn shutdown_with_grace_is_bounded_despite_a_hung_worker() {
        let gate = Arc::new((
            OrderedMutex::new("par.pool.test.gate", false),
            OrderedCondvar::new("par.pool.test.gate"),
        ));
        let pool = StatefulPool::new(1, 4, |_| ());
        let g = Arc::clone(&gate);
        pool.try_execute(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        let t0 = std::time::Instant::now();
        pool.shutdown_with_grace(Duration::from_millis(100));
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown must not wait for the hung worker"
        );
        // Unwedge the detached thread so the test process exits cleanly.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}
