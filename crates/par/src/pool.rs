//! A long-lived bounded worker pool with per-worker state.
//!
//! [`crate::par_map`] covers one-shot fan-out; a daemon needs the dual
//! shape: a fixed set of workers that outlive any single batch, a
//! **bounded** submission queue, and an explicit "queue full" signal the
//! caller can turn into backpressure (the serve path sheds load with a
//! typed response instead of buffering unboundedly).
//!
//! Each worker owns a caller-built state value (`S`) for the lifetime of
//! the pool — the serve daemon keeps a persistent compile session
//! (Presburger context + counting cache) per worker, so cache warmth
//! accumulates across requests instead of being rebuilt per job.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A job rejected because the submission queue was at capacity.
///
/// Carries the job back so the caller can retry, reroute, or drop it
/// explicitly.
pub struct PoolFull<S>(pub Box<dyn FnOnce(&mut S) + Send + 'static>);

impl<S> std::fmt::Debug for PoolFull<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

type Job<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// A callback the workers run after every completed job (see
/// [`StatefulPool::set_completion_hook`]).
type CompletionHook = Arc<dyn Fn() + Send + Sync + 'static>;

/// Fixed-size worker pool over a bounded queue; each worker owns an `S`.
pub struct StatefulPool<S> {
    tx: Option<SyncSender<Job<S>>>,
    handles: Vec<JoinHandle<()>>,
    hook: Arc<Mutex<Option<CompletionHook>>>,
    workers: usize,
    queue_cap: usize,
}

impl<S> std::fmt::Debug for StatefulPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatefulPool")
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

impl<S: Send + 'static> StatefulPool<S> {
    /// Spawns `workers` threads (at least 1), each owning `init(i)`, fed
    /// from a queue bounded to `queue_cap` (at least 1) pending jobs.
    pub fn new<F>(workers: usize, queue_cap: usize, mut init: F) -> Self
    where
        F: FnMut(usize) -> S,
    {
        let workers = workers.max(1);
        let queue_cap = queue_cap.max(1);
        let (tx, rx) = sync_channel::<Job<S>>(queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let hook: Arc<Mutex<Option<CompletionHook>>> = Arc::new(Mutex::new(None));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let hook = Arc::clone(&hook);
                let mut state = init(i);
                std::thread::Builder::new()
                    .name(format!("polyufc-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &hook, &mut state))
                    .expect("spawn pool worker")
            })
            .collect();
        StatefulPool {
            tx: Some(tx),
            handles,
            hook,
            workers,
            queue_cap,
        }
    }

    /// Installs (or replaces) a callback every worker runs after each
    /// completed job. An event-driven caller uses this as a doorbell: the
    /// serve reactor parks in `epoll_wait` and needs a wakeup-fd write —
    /// not a poll — to learn that a compile finished and its completion
    /// queue has entries to drain. The hook must be cheap and must not
    /// submit jobs back into this pool (it runs on the worker thread).
    pub fn set_completion_hook<F>(&self, hook: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        *self.hook.lock().unwrap() = Some(Arc::new(hook));
    }

    /// Submits a job without blocking. `Err(PoolFull)` means every worker
    /// is busy *and* the queue is at capacity — the caller should shed.
    ///
    /// # Errors
    ///
    /// Returns [`PoolFull`] (carrying the job back) when the queue is at
    /// capacity.
    pub fn try_execute<F>(&self, job: F) -> Result<(), PoolFull<S>>
    where
        F: FnOnce(&mut S) + Send + 'static,
    {
        let tx = self.tx.as_ref().expect("pool not shut down");
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                Err(PoolFull(job))
            }
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Capacity of the pending-job queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_cap
    }

    /// Drains the queue, stops the workers, and joins them. Already-queued
    /// jobs run to completion first.
    pub fn shutdown(mut self) {
        self.tx.take(); // closing the channel ends every worker loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<S> Drop for StatefulPool<S> {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<S>(
    rx: &Mutex<Receiver<Job<S>>>,
    hook: &Mutex<Option<CompletionHook>>,
    state: &mut S,
) {
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked mid-recv; stop cleanly
        };
        match job {
            Ok(job) => {
                job(state);
                // Clone out under the lock, ring outside it: the hook may
                // write to an fd and must not serialize the other workers.
                let h = hook.lock().ok().and_then(|g| g.clone());
                if let Some(h) = h {
                    h();
                }
            }
            Err(_) => return, // channel closed: pool shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_preserves_worker_state() {
        let pool = StatefulPool::new(2, 8, |i| (i, 0usize));
        let (tx, rx) = channel();
        for _ in 0..16 {
            let mut job = {
                let tx = tx.clone();
                Box::new(move |state: &mut (usize, usize)| {
                    state.1 += 1; // per-worker counter persists across jobs
                    tx.send(state.0).unwrap();
                }) as Box<dyn FnOnce(&mut (usize, usize)) + Send>
            };
            // The queue is bounded: retry on backpressure.
            loop {
                match pool.try_execute(job) {
                    Ok(()) => break,
                    Err(PoolFull(back)) => {
                        job = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        let mut got = 0;
        while got < 16 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
            got += 1;
        }
        pool.shutdown();
    }

    #[test]
    fn full_queue_returns_pool_full_with_the_job() {
        // One worker blocked on a gate + queue of 1: the third submit
        // must come back as PoolFull, not block or vanish.
        let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let pool = StatefulPool::new(1, 1, |_| ());
        let g = Arc::clone(&gate);
        pool.try_execute(move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has picked up the blocking job so the
        // queue slot is genuinely free for the second submit.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match pool.try_execute(|_| {}) {
                Ok(()) => break,
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("queue never freed: {e:?}"),
            }
        }
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let res = pool.try_execute(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(res.is_err(), "queue full must be reported");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 0, "shed job must not run");
    }

    #[test]
    fn completion_hook_rings_once_per_job() {
        let pool = StatefulPool::new(2, 16, |_| ());
        let rings = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&rings);
        pool.set_completion_hook(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..12 {
            let ran = Arc::clone(&ran);
            let mut job = Box::new(move |_: &mut ()| {
                ran.fetch_add(1, Ordering::SeqCst);
            }) as Box<dyn FnOnce(&mut ()) + Send>;
            loop {
                match pool.try_execute(job) {
                    Ok(()) => break,
                    Err(PoolFull(back)) => {
                        job = back;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 12);
        assert_eq!(
            rings.load(Ordering::SeqCst),
            12,
            "hook must run exactly once after each job"
        );
    }

    #[test]
    fn shutdown_completes_queued_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = StatefulPool::new(1, 32, |_| ());
        for _ in 0..10 {
            let d = Arc::clone(&done);
            pool.try_execute(move |_| {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }
}
