//! A minimal, dependency-free work pool for embarrassingly parallel
//! sweeps, built on [`std::thread::scope`].
//!
//! The evaluation harnesses fan out independent (workload × platform ×
//! frequency) points with [`par_map`]; results come back **in input
//! order**, so a parallel sweep prints byte-identical tables to the
//! sequential one. Work is distributed by an atomic cursor (dynamic
//! self-scheduling), which keeps long-running items from serializing the
//! tail the way static chunking would.
//!
//! Thread count defaults to the host parallelism and can be pinned with
//! the `POLYUFC_THREADS` environment variable (`POLYUFC_THREADS=1` forces
//! the sequential path, useful for A/B determinism checks).

#![warn(missing_docs)]

pub mod pool;

pub use pool::{PoolFull, StatefulPool};

use polyufc_chk::OrderedMutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide explicit pool-size override (0 = unset). Set by the CLI
/// `--threads` flag; takes precedence over the environment so a flag on
/// the command line beats an inherited `POLYUFC_THREADS`.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins (or with `None` releases) the worker count for this process,
/// overriding both `POLYUFC_THREADS` and hardware detection. The CLI and
/// the serve daemon route their `--threads` flag here.
pub fn set_worker_override(n: Option<usize>) {
    WORKER_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

/// The active explicit override, if any.
pub fn worker_override() -> Option<usize> {
    match WORKER_OVERRIDE.load(Ordering::SeqCst) {
        0 => None,
        n => Some(n),
    }
}

/// Number of worker threads to use: the [`set_worker_override`] pin if
/// set, else `POLYUFC_THREADS` if set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn worker_count() -> usize {
    if let Some(n) = worker_override() {
        return n;
    }
    std::env::var("POLYUFC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Applies `f` to every item, in parallel, returning results **in input
/// order** (index `i` of the output is `f(&items[i])`).
///
/// Falls back to a plain sequential map when only one worker is available
/// or there is at most one item, so single-core hosts pay no threading
/// overhead. A panic in `f` propagates to the caller once all workers have
/// stopped (scoped-thread join semantics).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OrderedMutex<Option<R>>> = items
        .iter()
        .map(|_| OrderedMutex::new("par.map.slot", None))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Like [`par_map`], but `f` also receives the item's index — handy when a
/// stage needs to label results without threading the label through the
/// item type.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indexed: Vec<usize> = (0..items.len()).collect();
    par_map(&indexed, |&i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered() {
        let items: Vec<u64> = (0..257).collect();
        let out = par_map(&items, |&x| x * x);
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn matches_sequential_map_with_uneven_work() {
        // Items with wildly different costs must still land in order.
        let items: Vec<u64> = (0..64).rev().collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn indexed_variant_passes_indices() {
        let items = ["a", "b", "c"];
        let out = par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn explicit_override_beats_detection() {
        // Sibling tests tolerate a momentary pin: a pinned count only
        // changes how wide par_map fans out, never its results.
        set_worker_override(Some(3));
        assert_eq!(worker_count(), 3);
        assert_eq!(worker_override(), Some(3));
        set_worker_override(None);
        assert_eq!(worker_override(), None);
        assert!(worker_count() >= 1);
    }
}
