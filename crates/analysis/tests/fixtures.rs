//! Broken-fixture regression suite: each `.mlir` under `tests/fixtures/`
//! plants exactly one class of bug, and the matching pass must catch it —
//! with the right pass id and a concrete witness where one is promised.

use polyufc_analysis::{Analyzer, Severity, Witness};
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::textual::parse_affine_program;
use polyufc_ir::types::ArrayId;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn analyze(name: &str) -> (AffineProgram, polyufc_analysis::AnalysisReport) {
    let program = parse_affine_program(&fixture(name)).expect("fixture must parse");
    let report = Analyzer::new().analyze(&program);
    (program, report)
}

#[test]
fn clean_matmul_passes_every_check() {
    let (_, report) = analyze("clean_matmul.mlir");
    assert!(
        report.is_clean(),
        "control fixture must be clean, got:\n{}",
        report.render_text()
    );
}

#[test]
fn oob_stencil_caught_by_bounds_with_witness() {
    let (_, report) = analyze("oob_stencil.mlir");
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(
        errors.len(),
        1,
        "exactly the planted bug:\n{}",
        report.render_text()
    );
    let d = errors[0];
    assert_eq!(d.pass, "bounds");
    assert_eq!(d.location.array.as_deref(), Some("A"));
    match &d.witness {
        Some(Witness::Point {
            iters,
            dim,
            index_value,
        }) => {
            // A has extent 16; the only offending point is i0 = 15
            // reading A[16].
            assert_eq!(iters, &vec![15]);
            assert_eq!(*dim, 0);
            assert_eq!(*index_value, 16);
        }
        other => panic!("expected a point witness, got {other:?}"),
    }
}

#[test]
fn false_parallel_reduction_caught_by_races_with_pair() {
    let (_, report) = analyze("false_parallel_reduction.mlir");
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "only %i2 races:\n{}", report.render_text());
    let d = errors[0];
    assert_eq!(d.pass, "race");
    assert_eq!(d.location.loop_index, Some(2), "the reduction loop");
    assert_eq!(d.location.array.as_deref(), Some("C"));
    match &d.witness {
        Some(Witness::IterationPair { src, dst }) => {
            // Same (i0, i1) tile of C, distinct reduction steps.
            assert_eq!(src[0], dst[0]);
            assert_eq!(src[1], dst[1]);
            assert!(src[2] < dst[2]);
        }
        other => panic!("expected an iteration-pair witness, got {other:?}"),
    }
}

#[test]
fn empty_domain_caught_by_ir_verifier() {
    let (_, report) = analyze("empty_domain.mlir");
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "{}", report.render_text());
    let d = errors[0];
    assert_eq!(d.pass, "ir-verify");
    assert!(d.message.contains("empty iteration domain"));
    assert_eq!(d.location.kernel.as_deref(), Some("dead"));
}

#[test]
fn dangling_array_rejected_at_parse_and_by_verifier() {
    // The textual parser refuses the undeclared name outright…
    let err = parse_affine_program(&fixture("dangling_array.mlir")).unwrap_err();
    assert!(err.to_string().contains("unknown array"), "{err}");
    // …and the same defect built programmatically (an out-of-range
    // ArrayId, as a buggy frontend could emit) is caught by ir-verify.
    let fixed = fixture("dangling_array.mlir").replace("%GHOST", "%A");
    let mut program = parse_affine_program(&fixed).expect("patched fixture parses");
    program.kernels[0].statements[0].accesses[1].array = ArrayId(13);
    let report = Analyzer::new().analyze(&program);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("dangling id must be an error");
    assert_eq!(d.pass, "ir-verify");
    assert!(d.message.contains("undeclared array"), "{}", d.message);
}

#[test]
fn sanitize_repairs_the_false_parallel_fixture() {
    let mut program = parse_affine_program(&fixture("false_parallel_reduction.mlir")).unwrap();
    let downgrades = polyufc_analysis::sanitize_parallel(&mut program);
    assert_eq!(downgrades.len(), 1, "only the racy flag is dropped");
    assert!(!program.kernels[0].loops[2].parallel);
    assert!(
        program.kernels[0].loops[0].parallel,
        "provable flags survive"
    );
    assert!(Analyzer::new().analyze(&program).is_clean());
}
