//! Differential property test for the race detector: on random small
//! kernels, the Presburger verdict for every loop level must agree with a
//! brute-force replay that enumerates all iteration pairs and checks for
//! conflicting element accesses. The detector is exact, so agreement is
//! required in both directions — no missed races, no phantom races.

use std::collections::BTreeSet;

use proptest::prelude::*;

use polyufc_analysis::races::carried_dependence;
use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
use polyufc_ir::types::ElemType;
use polyufc_presburger::LinExpr;

const MAX_DEPTH: usize = 3;

/// One access: per-iterator coefficients, constant offset, write flag,
/// and which of the two arrays it touches.
type AccessSpec = (Vec<i64>, i64, bool, bool);

#[derive(Debug, Clone)]
struct KernelSpec {
    extents: Vec<i64>,
    accesses: Vec<AccessSpec>,
}

fn kernel_spec() -> impl Strategy<Value = KernelSpec> {
    // The vendored proptest has no `prop_flat_map`: draw everything at the
    // maximum depth and truncate to the drawn depth in `prop_map`.
    let coeff = prop_oneof![Just(0i64), Just(1), Just(-1), Just(2), Just(-2)];
    let accesses = proptest::collection::vec(
        (
            proptest::collection::vec(coeff, MAX_DEPTH),
            -2i64..3,
            any::<bool>(),
            any::<bool>(),
        ),
        1..5,
    );
    (
        1usize..=MAX_DEPTH,
        proptest::collection::vec(1i64..5, MAX_DEPTH),
        accesses,
    )
        .prop_map(|(depth, mut extents, mut accesses)| {
            extents.truncate(depth);
            for (coeffs, _, _, _) in &mut accesses {
                coeffs.truncate(depth);
            }
            KernelSpec { extents, accesses }
        })
}

fn build_kernel(spec: &KernelSpec) -> AffineKernel {
    let mut p = AffineProgram::new("diff");
    let a = p.add_array("A", vec![64], ElemType::F64);
    let b = p.add_array("B", vec![64], ElemType::F64);
    let accesses = spec
        .accesses
        .iter()
        .map(|(coeffs, offset, is_write, on_a)| {
            let mut e = LinExpr::constant(*offset);
            for (v, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    e = e + LinExpr::var(v) * c;
                }
            }
            let arr = if *on_a { a } else { b };
            if *is_write {
                Access::write(arr, vec![e])
            } else {
                Access::read(arr, vec![e])
            }
        })
        .collect();
    AffineKernel {
        name: "k".into(),
        loops: spec.extents.iter().map(|&e| Loop::range(e)).collect(),
        statements: vec![Statement {
            name: "S0".into(),
            accesses,
            flops: 1,
        }],
    }
}

fn points(extents: &[i64]) -> Vec<Vec<i64>> {
    let mut out = vec![vec![]];
    for &e in extents {
        out = out
            .into_iter()
            .flat_map(|p| {
                (0..e).map(move |v| {
                    let mut q = p.clone();
                    q.push(v);
                    q
                })
            })
            .collect();
    }
    out
}

/// Brute force: does any iteration pair agreeing on the first `level`
/// iterators and ordered at `level` touch a common element with at least
/// one write?
type ElemSet = BTreeSet<(usize, i64)>;

fn brute_force_race(kernel: &AffineKernel, level: usize) -> bool {
    let pts = points(
        &kernel
            .loops
            .iter()
            .map(|l| l.ub.exprs[0].constant_term())
            .collect::<Vec<_>>(),
    );
    let touched = |pt: &[i64]| -> (ElemSet, ElemSet) {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for s in &kernel.statements {
            for a in &s.accesses {
                let elem = (a.array.0, a.indices[0].eval(pt));
                if a.is_write {
                    writes.insert(elem);
                } else {
                    reads.insert(elem);
                }
            }
        }
        (reads, writes)
    };
    for x in &pts {
        for y in &pts {
            if x[..level] != y[..level] || x[level] >= y[level] {
                continue;
            }
            let (rx, wx) = touched(x);
            let (ry, wy) = touched(y);
            if wx.intersection(&wy).next().is_some()
                || wx.intersection(&ry).next().is_some()
                || rx.intersection(&wy).next().is_some()
            {
                return true;
            }
        }
    }
    false
}

proptest! {
    #[test]
    fn race_detector_matches_brute_force(spec in kernel_spec()) {
        let kernel = build_kernel(&spec);
        for level in 0..kernel.depth() {
            let verdict = carried_dependence(&kernel, level)
                .expect("tiny domains stay within the solver budget");
            let expected = brute_force_race(&kernel, level);
            prop_assert_eq!(
                verdict.is_some(),
                expected,
                "level {} of {:?}: detector {:?}, brute force {}",
                level,
                spec,
                verdict,
                expected
            );
            // When the detector reports a race, its witness must replay:
            // prefix-equal, ordered, and produced by a real conflict.
            if let Some(w) = verdict {
                prop_assert_eq!(&w.src[..level], &w.dst[..level]);
                prop_assert!(w.src[level] < w.dst[level]);
            }
        }
    }
}
