// affine program `false_parallel_reduction`
// Broken on purpose: the reduction loop %i2 of a matmul is flagged
// `affine.parallel`, but every i2 iteration read-modify-writes the same
// C[i0, i1]. The race pass must reject the flag with a concrete
// iteration pair agreeing on (i0, i1) and differing in i2.
memref %A : 8x8xf64
memref %B : 8x8xf64
memref %C : 8x8xf64
func @matmul {
  affine.parallel %i0 = max(0) to min(8) {
    affine.parallel %i1 = max(0) to min(8) {
      affine.parallel %i2 = max(0) to min(8) {
        S0: load %A[i0, i2]; load %B[i2, i1]; load %C[i0, i1]; store %C[i0, i1] // 2 flops
      }
    }
  }
}
