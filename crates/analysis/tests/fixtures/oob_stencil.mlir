// affine program `oob_stencil`
// Broken on purpose: the stencil reads A[i0 + 1] but A has extent 16,
// so iteration i0 = 15 reads A[16]. The bounds pass must reject this
// with exactly that witness point.
memref %A : 16xf64
memref %B : 16xf64
func @stencil {
  affine.for %i0 = max(0) to min(16) {
    S0: load %A[i0 + 1]; store %B[i0] // 1 flops
  }
}
