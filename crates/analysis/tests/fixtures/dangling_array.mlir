// affine program `dangling_array`
// Broken on purpose: the store references %GHOST, which is never
// declared. The textual parser rejects this outright; the same defect
// built programmatically (an out-of-range ArrayId) is caught by the
// IR verifier.
memref %A : 8xf64
func @ghost {
  affine.for %i0 = max(0) to min(8) {
    S0: load %A[i0]; store %GHOST[i0] // 1 flops
  }
}
