// affine program `clean_matmul`
// Control fixture: a correct matmul whose two outer loops are
// legitimately parallel. Every pass must accept it.
memref %A : 8x8xf64
memref %B : 8x8xf64
memref %C : 8x8xf64
func @matmul {
  affine.parallel %i0 = max(0) to min(8) {
    affine.parallel %i1 = max(0) to min(8) {
      affine.for %i2 = max(0) to min(8) {
        S0: load %A[i0, i2]; load %B[i2, i1]; load %C[i0, i1]; store %C[i0, i1] // 2 flops
      }
    }
  }
}
