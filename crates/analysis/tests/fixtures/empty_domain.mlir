// affine program `empty_domain`
// Broken on purpose: the loop runs from 8 up to (exclusive) 4, so the
// statement can never execute. The IR verifier must flag the empty
// iteration domain.
memref %A : 8xf64
func @dead {
  affine.for %i0 = max(8) to min(4) {
    S0: store %A[i0] // 0 flops
  }
}
