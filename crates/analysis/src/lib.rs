//! Static verification of affine programs: a pass framework over the
//! PolyUFC affine IR with structured diagnostics, backed by the
//! Presburger layer's exact dependence machinery.
//!
//! Four passes, in fixed order:
//!
//! 1. [`verify_ir`] — structural lints (dangling arrays, arity/scope
//!    violations, empty domains, unused arrays). Kernels with structural
//!    *errors* are skipped by the later polyhedral passes.
//! 2. [`bounds`] — proves every access-map image lies inside its memref
//!    shape, with a sampled witness iteration on violation.
//! 3. [`races`] — proves every `parallel`-flagged loop free of
//!    loop-carried dependences by access-map composition, domain
//!    intersection, and integer emptiness, with a witness iteration pair
//!    on violation.
//! 4. [`audit`] — cross-checks the cache model's per-kernel counters
//!    against independently recomputed access-relation cardinalities
//!    (optional: needs the model's numbers, see
//!    [`Analyzer::analyze_with_model`]).
//!
//! The same report feeds three consumers: the `polyufc lint` subcommand,
//! the pipeline's pre-compilation verify gate, and the bench-harness
//! cleanliness sweep.
//!
//! # Example
//!
//! ```
//! use polyufc_analysis::Analyzer;
//! use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
//! use polyufc_ir::types::ElemType;
//! use polyufc_presburger::LinExpr;
//!
//! let mut p = AffineProgram::new("demo");
//! let a = p.add_array("A", vec![8], ElemType::F64);
//! let mut l = Loop::range(8);
//! l.parallel = true; // provably safe: disjoint writes
//! p.kernels.push(AffineKernel {
//!     name: "init".into(),
//!     loops: vec![l],
//!     statements: vec![Statement {
//!         name: "S0".into(),
//!         accesses: vec![Access::write(a, vec![LinExpr::var(0)])],
//!         flops: 0,
//!     }],
//! });
//! let report = Analyzer::new().analyze(&p);
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod bounds;
pub mod diag;
pub mod races;
pub mod selflint;
pub mod verify_ir;

pub use audit::ModelCounts;
pub use diag::{AnalysisReport, AnalysisStats, Diagnostic, Location, Severity, Witness};

use std::time::Instant;

use polyufc_ir::affine::AffineProgram;
use polyufc_presburger::Context;

/// Drives the pass pipeline over a program.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Skip the race pass (used by callers that have already sanitized
    /// or re-derived the parallel flags themselves).
    pub skip_races: bool,
}

impl Analyzer {
    /// An analyzer running all structural and polyhedral passes.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Runs the structural, bounds, and race passes.
    ///
    /// All Presburger queries of one run go through a single batched
    /// [`Context`]: emptiness checks share one arena-backed solver system
    /// and counts share one memoizing cache. The report's
    /// [`AnalysisStats`] records per-pass wall-clock and solver
    /// accounting.
    pub fn analyze(&self, program: &AffineProgram) -> AnalysisReport {
        self.analyze_in(program, &mut Context::new())
    }

    /// [`Analyzer::analyze`] against a caller-provided solver context
    /// (e.g. the pipeline's, so its stats aggregate across phases).
    pub fn analyze_in(&self, program: &AffineProgram, ctx: &mut Context) -> AnalysisReport {
        let mut stats = AnalysisStats::default();
        let t = Instant::now();
        let verdict = verify_ir::check_program_in(program, ctx);
        stats.verify_us = t.elapsed().as_micros() as u64;
        let mut diagnostics = verdict.diagnostics;
        for (kernel, &malformed) in program.kernels.iter().zip(&verdict.malformed) {
            if malformed {
                continue;
            }
            let t = Instant::now();
            diagnostics.extend(bounds::check_kernel_in(program, kernel, ctx));
            stats.bounds_us += t.elapsed().as_micros() as u64;
            if !self.skip_races {
                let t = Instant::now();
                diagnostics.extend(races::check_kernel_in(program, kernel, ctx));
                stats.races_us += t.elapsed().as_micros() as u64;
            }
        }
        stats.emptiness_batches = ctx.batches();
        stats.emptiness_checks = ctx.checks();
        stats.peak_arena_bytes = ctx.peak_arena_bytes();
        AnalysisReport {
            program: program.name.clone(),
            diagnostics,
            stats,
        }
    }

    /// Runs all passes including the model-consistency audit.
    /// `counts` holds the cache model's per-kernel numbers in kernel
    /// order; `line_bytes` is the model's cache-line size.
    pub fn analyze_with_model(
        &self,
        program: &AffineProgram,
        counts: &[ModelCounts],
        line_bytes: u64,
    ) -> AnalysisReport {
        let mut ctx = Context::new();
        let mut report = self.analyze_in(program, &mut ctx);
        let t = Instant::now();
        report.diagnostics.extend(audit::audit_program_in(
            program, counts, line_bytes, &mut ctx,
        ));
        report.stats.audit_us = t.elapsed().as_micros() as u64;
        report.stats.emptiness_batches = ctx.batches();
        report.stats.emptiness_checks = ctx.checks();
        report.stats.peak_arena_bytes = ctx.peak_arena_bytes();
        report
    }
}

/// Downgrades every `parallel` flag that cannot be *proven* safe to a
/// sequential loop, returning one warning diagnostic per downgrade.
///
/// This is the trust-hole fix for frontends (`ir::textual`,
/// `cgeist`) that accept parallel markers from the input file: instead of
/// trusting the marker, the dependence test either proves it or the loop
/// runs sequentially.
pub fn sanitize_parallel(program: &mut AffineProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let malformed_kernels = verify_ir::check_program(program).malformed;
    for (ki, kernel) in program.kernels.iter_mut().enumerate() {
        let malformed = malformed_kernels.get(ki).copied().unwrap_or(true);
        for d in 0..kernel.depth() {
            if !kernel.loops[d].parallel {
                continue;
            }
            let reason = if malformed {
                Some("kernel is structurally malformed".to_string())
            } else {
                match races::carried_dependence(kernel, d) {
                    Ok(None) => None,
                    Ok(Some(w)) => Some(format!(
                        "carries a {} dependence (witness iterations {:?} -> {:?})",
                        w.kind, w.src, w.dst
                    )),
                    Err(e) => Some(format!("independence not provable (solver: {e})")),
                }
            };
            if let Some(reason) = reason {
                kernel.loops[d].parallel = false;
                out.push(Diagnostic {
                    pass: races::PASS,
                    severity: Severity::Warning,
                    location: Location::kernel(&kernel.name).loop_index(d),
                    message: format!(
                        "unverified `parallel` marker downgraded to sequential: {reason}"
                    ),
                    witness: None,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    /// A reduction `s[0] += A[i]` with a (false) parallel marker.
    fn false_parallel_reduction() -> AffineProgram {
        let mut p = AffineProgram::new("red");
        let a = p.add_array("A", vec![8], ElemType::F64);
        let s = p.add_array("s", vec![1], ElemType::F64);
        let mut l = Loop::range(8);
        l.parallel = true;
        p.kernels.push(AffineKernel {
            name: "red".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::read(s, vec![LinExpr::constant(0)]),
                    Access::write(s, vec![LinExpr::constant(0)]),
                ],
                flops: 1,
            }],
        });
        p
    }

    #[test]
    fn analyzer_orders_passes_and_skips_malformed() {
        let mut p = false_parallel_reduction();
        // Break the kernel structurally: the race pass must not run on it.
        p.kernels[0].statements[0].accesses[0].array = polyufc_ir::types::ArrayId(9);
        let r = Analyzer::new().analyze(&p);
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().all(|d| d.pass != races::PASS));
    }

    #[test]
    fn analyzer_catches_false_parallel() {
        let r = Analyzer::new().analyze(&false_parallel_reduction());
        assert!(r.has_errors());
        assert!(r.diagnostics.iter().any(|d| d.pass == races::PASS));
    }

    #[test]
    fn sanitize_downgrades_with_warning() {
        let mut p = false_parallel_reduction();
        let diags = sanitize_parallel(&mut p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(!p.kernels[0].loops[0].parallel);
        // Now clean: the downgraded program passes the analyzer.
        assert!(Analyzer::new().analyze(&p).is_clean());
        // Idempotent.
        assert!(sanitize_parallel(&mut p).is_empty());
    }

    #[test]
    fn sanitize_keeps_provable_flags() {
        let mut p = AffineProgram::new("ok");
        let a = p.add_array("A", vec![4], ElemType::F64);
        let mut l = Loop::range(4);
        l.parallel = true;
        p.kernels.push(AffineKernel {
            name: "k".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![Access::write(a, vec![LinExpr::var(0)])],
                flops: 0,
            }],
        });
        assert!(sanitize_parallel(&mut p).is_empty());
        assert!(p.kernels[0].loops[0].parallel);
    }
}
