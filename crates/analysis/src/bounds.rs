//! Bounds checking: prove every access-map image lies inside its memref
//! shape by intersecting the iteration domain with the out-of-shape
//! half-spaces and deciding integer emptiness; a nonempty intersection is
//! sampled into a concrete violating iteration.

use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::{BasicSet, Context, Emptiness, LinExpr};

use crate::diag::{Diagnostic, Location, Severity, Witness};

/// Pass identifier.
pub const PASS: &str = "bounds";

/// Checks every access of `kernel` against its array's declared shape.
///
/// For each subscript `e_j` of an access to an array with extent `n_j` in
/// dimension `j`, the access is in bounds iff both
/// `D ∩ { i : e_j(i) <= -1 }` and `D ∩ { i : e_j(i) >= n_j }` are empty.
///
/// Structurally malformed accesses (bad array id, wrong arity, subscripts
/// referencing out-of-scope iterators) are skipped — the IR verifier
/// reports those.
pub fn check_kernel(program: &AffineProgram, kernel: &AffineKernel) -> Vec<Diagnostic> {
    check_kernel_in(program, kernel, &mut Context::new())
}

/// One out-of-shape half-space to decide, with everything needed to
/// render a diagnostic if it turns out inhabited.
struct SideCheck {
    /// Identifies the subscript: (statement index, access index, dim).
    subscript: (usize, usize, usize),
    statement: String,
    array: String,
    is_write: bool,
    side: &'static str,
    extent: i64,
    expr: LinExpr,
    viol: BasicSet,
}

/// [`check_kernel`] through a shared batched solver [`Context`]: every
/// out-of-shape half-space of every access is built up front and decided
/// in one emptiness batch; only inhabited ones pay for a witness sample.
pub fn check_kernel_in(
    program: &AffineProgram,
    kernel: &AffineKernel,
    ctx: &mut Context,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let depth = kernel.depth();
    let dom = kernel.domain();
    let dom_b = &dom.basics()[0];
    let mut checks = Vec::new();
    for (si, s) in kernel.statements.iter().enumerate() {
        for (ai, a) in s.accesses.iter().enumerate() {
            if a.array.0 >= program.arrays.len() {
                continue;
            }
            let decl = program.array(a.array);
            if a.indices.len() != decl.dims.len() {
                continue;
            }
            for (j, e) in a.indices.iter().enumerate() {
                if e.terms().any(|(i, _)| i >= depth) {
                    continue;
                }
                let extent = decl.dims[j] as i64;
                // (side name, out-of-shape half-space constraint e' >= 0).
                let sides = [
                    ("below", LinExpr::constant(-1) - e.clone()),
                    ("above", e.clone() - LinExpr::constant(extent)),
                ];
                for (side, excess) in sides {
                    let mut viol = dom_b.clone();
                    viol.add_ge0(excess);
                    checks.push(SideCheck {
                        subscript: (si, ai, j),
                        statement: s.name.clone(),
                        array: decl.name.clone(),
                        is_write: a.is_write,
                        side,
                        extent,
                        expr: e.clone(),
                        viol,
                    });
                }
            }
        }
    }
    let verdicts = ctx.check_all(checks.iter().map(|c| &c.viol));
    // One witness per subscript dimension suffices: once a subscript has
    // produced a diagnostic, its remaining sides are skipped (matching the
    // sequential checker's per-subscript `break`).
    let mut done_subscript = None;
    for (c, verdict) in checks.iter().zip(verdicts) {
        if done_subscript == Some(c.subscript) {
            continue;
        }
        let location = || {
            Location::kernel(&kernel.name)
                .statement(&c.statement)
                .array(c.array.clone())
        };
        match verdict {
            Emptiness::Empty => {}
            Emptiness::NonEmpty => {
                let pt = match ctx.sample(&c.viol) {
                    Ok(Some(pt)) => pt,
                    Ok(None) => continue,
                    Err(e) => {
                        out.push(Diagnostic {
                            pass: PASS,
                            severity: Severity::Error,
                            location: location(),
                            message: format!(
                                "cannot prove subscript {} of `{}` in bounds (solver: {e})",
                                c.subscript.2, c.array
                            ),
                            witness: None,
                        });
                        done_subscript = Some(c.subscript);
                        continue;
                    }
                };
                let iters = pt[..depth].to_vec();
                let index_value = c.expr.eval(&iters);
                out.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Error,
                    location: location(),
                    message: format!(
                        "{} access to `{}` escapes dim {} ({}; extent {})",
                        if c.is_write { "store" } else { "load" },
                        c.array,
                        c.subscript.2,
                        c.side,
                        c.extent
                    ),
                    witness: Some(Witness::Point {
                        iters,
                        dim: c.subscript.2,
                        index_value,
                    }),
                });
                done_subscript = Some(c.subscript);
            }
            Emptiness::Unknown(e) => {
                out.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Error,
                    location: location(),
                    message: format!(
                        "cannot prove subscript {} of `{}` in bounds (solver: {e})",
                        c.subscript.2, c.array
                    ),
                    witness: None,
                });
                done_subscript = Some(c.subscript);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;

    fn stencil(extent: i64, array_len: usize, shift: i64) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("st");
        let a = p.add_array("A", vec![array_len], ElemType::F64);
        let b = p.add_array("B", vec![extent as usize], ElemType::F64);
        let kern = AffineKernel {
            name: "st".into(),
            loops: vec![Loop::range(extent)],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0) + LinExpr::constant(shift)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(kern.clone());
        (p, kern)
    }

    #[test]
    fn in_bounds_is_clean() {
        let (p, k) = stencil(15, 16, 1);
        assert!(check_kernel(&p, &k).is_empty());
    }

    #[test]
    fn overflow_above_with_witness() {
        let (p, k) = stencil(16, 16, 1);
        let d = check_kernel(&p, &k);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].pass, PASS);
        match &d[0].witness {
            Some(Witness::Point {
                iters,
                dim,
                index_value,
            }) => {
                assert_eq!(*dim, 0);
                assert!(*index_value >= 16);
                assert_eq!(iters[0] + 1, *index_value);
            }
            other => panic!("expected point witness, got {other:?}"),
        }
    }

    #[test]
    fn underflow_below_with_witness() {
        let (p, k) = stencil(16, 16, -1);
        let d = check_kernel(&p, &k);
        assert_eq!(d.len(), 1);
        match &d[0].witness {
            Some(Witness::Point { index_value, .. }) => assert!(*index_value < 0),
            other => panic!("expected point witness, got {other:?}"),
        }
        assert!(d[0].message.contains("below"));
    }

    #[test]
    fn empty_domain_is_vacuously_in_bounds() {
        let (mut p, mut k) = stencil(16, 4, 100);
        // Make the domain empty: lb 8, ub 4.
        k.loops[0] = Loop::new(
            polyufc_ir::affine::Bound::constant(8),
            polyufc_ir::affine::Bound::constant(4),
        );
        p.kernels[0] = k.clone();
        assert!(check_kernel(&p, &k).is_empty());
    }

    #[test]
    fn triangular_domain_bounds_are_exact() {
        // for i in 0..8 { for j in 0..=i { B[i][j] } } with B 8x8: clean;
        // with B 8x7 the diagonal j = 7 only occurs at i = 7.
        use polyufc_ir::affine::Bound;
        let mut p = AffineProgram::new("tri");
        let b = p.add_array("B", vec![8, 7], ElemType::F64);
        let kern = AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(8),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![Access::write(b, vec![LinExpr::var(0), LinExpr::var(1)])],
                flops: 0,
            }],
        };
        p.kernels.push(kern.clone());
        let d = check_kernel(&p, &kern);
        assert_eq!(d.len(), 1);
        match &d[0].witness {
            Some(Witness::Point {
                iters,
                dim,
                index_value,
            }) => {
                assert_eq!(*dim, 1);
                assert_eq!(*index_value, 7);
                assert_eq!(iters[0], 7);
            }
            other => panic!("expected point witness, got {other:?}"),
        }
    }
}
