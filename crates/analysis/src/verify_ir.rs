//! Structural IR verification: the lints that need no dependence analysis
//! — dangling arrays, arity and scope violations, dead (empty) iteration
//! domains, unused arrays. Runs first; kernels it marks malformed are
//! skipped by the bounds and race passes (their polyhedral constructions
//! assume a well-formed kernel).

use std::collections::BTreeSet;

use polyufc_ir::affine::AffineProgram;
use polyufc_presburger::{Context, Emptiness};

use crate::diag::{Diagnostic, Location, Severity};

/// Pass identifier.
pub const PASS: &str = "ir-verify";

/// Outcome of the structural pass: the findings plus a per-kernel flag
/// telling downstream passes which kernels are too broken to analyze.
#[derive(Debug, Clone, Default)]
pub struct IrVerdict {
    /// All structural findings.
    pub diagnostics: Vec<Diagnostic>,
    /// `malformed[k]` — kernel `k` has a structural error (bad array id,
    /// arity mismatch, out-of-scope iterator).
    pub malformed: Vec<bool>,
}

/// Runs all structural checks over a program.
pub fn check_program(program: &AffineProgram) -> IrVerdict {
    check_program_in(program, &mut Context::new())
}

/// [`check_program`] through a shared batched solver [`Context`]: the
/// per-kernel dead-domain emptiness queries reuse the context's arena.
pub fn check_program_in(program: &AffineProgram, ctx: &mut Context) -> IrVerdict {
    let mut v = IrVerdict::default();
    let mut used_arrays: BTreeSet<usize> = BTreeSet::new();
    for kernel in &program.kernels {
        let mut malformed = false;
        let depth = kernel.depth();
        let loc = || Location::kernel(&kernel.name);
        // Loop bounds may only reference enclosing (outer) iterators.
        for (d, l) in kernel.loops.iter().enumerate() {
            for e in l.lb.exprs.iter().chain(&l.ub.exprs) {
                if let Some(bad) = e
                    .terms()
                    .filter(|&(i, c)| c != 0 && i >= d)
                    .map(|(i, _)| i)
                    .max()
                {
                    malformed = true;
                    v.diagnostics.push(Diagnostic {
                        pass: PASS,
                        severity: Severity::Error,
                        location: loc().loop_index(d),
                        message: format!(
                            "bound of loop %i{d} references iterator %i{bad} (only outer iterators are in scope)"
                        ),
                        witness: None,
                    });
                }
            }
        }
        for s in &kernel.statements {
            for a in &s.accesses {
                if a.array.0 >= program.arrays.len() {
                    malformed = true;
                    v.diagnostics.push(Diagnostic {
                        pass: PASS,
                        severity: Severity::Error,
                        location: loc().statement(&s.name),
                        message: format!(
                            "access references undeclared array {} ({} arrays declared)",
                            a.array,
                            program.arrays.len()
                        ),
                        witness: None,
                    });
                    continue;
                }
                used_arrays.insert(a.array.0);
                let decl = program.array(a.array);
                if a.indices.len() != decl.dims.len() {
                    malformed = true;
                    v.diagnostics.push(Diagnostic {
                        pass: PASS,
                        severity: Severity::Error,
                        location: loc().statement(&s.name).array(decl.name.clone()),
                        message: format!(
                            "access has {} subscripts, `{}` has {} dims",
                            a.indices.len(),
                            decl.name,
                            decl.dims.len()
                        ),
                        witness: None,
                    });
                }
                for (j, e) in a.indices.iter().enumerate() {
                    if let Some(bad) = e
                        .terms()
                        .filter(|&(i, c)| c != 0 && i >= depth)
                        .map(|(i, _)| i)
                        .max()
                    {
                        malformed = true;
                        v.diagnostics.push(Diagnostic {
                            pass: PASS,
                            severity: Severity::Error,
                            location: loc().statement(&s.name).array(decl.name.clone()),
                            message: format!(
                                "subscript {j} references iterator %i{bad} beyond nest depth {depth}"
                            ),
                            witness: None,
                        });
                    }
                }
            }
        }
        if kernel.statements.is_empty() {
            v.diagnostics.push(Diagnostic {
                pass: PASS,
                severity: Severity::Warning,
                location: loc(),
                message: "kernel has no statements".into(),
                witness: None,
            });
        }
        // Dead domain: statements can never execute. The cache model
        // rejects such kernels outright, so this is an error, not a lint.
        // Only decidable when the bounds themselves are well-formed.
        if !malformed && depth > 0 {
            match ctx.check_set(&kernel.domain()) {
                Emptiness::Empty => v.diagnostics.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Error,
                    location: loc(),
                    message: "empty iteration domain: no statement instance can execute".into(),
                    witness: None,
                }),
                Emptiness::NonEmpty => {}
                Emptiness::Unknown(e) => v.diagnostics.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Warning,
                    location: loc(),
                    message: format!("cannot decide whether the iteration domain is empty ({e})"),
                    witness: None,
                }),
            }
        }
        v.malformed.push(malformed);
    }
    for (idx, a) in program.arrays.iter().enumerate() {
        if a.is_empty() {
            v.diagnostics.push(Diagnostic {
                pass: PASS,
                severity: Severity::Warning,
                location: Location::default().array(a.name.clone()),
                message: "array has zero elements".into(),
                witness: None,
            });
        }
        if !used_arrays.contains(&idx) {
            v.diagnostics.push(Diagnostic {
                pass: PASS,
                severity: Severity::Warning,
                location: Location::default().array(a.name.clone()),
                message: "array is declared but never accessed".into(),
                witness: None,
            });
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, Bound, Loop, Statement};
    use polyufc_ir::types::{ArrayId, ElemType};
    use polyufc_presburger::LinExpr;

    fn clean_program() -> AffineProgram {
        let mut p = AffineProgram::new("ok");
        let a = p.add_array("A", vec![4], ElemType::F64);
        p.kernels.push(AffineKernel {
            name: "k".into(),
            loops: vec![Loop::range(4)],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![Access::write(a, vec![LinExpr::var(0)])],
                flops: 1,
            }],
        });
        p
    }

    #[test]
    fn clean_program_has_no_findings() {
        let v = check_program(&clean_program());
        assert!(v.diagnostics.is_empty());
        assert_eq!(v.malformed, vec![false]);
    }

    #[test]
    fn dangling_array_is_malformed() {
        let mut p = clean_program();
        p.kernels[0].statements[0].accesses[0].array = ArrayId(7);
        let v = check_program(&p);
        assert_eq!(v.malformed, vec![true]);
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.message.contains("undeclared array")));
        // A now stands unused as well.
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.message.contains("never accessed")));
    }

    #[test]
    fn arity_and_scope_violations() {
        let mut p = clean_program();
        p.kernels[0].statements[0].accesses.push(Access::read(
            ArrayId(0),
            vec![LinExpr::var(0), LinExpr::var(1)],
        ));
        let v = check_program(&p);
        assert!(v.malformed[0]);
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.message.contains("subscripts")));
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.message.contains("beyond nest depth")));
    }

    #[test]
    fn empty_domain_is_an_error() {
        let mut p = clean_program();
        p.kernels[0].loops[0] = Loop::new(Bound::constant(8), Bound::constant(4));
        let v = check_program(&p);
        assert!(!v.malformed[0]);
        assert!(
            v.diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error
                    && d.message.contains("empty iteration domain"))
        );
    }

    #[test]
    fn bad_bound_scope_is_an_error() {
        let mut p = clean_program();
        p.kernels[0].loops[0].ub = Bound::expr(LinExpr::var(2));
        let v = check_program(&p);
        assert!(v.malformed[0]);
        assert!(v
            .diagnostics
            .iter()
            .any(|d| d.message.contains("only outer iterators")));
    }

    #[test]
    fn empty_kernel_and_zero_array_warn() {
        let mut p = AffineProgram::new("warn");
        p.add_array("Z", vec![0, 4], ElemType::F32);
        p.kernels.push(AffineKernel {
            name: "k".into(),
            loops: vec![Loop::range(2)],
            statements: vec![],
        });
        let v = check_program(&p);
        assert_eq!(v.malformed, vec![false]);
        let warnings: Vec<_> = v
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect();
        assert_eq!(warnings.len(), 3); // no statements, zero elements, unused
    }
}
