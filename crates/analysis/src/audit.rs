//! Model-consistency audit: cross-checks the OI pipeline's per-kernel
//! counters (total accesses, flops, compulsory-miss lines) against
//! independently recomputed access-relation cardinalities.
//!
//! The access and flop counts must match exactly (both are integer counts
//! of the same relations, computed here through map-space counting rather
//! than the pipeline's cached domain counts). The cold-line count is a
//! heuristic in the model — per-array distinct lines with midpoint
//! substitution — so it is only required to sit between an exact
//! footprint *lower bound* (distinct elements of injective access
//! relations, packed as densely as a cache line allows) and the exact
//! per-array line-capacity *upper bound*, within [`COLD_TOLERANCE`].

use std::collections::{BTreeMap, BTreeSet};

use polyufc_ir::affine::{Access, AffineKernel, AffineProgram};
use polyufc_presburger::{BasicSet, Context, LinExpr, Map, Set, Space};

use crate::diag::{Diagnostic, Location, Severity};

/// Pass identifier.
pub const PASS: &str = "model-audit";

/// Relative tolerance for exact-count comparisons (floats in the model).
const EXACT_REL_TOL: f64 = 1e-6;

/// Multiplicative slack allowed between the model's cold-line count and
/// the recomputed footprint lower bound.
pub const COLD_TOLERANCE: f64 = 2.0;

/// The pipeline-side counters audited for one kernel, in kernel order.
/// Mirrors the relevant fields of the cache model's per-kernel stats
/// without depending on the cache crate (which sits above this one).
#[derive(Debug, Clone)]
pub struct ModelCounts {
    /// Kernel name (must match the program's kernel at the same index).
    pub kernel: String,
    /// Model's total issued accesses.
    pub total_accesses: f64,
    /// Model's total flops `Ω`.
    pub flops: f64,
    /// Model's compulsory-miss (distinct cache line) count.
    pub cold_lines: f64,
}

/// Audits every kernel of `program` against the model counters.
/// `line_bytes` is the cache-line size the model used.
pub fn audit_program(
    program: &AffineProgram,
    counts: &[ModelCounts],
    line_bytes: u64,
) -> Vec<Diagnostic> {
    audit_program_in(program, counts, line_bytes, &mut Context::new())
}

/// [`audit_program`] through a shared batched solver [`Context`]: all
/// relation and domain cardinalities go through the context's memoizing
/// count cache, so e.g. the same iteration domain counted for several
/// array references is solved once.
pub fn audit_program_in(
    program: &AffineProgram,
    counts: &[ModelCounts],
    line_bytes: u64,
    ctx: &mut Context,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if counts.len() != program.kernels.len() {
        out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Warning,
            location: Location::default(),
            message: format!(
                "model reported {} kernels, program has {}; audit skipped",
                counts.len(),
                program.kernels.len()
            ),
            witness: None,
        });
        return out;
    }
    for (kernel, c) in program.kernels.iter().zip(counts) {
        if kernel.name != c.kernel {
            out.push(Diagnostic {
                pass: PASS,
                severity: Severity::Warning,
                location: Location::kernel(&kernel.name),
                message: format!(
                    "model counters are for `{}`; kernel order mismatch, audit skipped",
                    c.kernel
                ),
                witness: None,
            });
            continue;
        }
        audit_kernel(program, kernel, c, line_bytes, ctx, &mut out);
    }
    out
}

fn audit_kernel(
    program: &AffineProgram,
    kernel: &AffineKernel,
    c: &ModelCounts,
    line_bytes: u64,
    ctx: &mut Context,
    out: &mut Vec<Diagnostic>,
) {
    let loc = || Location::kernel(&kernel.name);
    let dom = kernel.domain();
    let dom_b = &dom.basics()[0];
    let depth = kernel.depth();

    // (1) Total accesses: Σ over accesses of |access relation|, counted in
    // map space (domain ++ image with the subscript equalities) — an
    // independent path from the model's |D| × refs-per-point product.
    let mut recomputed_accesses: Option<f64> = Some(0.0);
    for s in &kernel.statements {
        for a in &s.accesses {
            let m = a
                .index_map(depth)
                .intersect_domain(dom_b)
                .ok()
                .map(Map::from_basic);
            match m.map(|m| m.count_pairs_in(ctx)) {
                Some(Ok(n)) => {
                    if let Some(acc) = recomputed_accesses.as_mut() {
                        *acc += n as f64;
                    }
                }
                _ => recomputed_accesses = None,
            }
        }
    }
    match recomputed_accesses {
        Some(n) if !close(n, c.total_accesses) => out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Error,
            location: loc(),
            message: format!(
                "model counted {} accesses, access relations contain {}",
                c.total_accesses, n
            ),
            witness: None,
        }),
        Some(_) => {}
        None => out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Info,
            location: loc(),
            message: "access-count audit skipped (relation not countable)".into(),
            witness: None,
        }),
    }

    // (2) Flops: fresh domain count × Σ_s ω_s.
    let per_point_flops: f64 = kernel.statements.iter().map(|s| s.flops as f64).sum();
    match dom.count_in(ctx) {
        Ok(d) => {
            let n = d as f64 * per_point_flops;
            if !close(n, c.flops) {
                out.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Error,
                    location: loc(),
                    message: format!("model counted {} flops, domain × ω gives {}", c.flops, n),
                    witness: None,
                });
            }
        }
        Err(e) => out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Info,
            location: loc(),
            message: format!("flop audit skipped (domain not countable: {e})"),
            witness: None,
        }),
    }

    // (3) Cold lines can never exceed the total line capacity of the
    // arrays the kernel touches.
    let touched: BTreeSet<usize> = kernel
        .statements
        .iter()
        .flat_map(|s| s.accesses.iter().map(|a| a.array.0))
        .collect();
    let cap: f64 = touched
        .iter()
        .map(|&i| (program.arrays[i].size_bytes() as f64 / line_bytes as f64).ceil())
        .sum();
    if c.cold_lines > cap * (1.0 + EXACT_REL_TOL) {
        out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Error,
            location: loc(),
            message: format!(
                "model cold-line count {} exceeds the {} lines the touched arrays occupy",
                c.cold_lines, cap
            ),
            witness: None,
        });
    }

    // (4) Cold lines must cover the exact footprint lower bound: for every
    // array, the largest injective access relation's range cardinality,
    // divided by the line's element capacity. Accesses whose relations are
    // not provably injective over a bounds-closed iterator subset are
    // skipped (the bound stays sound, just looser).
    let mut lb_by_array: BTreeMap<usize, f64> = BTreeMap::new();
    for s in &kernel.statements {
        for a in &s.accesses {
            if a.array.0 >= program.arrays.len() {
                continue;
            }
            let Some(elements) = injective_range_count(kernel, a, ctx) else {
                continue;
            };
            let decl = &program.arrays[a.array.0];
            let per_line = (line_bytes as f64 / decl.elem.size_bytes() as f64).max(1.0);
            let lines = (elements as f64 / per_line).ceil();
            let e = lb_by_array.entry(a.array.0).or_insert(0.0);
            *e = e.max(lines);
        }
    }
    let lb: f64 = lb_by_array.values().sum();
    if c.cold_lines * COLD_TOLERANCE < lb {
        out.push(Diagnostic {
            pass: PASS,
            severity: Severity::Error,
            location: loc(),
            message: format!(
                "model cold-line count {} diverges from the footprint lower bound {} (tolerance ×{})",
                c.cold_lines, lb, COLD_TOLERANCE
            ),
            witness: None,
        });
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= EXACT_REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Exact range cardinality of an access relation, when the relation is
/// injective by construction: every subscript references at most one
/// iterator (nonzero coefficient), all such iterators are distinct, and
/// their loop bounds only reference iterators of the same subset (so the
/// subset's sub-domain is self-contained). Returns `None` when those
/// conditions don't hold or counting fails.
fn injective_range_count(
    kernel: &AffineKernel,
    access: &Access,
    ctx: &mut Context,
) -> Option<i128> {
    let mut selected: BTreeSet<usize> = BTreeSet::new();
    for e in &access.indices {
        let vars: Vec<usize> = e.terms().filter(|&(_, c)| c != 0).map(|(i, _)| i).collect();
        match vars.as_slice() {
            [] => {}
            [v] => {
                if *v >= kernel.depth() || !selected.insert(*v) {
                    return None;
                }
            }
            _ => return None,
        }
    }
    if selected.is_empty() {
        // A constant access touches exactly one element.
        return Some(1);
    }
    // Bounds closure: the selected loops' bounds may only reference
    // selected iterators.
    for &v in &selected {
        let l = &kernel.loops[v];
        for e in l.lb.exprs.iter().chain(&l.ub.exprs) {
            if e.terms().any(|(i, c)| c != 0 && !selected.contains(&i)) {
                return None;
            }
        }
    }
    // Count the sub-domain over the selected iterators (remapped densely).
    let order: Vec<usize> = selected.iter().copied().collect();
    let pos = |v: usize| order.iter().position(|&x| x == v).expect("selected");
    let remap = |e: &LinExpr| {
        let mut out = LinExpr::constant(e.constant_term());
        for (i, c) in e.terms() {
            if c != 0 {
                out = out + LinExpr::var(pos(i)) * c;
            }
        }
        out
    };
    let mut b = BasicSet::universe(Space::set(0, order.len()));
    for (p, &v) in order.iter().enumerate() {
        let l = &kernel.loops[v];
        for e in &l.lb.exprs {
            b.add_ge0(LinExpr::var(p) - remap(e));
        }
        for e in &l.ub.exprs {
            b.add_ge0(remap(e) - LinExpr::var(p) - LinExpr::constant(1));
        }
    }
    Set::from_basic(b).count_in(ctx).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;

    /// matmul 8³ over 8x8 f64 arrays; one statement, 4 accesses, 2 flops.
    fn matmul() -> AffineProgram {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![8, 8], ElemType::F64);
        let b = p.add_array("B", vec![8, 8], ElemType::F64);
        let c = p.add_array("C", vec![8, 8], ElemType::F64);
        let (i, j, k) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        p.kernels.push(AffineKernel {
            name: "mm".into(),
            loops: vec![Loop::range(8), Loop::range(8), Loop::range(8)],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![i.clone(), k.clone()]),
                    Access::read(b, vec![k, j.clone()]),
                    Access::read(c, vec![i.clone(), j.clone()]),
                    Access::write(c, vec![i, j]),
                ],
                flops: 2,
            }],
        });
        p
    }

    fn good_counts() -> Vec<ModelCounts> {
        // |D| = 512; 4 accesses/point; 2 flops/point. Each array is 64
        // elements = 8 lines of 64 B; 3 arrays touched -> 24 cold lines.
        vec![ModelCounts {
            kernel: "mm".into(),
            total_accesses: 2048.0,
            flops: 1024.0,
            cold_lines: 24.0,
        }]
    }

    #[test]
    fn consistent_counts_are_clean() {
        let d = audit_program(&matmul(), &good_counts(), 64);
        assert!(d.iter().all(|x| x.severity == Severity::Info), "{d:?}");
    }

    #[test]
    fn access_miscount_is_flagged() {
        let mut c = good_counts();
        c[0].total_accesses = 2000.0;
        let d = audit_program(&matmul(), &c, 64);
        assert!(d
            .iter()
            .any(|x| x.severity == Severity::Error && x.message.contains("accesses")));
    }

    #[test]
    fn flop_miscount_is_flagged() {
        let mut c = good_counts();
        c[0].flops = 999.0;
        let d = audit_program(&matmul(), &c, 64);
        assert!(d
            .iter()
            .any(|x| x.severity == Severity::Error && x.message.contains("flops")));
    }

    #[test]
    fn cold_overcount_and_undercount_are_flagged() {
        let mut c = good_counts();
        c[0].cold_lines = 1000.0; // > 24-line capacity
        let d = audit_program(&matmul(), &c, 64);
        assert!(d.iter().any(|x| x.message.contains("exceeds")));
        c[0].cold_lines = 2.0; // < 24-line footprint / tolerance
        let d = audit_program(&matmul(), &c, 64);
        assert!(d.iter().any(|x| x.message.contains("lower bound")));
    }

    #[test]
    fn kernel_count_mismatch_skips() {
        let d = audit_program(&matmul(), &[], 64);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn injective_count_respects_triangular_closure() {
        use polyufc_ir::affine::Bound;
        // for i in 0..8 { for j in 0..=i { C[i][j] } }: j's bound
        // references i and both are selected -> closed, count = 36.
        let mut p = AffineProgram::new("tri");
        let c = p.add_array("C", vec![8, 8], ElemType::F64);
        let k = AffineKernel {
            name: "tri".into(),
            loops: vec![
                Loop::range(8),
                Loop::new(
                    Bound::constant(0),
                    Bound::expr(LinExpr::var(0) + LinExpr::constant(1)),
                ),
            ],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![Access::write(c, vec![LinExpr::var(0), LinExpr::var(1)])],
                flops: 0,
            }],
        };
        let mut ctx = Context::new();
        assert_eq!(
            injective_range_count(&k, &k.statements[0].accesses[0], &mut ctx),
            Some(36)
        );
        // B[j] alone is NOT closed (j's bound references unselected i).
        let b = Access::read(c, vec![LinExpr::var(1), LinExpr::constant(0)]);
        assert_eq!(injective_range_count(&k, &b, &mut ctx), None);
        let _ = p;
    }
}
