//! Race detection for `parallel`-flagged loops: exact dependence relations
//! built from access-map composition and domain intersection, decided by
//! integer emptiness, with sampled witness iteration pairs.
//!
//! A loop at depth `d` of a kernel may run in parallel iff no two distinct
//! iterations that agree on all outer iterators (`i_j = i'_j` for `j < d`)
//! and differ at `d` touch the same array element with at least one write.
//! For every ordered pair of accesses `(p, q)` to the same array the
//! dependence relation is
//!
//! ```text
//! { [i] -> [i'] : i, i' ∈ D,  E_p(i) = E_q(i'),
//!                 i_j = i'_j (j < d),  i_d < i'_d }
//! ```
//!
//! Both orders of every pair are checked, so restricting to `i_d < i'_d`
//! loses nothing; the relation being empty for all pairs *proves* the flag.

use polyufc_ir::affine::{AffineKernel, AffineProgram};
use polyufc_presburger::{
    BasicMap, Context, Emptiness, LinExpr, Result as PresburgerResult, Space,
};

use crate::diag::{Diagnostic, Location, Severity, Witness};

/// Pass identifier.
pub const PASS: &str = "race";

/// Proof that a loop level carries a dependence: two conflicting
/// iteration instances and what they collide on.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// Source iteration vector.
    pub src: Vec<i64>,
    /// Later conflicting iteration vector.
    pub dst: Vec<i64>,
    /// Index of the conflicting array in the program's symbol table.
    pub array: usize,
    /// Statements of the two conflicting accesses.
    pub statements: (String, String),
    /// `"write-write"` or `"read-write"`.
    pub kind: &'static str,
}

/// Decides whether loop `level` of `kernel` carries a loop-carried
/// dependence, returning a concrete witness pair if one exists and `None`
/// if the loop is proven independent.
///
/// Preconditions: the kernel is structurally valid (array arities and
/// subscript depths check out) — run the IR verifier first.
///
/// # Errors
///
/// Propagates Presburger solver errors (budget exhaustion); callers must
/// treat an error as "cannot prove independent".
pub fn carried_dependence(
    kernel: &AffineKernel,
    level: usize,
) -> PresburgerResult<Option<RaceWitness>> {
    carried_dependence_in(kernel, level, &mut Context::new())
}

/// One access pair's dependence relation at a loop level, plus the
/// metadata needed to turn a non-empty relation into a [`RaceWitness`].
struct PairRelation {
    map: BasicMap,
    array: usize,
    statements: (String, String),
    kind: &'static str,
}

/// Builds the dependence relation of every conflicting ordered access
/// pair at `level`, in the deterministic `(p, q)` nesting order the
/// sequential checker used.
fn pair_relations(kernel: &AffineKernel, level: usize) -> PresburgerResult<Vec<PairRelation>> {
    let depth = kernel.depth();
    let dom = kernel.domain();
    let dom_b = &dom.basics()[0];
    // All accesses, flattened with their statement labels.
    let refs: Vec<(&str, &polyufc_ir::affine::Access)> = kernel
        .statements
        .iter()
        .flat_map(|s| s.accesses.iter().map(move |a| (s.name.as_str(), a)))
        .collect();
    let mut out = Vec::new();
    for (sp, p) in &refs {
        for (sq, q) in &refs {
            if p.array != q.array || !(p.is_write || q.is_write) {
                continue;
            }
            // { [i] -> [i'] : E_p(i) = E_q(i') } over the iteration space.
            let mut m = BasicMap::universe(Space::map(0, depth, depth));
            for (e_src, e_dst) in p.indices.iter().zip(&q.indices) {
                m.basic_set_mut()
                    .add_eq(e_dst.shift_vars(0, depth) - e_src.clone());
            }
            let mut m = m.intersect_domain(dom_b)?.intersect_range(dom_b)?;
            // Same outer iterators, strictly later at `level`.
            for j in 0..level {
                m.basic_set_mut()
                    .add_eq(LinExpr::var(j) - LinExpr::var(depth + j));
            }
            m.basic_set_mut()
                .add_ge0(LinExpr::var(depth + level) - LinExpr::var(level) - LinExpr::constant(1));
            out.push(PairRelation {
                map: m,
                array: p.array.0,
                statements: (sp.to_string(), sq.to_string()),
                kind: if p.is_write && q.is_write {
                    "write-write"
                } else {
                    "read-write"
                },
            });
        }
    }
    Ok(out)
}

/// [`carried_dependence`] through a shared batched solver [`Context`]:
/// all access-pair relations of the level are built up front and decided
/// in one emptiness batch over the context's arena, then only the first
/// non-empty relation (in the sequential checker's order) pays for a
/// witness sample.
///
/// # Errors
///
/// Propagates Presburger solver errors; callers must treat an error as
/// "cannot prove independent".
pub fn carried_dependence_in(
    kernel: &AffineKernel,
    level: usize,
    ctx: &mut Context,
) -> PresburgerResult<Option<RaceWitness>> {
    if level >= kernel.depth() {
        return Ok(None);
    }
    let pairs = pair_relations(kernel, level)?;
    // Decide emptiness first: the infeasibility machinery detects
    // contradictory relations (the common, provably-parallel case) in
    // microseconds, whereas a raw integer sample search over an empty set
    // exhausts its budget on large iteration spaces.
    let verdicts = ctx.check_all(pairs.iter().map(|pr| pr.map.as_basic_set()));
    for (pr, verdict) in pairs.iter().zip(verdicts) {
        match verdict {
            Emptiness::Empty => continue,
            Emptiness::Unknown(e) => return Err(e),
            Emptiness::NonEmpty => {}
        }
        if let Some((src, dst)) = pr.map.sample_pair_in(ctx)? {
            return Ok(Some(RaceWitness {
                src,
                dst,
                array: pr.array,
                statements: pr.statements.clone(),
                kind: pr.kind,
            }));
        }
    }
    Ok(None)
}

/// Checks every `parallel`-flagged loop of `kernel`, emitting one error
/// per racy (or unprovable) loop.
pub fn check_kernel(program: &AffineProgram, kernel: &AffineKernel) -> Vec<Diagnostic> {
    check_kernel_in(program, kernel, &mut Context::new())
}

/// [`check_kernel`] through a shared batched solver [`Context`].
pub fn check_kernel_in(
    program: &AffineProgram,
    kernel: &AffineKernel,
    ctx: &mut Context,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (d, l) in kernel.loops.iter().enumerate() {
        if !l.parallel {
            continue;
        }
        match carried_dependence_in(kernel, d, ctx) {
            Ok(None) => {}
            Ok(Some(w)) => {
                let arr = program
                    .array(polyufc_ir::types::ArrayId(w.array))
                    .name
                    .clone();
                out.push(Diagnostic {
                    pass: PASS,
                    severity: Severity::Error,
                    location: Location::kernel(&kernel.name)
                        .loop_index(d)
                        .array(arr.clone()),
                    message: format!(
                        "`parallel` loop carries a {} dependence on `{}` ({} vs {})",
                        w.kind, arr, w.statements.0, w.statements.1
                    ),
                    witness: Some(Witness::IterationPair {
                        src: w.src,
                        dst: w.dst,
                    }),
                });
            }
            Err(e) => out.push(Diagnostic {
                pass: PASS,
                severity: Severity::Error,
                location: Location::kernel(&kernel.name).loop_index(d),
                message: format!("cannot prove `parallel` loop independent (solver: {e})"),
                witness: None,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
    use polyufc_ir::types::ElemType;
    use polyufc_presburger::LinExpr;

    /// matmul: `C[i][j] += A[i][k] * B[k][j]`, 4x4x4.
    fn matmul(parallel_levels: &[usize]) -> (AffineProgram, AffineKernel) {
        let mut p = AffineProgram::new("mm");
        let a = p.add_array("A", vec![4, 4], ElemType::F64);
        let b = p.add_array("B", vec![4, 4], ElemType::F64);
        let c = p.add_array("C", vec![4, 4], ElemType::F64);
        let (i, j, k) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        let mut loops = vec![Loop::range(4), Loop::range(4), Loop::range(4)];
        for &d in parallel_levels {
            loops[d].parallel = true;
        }
        let kern = AffineKernel {
            name: "mm".into(),
            loops,
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![i.clone(), k.clone()]),
                    Access::read(b, vec![k, j.clone()]),
                    Access::read(c, vec![i.clone(), j.clone()]),
                    Access::write(c, vec![i, j]),
                ],
                flops: 2,
            }],
        };
        p.kernels.push(kern.clone());
        (p, kern)
    }

    #[test]
    fn matmul_outer_loops_are_independent() {
        let (_, k) = matmul(&[]);
        assert!(carried_dependence(&k, 0).unwrap().is_none());
        assert!(carried_dependence(&k, 1).unwrap().is_none());
    }

    #[test]
    fn matmul_reduction_loop_races_with_witness() {
        let (_, kern) = matmul(&[]);
        let w = carried_dependence(&kern, 2).unwrap().expect("race on k");
        // The witness is a genuine conflict: same (i, j), different k, and
        // both instances touch C[i][j] with at least one write.
        assert_eq!(w.src[0], w.dst[0]);
        assert_eq!(w.src[1], w.dst[1]);
        assert!(w.src[2] < w.dst[2]);
        assert_eq!(w.array, 2);
    }

    #[test]
    fn check_kernel_flags_only_marked_loops() {
        let (p, kern) = matmul(&[0, 1]);
        assert!(check_kernel(&p, &kern).is_empty());
        let (p, kern) = matmul(&[2]);
        let diags = check_kernel(&p, &kern);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, PASS);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].location.loop_index, Some(2));
        assert!(matches!(
            diags[0].witness,
            Some(Witness::IterationPair { .. })
        ));
    }

    #[test]
    fn stencil_shift_race_is_caught() {
        // for i in 0..8 (parallel): A[i] = A[i+1] — cross-iteration
        // read-write dependence.
        let mut p = AffineProgram::new("shift");
        let a = p.add_array("A", vec![9], ElemType::F64);
        let mut l = Loop::range(8);
        l.parallel = true;
        let kern = AffineKernel {
            name: "shift".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0) + LinExpr::constant(1)]),
                    Access::write(a, vec![LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(kern.clone());
        let w = carried_dependence(&kern, 0).unwrap().expect("race");
        assert_eq!(w.dst[0], w.src[0] + 1);
        assert_eq!(w.kind, "read-write");
    }

    #[test]
    fn disjoint_writes_are_parallel() {
        // for i in 0..8 (parallel): B[i] = A[i] — no conflict.
        let mut p = AffineProgram::new("copy");
        let a = p.add_array("A", vec![8], ElemType::F64);
        let b = p.add_array("B", vec![8], ElemType::F64);
        let mut l = Loop::range(8);
        l.parallel = true;
        let kern = AffineKernel {
            name: "copy".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S0".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 0,
            }],
        };
        p.kernels.push(kern.clone());
        assert!(check_kernel(&p, &kern).is_empty());
    }
}
