//! Source-level concurrency self-lint for the serving stack.
//!
//! The compiler lints *programs*; this pass lints the daemon's own
//! sources for the concurrency conventions the `chk` crate enforces
//! dynamically. It is deliberately token-level (no Rust parser in the
//! workspace): files are scanned line by line with comments and string
//! literals blanked out, so a mention of `Mutex` in a doc comment never
//! trips a rule. Four passes:
//!
//! * **`chk-signal-safety`** — a function annotated `// chk:signal-handler`
//!   runs in async-signal context: only async-signal-safe work is
//!   allowed (atomic stores, raw `write(2)`/`raise(2)`). Allocation,
//!   formatting, locking, and panicking are errors.
//! * **`chk-eintr-loop`** — a raw syscall (`read(`, `write(`,
//!   `epoll_wait(`, declared via `extern "C"`, not the `std::io` traits)
//!   outside a signal handler must sit in a function that handles
//!   `ErrorKind::Interrupted`: under the BSD `signal()` semantics the
//!   daemon installs, syscalls do not auto-restart, and one signal
//!   landing mid-call would otherwise surface a spurious error.
//! * **`chk-reactor-blocking`** — a function annotated
//!   `// chk:reactor-thread` is the event loop: it must never block on
//!   anything but its own `epoll_wait`. Sleeps, joins, blocking channel
//!   receives, and blocking flight waits are errors.
//! * **`chk-lockdep`** — files adopted by the lock-order detector must
//!   not construct bare `std::sync::Mutex`/`Condvar`: a bare lock is
//!   invisible to lockdep, so a cycle through it would go unreported.
//!
//! A finding can be acknowledged in place with
//! `// chk-allow(<pass>): <reason>` on the same or the preceding line;
//! an allowed finding is downgraded to `Info` (recorded, not gating).

use crate::diag::{AnalysisReport, Diagnostic, Location, Severity};

/// One source file to lint: repo-relative path plus full text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, e.g. `crates/serve/src/reactor.rs`.
    pub path: String,
    /// Full file contents.
    pub text: String,
}

impl SourceFile {
    /// Convenience constructor.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }
}

/// Marker comment opening an async-signal-handler region (attaches to
/// the next `fn`).
pub const MARK_SIGNAL_HANDLER: &str = "chk:signal-handler";
/// Marker comment opening a reactor-thread region (attaches to the next
/// `fn`).
pub const MARK_REACTOR_THREAD: &str = "chk:reactor-thread";

/// Tokens that are not async-signal-safe: anything that may allocate,
/// format, lock, unwind, or touch buffered stdio.
const SIGNAL_UNSAFE: &[&str] = &[
    "println!",
    "eprintln!",
    "print!",
    "eprint!",
    "format!",
    "panic!",
    "String::",
    "Vec::",
    "Box::new",
    "to_string",
    "to_owned",
    ".lock()",
    "Mutex",
    "Condvar",
    "std::io::",
    ".unwrap()",
    ".expect(",
];

/// Calls that park or sleep the calling thread; none may run on the
/// reactor thread (its only legal park is its own `epoll_wait`).
const REACTOR_BLOCKING: &[&str] = &[
    "thread::sleep",
    ".join()",
    ".wait()",
    ".recv()",
    "wait_timeout",
    "handle_line(",
];

/// Raw syscalls the daemon declares via `extern "C"`; each call site
/// must live in an EINTR-restarting function.
const RAW_SYSCALLS: &[&str] = &["read(", "write(", "epoll_wait("];

/// A contiguous function region `[start_line, end_line]` (1-based,
/// inclusive) opened by a marker comment.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
}

/// Lints the given sources and returns one combined report (program
/// name `self`). Diagnostics are ordered file-then-line.
pub fn lint_sources(files: &[SourceFile]) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    for f in files {
        lint_file(f, &mut diagnostics);
    }
    AnalysisReport {
        program: "self".to_string(),
        diagnostics,
        stats: Default::default(),
    }
}

fn lint_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let raw_lines: Vec<&str> = file.text.lines().collect();
    let code_lines = strip_comments_and_strings(&raw_lines);

    let handler_regions = marked_regions(&raw_lines, &code_lines, MARK_SIGNAL_HANDLER);
    let reactor_regions = marked_regions(&raw_lines, &code_lines, MARK_REACTOR_THREAD);
    let fn_regions = all_fn_regions(&code_lines);

    let mut findings = Vec::new();

    // Pass 1: async-signal safety inside handler-marked regions.
    for r in &handler_regions {
        for ln in r.start..=r.end {
            let code = &code_lines[ln - 1];
            for tok in SIGNAL_UNSAFE {
                if has_token(code, tok) {
                    findings.push((
                        "chk-signal-safety",
                        ln,
                        format!(
                            "`{tok}` inside a signal handler: only async-signal-safe \
                             work (atomic stores, raw write(2)/raise(2)) is allowed here"
                        ),
                    ));
                }
            }
        }
    }

    // Pass 2: raw syscalls outside handler regions need EINTR restarts.
    for (ln, code) in code_lines.iter().enumerate().map(|(i, c)| (i + 1, c)) {
        if in_any(ln, &handler_regions) {
            continue; // governed by the signal-safety pass instead
        }
        for sys in RAW_SYSCALLS {
            if !has_bare_call(code, sys) {
                continue;
            }
            let enclosing = fn_regions.iter().find(|r| ln >= r.start && ln <= r.end);
            let restarts = enclosing.is_some_and(|r| {
                (r.start..=r.end).any(|l| code_lines[l - 1].contains("Interrupted"))
            });
            if !restarts {
                let name = sys.trim_end_matches('(');
                findings.push((
                    "chk-eintr-loop",
                    ln,
                    format!(
                        "raw `{name}(2)` call in a function with no \
                         `ErrorKind::Interrupted` restart: signals do not auto-restart \
                         syscalls under the daemon's `signal()` semantics"
                    ),
                ));
            }
        }
    }

    // Pass 3: the reactor thread must not block.
    for r in &reactor_regions {
        for ln in r.start..=r.end {
            let code = &code_lines[ln - 1];
            for tok in REACTOR_BLOCKING {
                if has_token(code, tok) {
                    findings.push((
                        "chk-reactor-blocking",
                        ln,
                        format!(
                            "`{tok}` on the reactor thread: the event loop may only \
                             park in its own epoll_wait"
                        ),
                    ));
                }
            }
        }
    }

    // Pass 4: lockdep-adopted files must not construct bare std locks.
    for (ln, code) in code_lines.iter().enumerate().map(|(i, c)| (i + 1, c)) {
        for tok in ["std::sync::Mutex", "std::sync::Condvar"] {
            if code.contains(tok) {
                findings.push((
                    "chk-lockdep",
                    ln,
                    format!("`{tok}` in a lockdep-adopted file: use the chk wrapper"),
                ));
            }
        }
        for (bare, wrapper) in [
            ("Mutex::new(", "OrderedMutex"),
            ("Condvar::new(", "OrderedCondvar"),
        ] {
            for pos in match_positions(code, bare) {
                // `OrderedMutex::new(` contains `Mutex::new(`; only the
                // bare constructor is a finding.
                if !preceded_by(code, pos, "Ordered") {
                    findings.push((
                        "chk-lockdep",
                        ln,
                        format!(
                            "bare `{bare}..)` in a lockdep-adopted file: use \
                             `{wrapper}::new(\"<site>\", ..)` so the lock-order \
                             detector sees it"
                        ),
                    ));
                }
            }
        }
    }

    findings.sort_by_key(|&(_, ln, _)| ln);
    for (pass, ln, message) in findings {
        let allow = allow_reason(&raw_lines, ln, pass);
        let (severity, message) = match allow {
            Some(reason) => (Severity::Info, format!("{message} (allowed: {reason})")),
            None => (Severity::Error, message),
        };
        out.push(Diagnostic {
            pass,
            severity,
            location: Location::source(file.path.clone(), ln),
            message,
            witness: None,
        });
    }
}

/// The `chk-allow(<pass>): reason` directive on this line or the one
/// above, if present.
fn allow_reason(raw_lines: &[&str], line: usize, pass: &str) -> Option<String> {
    let needle = format!("chk-allow({pass})");
    for ln in [Some(line), line.checked_sub(1)].into_iter().flatten() {
        if ln == 0 || ln > raw_lines.len() {
            continue;
        }
        let raw = raw_lines[ln - 1];
        if let Some(pos) = raw.find(&needle) {
            let rest = &raw[pos + needle.len()..];
            let reason = rest.trim_start_matches(':').trim();
            return Some(if reason.is_empty() {
                "unspecified".to_string()
            } else {
                reason.to_string()
            });
        }
    }
    None
}

fn in_any(line: usize, regions: &[Region]) -> bool {
    regions.iter().any(|r| line >= r.start && line <= r.end)
}

/// Byte offsets of every occurrence of `needle` in `hay`.
fn match_positions(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        out.push(from + i);
        from += i + needle.len();
    }
    out
}

fn preceded_by(hay: &str, pos: usize, prefix: &str) -> bool {
    pos >= prefix.len() && hay[..pos].ends_with(prefix)
}

/// Whether `code` calls `sys` as a bare (non-method, non-suffixed)
/// identifier: the previous character must not be part of a path,
/// method chain, or longer identifier.
fn has_bare_call(code: &str, sys: &str) -> bool {
    match_positions(code, sys).iter().any(|&pos| {
        // `fn write(...)` is the extern "C" declaration, not a call.
        if preceded_by(code, pos, "fn ") {
            return false;
        }
        pos == 0
            || !matches!(
                code.as_bytes()[pos - 1],
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b':'
            )
    })
}

/// Whether `code` contains `tok` starting at an identifier boundary
/// (so `println!` does not match inside `eprintln!`). Tokens opening
/// with a non-identifier byte (`.lock()`) match anywhere.
fn has_token(code: &str, tok: &str) -> bool {
    let ident_start = tok
        .as_bytes()
        .first()
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
    match_positions(code, tok).iter().any(|&pos| {
        !ident_start
            || pos == 0
            || !matches!(
                code.as_bytes()[pos - 1],
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_'
            )
    })
}

/// Regions opened by `marker` comments: each marker attaches to the next
/// line containing `fn` and spans to that function's closing brace.
fn marked_regions(raw_lines: &[&str], code_lines: &[String], marker: &str) -> Vec<Region> {
    let mut out = Vec::new();
    for (i, raw) in raw_lines.iter().enumerate() {
        if !raw.contains(marker) || raw.contains("chk-allow") {
            continue;
        }
        // Find the next fn line at or after the marker.
        let Some(fn_idx) = (i..code_lines.len()).find(|&j| is_fn_line(&code_lines[j])) else {
            continue;
        };
        if let Some(end) = brace_span_end(code_lines, fn_idx) {
            out.push(Region {
                start: fn_idx + 1,
                end: end + 1,
            });
        }
    }
    out
}

/// Every function region in the file, for "enclosing fn" queries.
fn all_fn_regions(code_lines: &[String]) -> Vec<Region> {
    let mut out = Vec::new();
    for i in 0..code_lines.len() {
        if is_fn_line(&code_lines[i]) {
            if let Some(end) = brace_span_end(code_lines, i) {
                out.push(Region {
                    start: i + 1,
                    end: end + 1,
                });
            }
        }
    }
    out
}

fn is_fn_line(code: &str) -> bool {
    match_positions(code, "fn ").iter().any(|&pos| {
        pos == 0
            || !matches!(
                code.as_bytes()[pos - 1],
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_'
            )
    })
}

/// The (0-based) line index of the brace closing the block opened at or
/// after `start`, by brace counting over comment/string-stripped code.
fn brace_span_end(code_lines: &[String], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut opened = false;
    for (j, code) in code_lines.iter().enumerate().skip(start) {
        for b in code.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    opened = true;
                }
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(j);
        }
        // A declaration-only line (`extern` block item, trait method)
        // that hits `;` before any `{` has no body to span.
        if !opened && code.contains(';') {
            return None;
        }
    }
    None
}

/// Line-by-line copy of the file with comments and string/char literals
/// blanked, preserving line count and byte offsets within each line.
/// Block comments spanning lines are handled; raw strings are treated as
/// normal strings (good enough for the daemon's sources, which have
/// none).
fn strip_comments_and_strings(raw_lines: &[&str]) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Code,
        Block,
        Str,
        Char,
    }
    let mut st = St::Code;
    let mut out = Vec::with_capacity(raw_lines.len());
    for raw in raw_lines {
        let bytes = raw.as_bytes();
        let mut line = vec![b' '; bytes.len()];
        let mut i = 0;
        while i < bytes.len() {
            match st {
                St::Code => match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => break, // rest is comment
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        st = St::Block;
                        i += 2;
                    }
                    b'"' => {
                        st = St::Str;
                        i += 1;
                    }
                    // A char literal (not a lifetime): 'x' or '\n'.
                    b'\''
                        if bytes.get(i + 2) == Some(&b'\'')
                            || (bytes.get(i + 1) == Some(&b'\\')) =>
                    {
                        st = St::Char;
                        i += 1;
                    }
                    b => {
                        line[i] = b;
                        i += 1;
                    }
                },
                St::Block => {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        st = St::Code;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        st = St::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
                St::Char => match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => {
                        st = St::Code;
                        i += 1;
                    }
                    _ => i += 1,
                },
            }
        }
        // Strings and chars never span lines in these sources; a
        // still-open literal at EOL is closed (multiline strings would
        // need raw-string tracking the daemon doesn't require).
        if st == St::Str || st == St::Char {
            st = St::Code;
        }
        out.push(String::from_utf8(line).expect("ascii blanks of a utf-8 line"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, text: &str) -> AnalysisReport {
        lint_sources(&[SourceFile::new(path, text)])
    }

    #[test]
    fn signal_handler_region_rejects_unsafe_tokens() {
        let src = r#"
// chk:signal-handler
extern "C" fn on_signal(_sig: i32) {
    FLAG.store(true, Ordering::SeqCst);
    eprintln!("caught"); // not async-signal-safe
}

fn elsewhere() {
    eprintln!("fine outside the handler");
}
"#;
        let r = lint_one("x.rs", src);
        let errs: Vec<_> = r.at_least(Severity::Error).collect();
        assert_eq!(errs.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(errs[0].pass, "chk-signal-safety");
        assert_eq!(errs[0].location.line, Some(5));
    }

    #[test]
    fn raw_syscall_without_eintr_restart_is_flagged() {
        let src = r#"
fn leaky(fd: i32) -> isize {
    unsafe { write(fd, core::ptr::null(), 0) }
}

fn restarting(fd: i32) {
    loop {
        let n = unsafe { write(fd, core::ptr::null(), 0) };
        if n >= 0 || std::io::Error::last_os_error().kind() != ErrorKind::Interrupted {
            return;
        }
    }
}
"#;
        let r = lint_one("x.rs", src);
        let errs: Vec<_> = r.at_least(Severity::Error).collect();
        assert_eq!(errs.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(errs[0].pass, "chk-eintr-loop");
        assert_eq!(errs[0].location.line, Some(3));
    }

    #[test]
    fn method_reads_and_writes_are_not_raw_syscalls() {
        let src = r#"
fn wrapped(s: &mut TcpStream, buf: &mut [u8]) {
    let _ = s.read(buf);
    let _ = s.write(buf);
    let _ = io::Write::write(s, buf);
}
"#;
        let r = lint_one("x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn reactor_region_rejects_blocking_calls() {
        let src = r#"
// chk:reactor-thread
fn event_loop(rx: &Receiver<u8>) {
    loop {
        let _ = rx.recv();
    }
}
"#;
        let r = lint_one("x.rs", src);
        let errs: Vec<_> = r.at_least(Severity::Error).collect();
        assert_eq!(errs.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(errs[0].pass, "chk-reactor-blocking");
    }

    #[test]
    fn bare_std_locks_are_flagged_but_wrappers_pass() {
        let src = r#"
use std::sync::Mutex;
fn build() {
    let _a = Mutex::new(0);
    let _b = OrderedMutex::new("site", 0);
    let _c = OrderedCondvar::new("site");
}
"#;
        let r = lint_one("x.rs", src);
        let errs: Vec<_> = r.at_least(Severity::Error).collect();
        assert_eq!(errs.len(), 2, "{:?}", r.diagnostics);
        assert!(errs.iter().all(|d| d.pass == "chk-lockdep"));
        assert_eq!(errs[0].location.line, Some(2)); // the import
        assert_eq!(errs[1].location.line, Some(4)); // the bare constructor
    }

    #[test]
    fn chk_allow_downgrades_to_info_with_reason() {
        let src = r#"
fn one_shot(fd: i32) {
    // chk-allow(chk-eintr-loop): best-effort single write; caller retries
    unsafe { write(fd, core::ptr::null(), 0) };
}
"#;
        let r = lint_one("x.rs", src);
        assert!(
            r.at_least(Severity::Error).next().is_none(),
            "{:?}",
            r.diagnostics
        );
        let info: Vec<_> = r.diagnostics.iter().collect();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].severity, Severity::Info);
        assert!(info[0].message.contains("best-effort single write"));
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = r#"
//! One big `Mutex` guarded the map; see std::sync::Mutex docs.
/* Mutex::new( in a block comment */
fn messages() {
    let _s = "std::sync::Mutex and Mutex::new( in a string";
}
"#;
        let r = lint_one("x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn diagnostics_carry_file_and_line_into_json() {
        let src = "use std::sync::Mutex;\n";
        let r = lint_one("crates/x/src/lib.rs", src);
        let j = r.to_json();
        assert!(j.contains("\"file\": \"crates/x/src/lib.rs\""), "{j}");
        assert!(j.contains("\"line\": 1"), "{j}");
        let text = r.render_text();
        assert!(text.contains("crates/x/src/lib.rs:1"), "{text}");
    }
}
