//! Structured diagnostics: severity, pass id, location, message, and an
//! optional concrete witness, with text and JSON renderings shared by the
//! `polyufc lint` CLI and the pipeline's verify gate.

use std::fmt;

/// How bad a finding is. Ordering is by badness: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Non-actionable note (e.g. a skipped audit check).
    Info,
    /// Suspicious but not unsound (e.g. an unused array).
    Warning,
    /// A proven or unprovable-safety violation; compilation must not
    /// trust the program.
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the program a diagnostic points. All fields optional: a
/// program-level lint (unused array) has no kernel, a kernel-level one no
/// statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Kernel name.
    pub kernel: Option<String>,
    /// Statement label within the kernel.
    pub statement: Option<String>,
    /// Loop depth index (0 = outermost).
    pub loop_index: Option<usize>,
    /// Array name.
    pub array: Option<String>,
    /// Source file path (used by source-level passes like the self-lint).
    pub file: Option<String>,
    /// 1-based source line within `file`.
    pub line: Option<usize>,
}

impl Location {
    /// A kernel-level location.
    pub fn kernel(name: impl Into<String>) -> Self {
        Location {
            kernel: Some(name.into()),
            ..Location::default()
        }
    }

    /// Adds a statement label.
    pub fn statement(mut self, name: impl Into<String>) -> Self {
        self.statement = Some(name.into());
        self
    }

    /// Adds a loop index.
    pub fn loop_index(mut self, d: usize) -> Self {
        self.loop_index = Some(d);
        self
    }

    /// Adds an array name.
    pub fn array(mut self, name: impl Into<String>) -> Self {
        self.array = Some(name.into());
        self
    }

    /// A source-file location (1-based line), for source-level passes.
    pub fn source(file: impl Into<String>, line: usize) -> Self {
        Location {
            file: Some(file.into()),
            line: Some(line),
            ..Location::default()
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(k) = &self.kernel {
            parts.push(format!("kernel `{k}`"));
        }
        if let Some(s) = &self.statement {
            parts.push(format!("statement `{s}`"));
        }
        if let Some(d) = self.loop_index {
            parts.push(format!("loop %i{d}"));
        }
        if let Some(a) = &self.array {
            parts.push(format!("array `{a}`"));
        }
        if let Some(file) = &self.file {
            match self.line {
                Some(line) => parts.push(format!("{file}:{line}")),
                None => parts.push(file.clone()),
            }
        }
        if parts.is_empty() {
            f.write_str("program")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// Concrete evidence attached to a diagnostic: the solver's sampled point
/// rather than a mere emptiness verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// Two iteration vectors proving a loop-carried dependence: the
    /// conflict happens between instance `src` and later instance `dst`.
    IterationPair {
        /// Source iteration.
        src: Vec<i64>,
        /// Conflicting later iteration.
        dst: Vec<i64>,
    },
    /// An iteration whose subscript leaves the array shape in one
    /// dimension.
    Point {
        /// The violating iteration vector.
        iters: Vec<i64>,
        /// Which array dimension overflows.
        dim: usize,
        /// Value of the subscript at `iters`.
        index_value: i64,
    },
}

fn vec_fmt(v: &[i64]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", inner.join(", "))
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::IterationPair { src, dst } => {
                write!(f, "iterations {} -> {}", vec_fmt(src), vec_fmt(dst))
            }
            Witness::Point {
                iters,
                dim,
                index_value,
            } => write!(
                f,
                "iteration {}, subscript {} in dim {}",
                vec_fmt(iters),
                index_value,
                dim
            ),
        }
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable pass identifier (`race`, `bounds`, `ir-verify`,
    /// `model-audit`).
    pub pass: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Program location.
    pub location: Location,
    /// Human-readable description.
    pub message: String,
    /// Concrete evidence, when the pass can produce one.
    pub witness: Option<Witness>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.pass, self.location, self.message
        )?;
        if let Some(w) = &self.witness {
            write!(f, " — witness {w}")?;
        }
        Ok(())
    }
}

/// Solver-level accounting for one analyzer run: how the batched
/// Presburger [`Context`](polyufc_presburger::Context) was exercised and
/// how long each pass took. Feeds the pipeline's `CompileReport` and the
/// `lint_sweep --per-pass` breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Emptiness batches issued through the shared context.
    pub emptiness_batches: u64,
    /// Individual emptiness checks issued (across all batches).
    pub emptiness_checks: u64,
    /// High-water mark of the solver arena, in bytes.
    pub peak_arena_bytes: usize,
    /// Wall-clock microseconds in the structural verify pass.
    pub verify_us: u64,
    /// Wall-clock microseconds in the bounds pass.
    pub bounds_us: u64,
    /// Wall-clock microseconds in the race pass.
    pub races_us: u64,
    /// Wall-clock microseconds in the model-audit pass.
    pub audit_us: u64,
}

/// The result of analyzing one program: every finding of every pass that
/// ran, in deterministic pass-then-program order.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Name of the analyzed program.
    pub program: String,
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Solver accounting and per-pass timings for this run.
    pub stats: AnalysisStats,
}

impl AnalysisReport {
    /// The worst severity present, or `None` if there are no findings.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Whether the program is clean: no warnings and no errors (infos are
    /// allowed — they record skipped checks, not findings).
    pub fn is_clean(&self) -> bool {
        self.max_severity().is_none_or(|s| s < Severity::Warning)
    }

    /// Findings at or above a severity.
    pub fn at_least(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity >= s)
    }

    /// Human-readable multi-line rendering with a trailing summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        let (mut ne, mut nw, mut ni) = (0usize, 0usize, 0usize);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => ne += 1,
                Severity::Warning => nw += 1,
                Severity::Info => ni += 1,
            }
        }
        out.push_str(&format!(
            "`{}`: {} error(s), {} warning(s), {} info(s)\n",
            self.program, ne, nw, ni
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled: the offline serde
    /// stand-in has no serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"polyufc-lint/1\",\n");
        out.push_str(&format!(
            "  \"program\": \"{}\",\n",
            json_escape(&self.program)
        ));
        out.push_str(&format!(
            "  \"max_severity\": {},\n",
            match self.max_severity() {
                Some(s) => format!("\"{}\"", s.as_str()),
                None => "null".to_string(),
            }
        ));
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("    {}{}\n", diag_json(d), comma));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn diag_json(d: &Diagnostic) -> String {
    let mut fields = vec![
        format!("\"pass\": \"{}\"", d.pass),
        format!("\"severity\": \"{}\"", d.severity.as_str()),
    ];
    if let Some(k) = &d.location.kernel {
        fields.push(format!("\"kernel\": \"{}\"", json_escape(k)));
    }
    if let Some(s) = &d.location.statement {
        fields.push(format!("\"statement\": \"{}\"", json_escape(s)));
    }
    if let Some(l) = d.location.loop_index {
        fields.push(format!("\"loop\": {l}"));
    }
    if let Some(a) = &d.location.array {
        fields.push(format!("\"array\": \"{}\"", json_escape(a)));
    }
    if let Some(file) = &d.location.file {
        fields.push(format!("\"file\": \"{}\"", json_escape(file)));
    }
    if let Some(line) = d.location.line {
        fields.push(format!("\"line\": {line}"));
    }
    fields.push(format!("\"message\": \"{}\"", json_escape(&d.message)));
    match &d.witness {
        Some(Witness::IterationPair { src, dst }) => fields.push(format!(
            "\"witness\": {{\"kind\": \"iteration-pair\", \"src\": {}, \"dst\": {}}}",
            json_vec(src),
            json_vec(dst)
        )),
        Some(Witness::Point {
            iters,
            dim,
            index_value,
        }) => fields.push(format!(
            "\"witness\": {{\"kind\": \"point\", \"iters\": {}, \"dim\": {dim}, \"index\": {index_value}}}",
            json_vec(iters)
        )),
        None => {}
    }
    format!("{{{}}}", fields.join(", "))
}

fn json_vec(v: &[i64]) -> String {
    let inner: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", inner.join(", "))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_summaries() {
        let mut r = AnalysisReport {
            program: "p".into(),
            diagnostics: vec![],
            stats: AnalysisStats::default(),
        };
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        r.diagnostics.push(Diagnostic {
            pass: "ir-verify",
            severity: Severity::Info,
            location: Location::default(),
            message: "note".into(),
            witness: None,
        });
        assert!(r.is_clean());
        r.diagnostics.push(Diagnostic {
            pass: "race",
            severity: Severity::Error,
            location: Location::kernel("k").loop_index(1),
            message: "conflict".into(),
            witness: Some(Witness::IterationPair {
                src: vec![0, 0],
                dst: vec![0, 1],
            }),
        });
        assert!(!r.is_clean());
        assert!(r.has_errors());
        let text = r.render_text();
        assert!(text.contains("error[race] kernel `k`, loop %i1"));
        assert!(text.contains("witness iterations (0, 0) -> (0, 1)"));
        assert!(text.contains("1 error(s), 0 warning(s), 1 info(s)"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = AnalysisReport {
            program: "q\"uote".into(),
            diagnostics: vec![Diagnostic {
                pass: "bounds",
                severity: Severity::Error,
                location: Location::kernel("k").statement("S0").array("A"),
                message: "out of bounds".into(),
                witness: Some(Witness::Point {
                    iters: vec![15],
                    dim: 0,
                    index_value: 16,
                }),
            }],
            stats: AnalysisStats::default(),
        };
        let j = r.to_json();
        assert!(j.contains("\"program\": \"q\\\"uote\""));
        assert!(j.contains("\"max_severity\": \"error\""));
        assert!(j.contains(
            "\"witness\": {\"kind\": \"point\", \"iters\": [15], \"dim\": 0, \"index\": 16}"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
