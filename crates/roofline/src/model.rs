//! The calibrated roofline model: performance and power constants of
//! Table I, obtained by one-time microbenchmarking of a platform.

use polyufc_machine::ExecutionEngine;
use serde::{Deserialize, Serialize};

use crate::fit::{linear_fit, reciprocal_fit};
use crate::microbench::{flop_microbench, llc_chase, pointer_chase, stream_microbench};

/// Measured roofline constants of one platform (paper Table I).
///
/// All quantities parameterized by the uncore frequency are stored both as
/// a measured table and as the fitted curve the paper uses (`a/f + b` for
/// time, `α·f + γ` for power).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Platform name.
    pub platform: String,
    /// Measured peak compute, flops/s, all cores (`1/t_FPU` aggregated).
    pub peak_flops: f64,
    /// Measured single-thread peak compute, flops/s.
    pub peak_flops_1t: f64,
    /// Measured achievable DRAM bandwidth per uncore frequency:
    /// `(f_ghz, bytes/s)` ascending.
    pub bw_table: Vec<(f64, f64)>,
    /// Constant power `p_con` (W), from the activity-regression intercept.
    pub p_con: f64,
    /// Energy per flop `e_FPU` (J).
    pub e_fpu: f64,
    /// Peak power per unit compute `p̂_FPU` (W at full FPU utilization,
    /// beyond `p_con`).
    pub p_hat_fpu: f64,
    /// Linear fit `P̂_DRAM(f) = α·f + γ` of peak memory-subsystem power
    /// (W) during streaming.
    pub p_dram_fit: (f64, f64),
    /// Reciprocal fit of the DRAM miss penalty `M^t(f) = a/f + b`
    /// (seconds per serialized miss).
    pub miss_t_fit: (f64, f64),
    /// Linear fit of the per-byte memory power `M^p(f) = α·f + γ`
    /// (J per byte moved at frequency `f`).
    pub miss_p_fit: (f64, f64),
    /// Reciprocal fit of the LLC hit latency `H_LLC(f) = a/f + b`
    /// (seconds per serialized LLC hit).
    pub llc_t_fit: (f64, f64),
    /// Linear fit of the uncore power with no memory activity
    /// (`P_uncore_idle(f) = α·f + γ`, W) — the background cost of an
    /// over-provisioned uncore, which is what capping saves on CB kernels.
    pub uncore_idle_fit: (f64, f64),
}

impl RooflineModel {
    /// [`RooflineModel::calibrate`] with a process-wide cache.
    ///
    /// Calibration is a pure function of the engine (platform constants +
    /// noise amplitude; the noise stream itself is deterministic per
    /// kernel×frequency), so sweeps that construct many pipelines for the
    /// same platform can share one calibration instead of re-running the
    /// microbenchmarks every time. The cache key is the engine's full
    /// `Debug` fingerprint plus the noise bits, so distinct platform
    /// configurations never collide.
    pub fn calibrate_cached(engine: &ExecutionEngine) -> RooflineModel {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};

        static CACHE: OnceLock<Mutex<HashMap<String, RooflineModel>>> = OnceLock::new();
        let key = format!("{:?}#noise={:x}", engine.platform, engine.noise.to_bits());
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(m) = cache.lock().unwrap().get(&key) {
            return m.clone();
        }
        // Calibrate outside the lock: it takes milliseconds and parallel
        // sweeps must not serialize behind one another. A racing thread
        // computes the same (deterministic) model; last insert wins.
        let model = RooflineModel::calibrate(engine);
        cache.lock().unwrap().insert(key, model.clone());
        model
    }

    /// One-time microbenchmark calibration against a machine (paper
    /// footnote 3: both rooflines come from our own microbenchmarking).
    pub fn calibrate(engine: &ExecutionEngine) -> RooflineModel {
        // Calibration is a trusted-measurement path: running the
        // microbenchmarks through an injected fault plan would bake the
        // faults into every constant the compiler later predicts with.
        // Strip the plan; the caller's faults apply to *runs*, not to
        // the one-time roofline fits.
        let engine = &engine.sanitized();
        let plat = &engine.platform;
        let line = plat.hierarchy.line_bytes();
        let fmax = plat.uncore_max_ghz;

        // Peak compute: flop-only microbenchmark (uncore-independent).
        let fl = flop_microbench(2_000_000_000, line);
        let r = engine.run_kernel(&fl, fmax);
        let peak_flops = fl.flops as f64 / r.time_s;
        let mut fl1 = fl.clone();
        fl1.parallel = false;
        let r1 = engine.run_kernel(&fl1, fmax);
        let peak_flops_1t = fl1.flops as f64 / r1.time_s;

        // Bandwidth table over the whole uncore range.
        let stream = stream_microbench(2u64 << 30, line);
        let mut bw_table = Vec::new();
        for f in plat.uncore_freqs() {
            let r = engine.run_kernel(&stream, f);
            bw_table.push((f, (2u64 << 30) as f64 / r.time_s));
        }

        // Power constants. The flop-only run separates compute power; the
        // stream run separates memory-subsystem power.
        // p_con: intercept of package power vs. utilization — approximated
        // by the non-compute, non-uncore share of a compute-only run.
        let p_comp_run = engine.run_kernel(&fl, plat.uncore_min_ghz);
        let p_con = p_comp_run.energy.static_j / p_comp_run.time_s;
        let e_fpu = p_comp_run.energy.core_j / fl.flops as f64;
        let p_hat_fpu = p_comp_run.energy.core_j / p_comp_run.time_s;

        // P̂_DRAM(f): uncore + DRAM power while streaming, per frequency.
        let mut fs = Vec::new();
        let mut pmem = Vec::new();
        let mut pbyte = Vec::new();
        for f in plat.uncore_freqs() {
            let r = engine.run_kernel(&stream, f);
            let pw = (r.energy.uncore_j + r.energy.dram_j) / r.time_s;
            fs.push(f);
            pmem.push(pw);
            let bytes = stream.dram_bytes();
            pbyte.push((r.energy.uncore_j + r.energy.dram_j) / bytes);
        }
        let p_dram_fit = {
            let (a, g) = linear_fit(&fs, &pmem);
            (a, g)
        };
        let miss_p_fit = linear_fit(&fs, &pbyte);

        // M^t(f): serialized pointer chase, seconds per miss.
        let chase = pointer_chase(2_000_000, line);
        let mut penalties = Vec::new();
        for &f in &fs {
            let r = engine.run_kernel(&chase, f);
            penalties.push(r.time_s / chase.dram_fills as f64);
        }
        let miss_t_fit = reciprocal_fit(&fs, &penalties);

        // H_LLC(f): LLC-resident chase.
        let lchase = llc_chase(4_000_000, line);
        let mut lat = Vec::new();
        for &f in &fs {
            let r = engine.run_kernel(&lchase, f);
            lat.push(r.time_s / 4_000_000.0);
        }
        let llc_t_fit = reciprocal_fit(&fs, &lat);

        // Uncore idle power vs f: package uncore power during a flop-only
        // run (no memory activity).
        let mut p_idle = Vec::new();
        for &f in &fs {
            let r = engine.run_kernel(&fl, f);
            p_idle.push(r.energy.uncore_j / r.time_s);
        }
        let uncore_idle_fit = linear_fit(&fs, &p_idle);

        RooflineModel {
            platform: plat.name.clone(),
            peak_flops,
            peak_flops_1t,
            bw_table,
            p_con,
            e_fpu,
            p_hat_fpu,
            p_dram_fit,
            miss_t_fit,
            miss_p_fit,
            llc_t_fit,
            uncore_idle_fit,
        }
    }

    /// Achievable bandwidth at an uncore frequency (linear interpolation
    /// of the measured table), bytes/s.
    pub fn bandwidth(&self, f_ghz: f64) -> f64 {
        let t = &self.bw_table;
        if f_ghz <= t[0].0 {
            return t[0].1;
        }
        for w in t.windows(2) {
            if f_ghz <= w[1].0 {
                let frac = (f_ghz - w[0].0) / (w[1].0 - w[0].0);
                return w[0].1 + frac * (w[1].1 - w[0].1);
            }
        }
        t.last().unwrap().1
    }

    /// The time machine balance `B^t_DRAM(f) = peak_flops / BW(f)` in
    /// flops per byte. A kernel with `OI >= B^t` is compute-bound at `f`.
    pub fn time_balance(&self, f_ghz: f64) -> f64 {
        self.peak_flops / self.bandwidth(f_ghz)
    }

    /// `t_FPU` (seconds per flop, all cores).
    pub fn t_fpu(&self) -> f64 {
        1.0 / self.peak_flops
    }

    /// DRAM miss penalty `M^t(f) = a/f + b`, seconds.
    pub fn miss_penalty_t(&self, f_ghz: f64) -> f64 {
        self.miss_t_fit.0 / f_ghz + self.miss_t_fit.1
    }

    /// LLC hit latency `H_LLC(f) = a/f + b`, seconds (serialized).
    pub fn llc_hit_latency(&self, f_ghz: f64) -> f64 {
        self.llc_t_fit.0 / f_ghz + self.llc_t_fit.1
    }

    /// Per-byte memory power `M^p(f) = α·f + γ`, joules per byte.
    pub fn miss_penalty_p(&self, f_ghz: f64) -> f64 {
        self.miss_p_fit.0 * f_ghz + self.miss_p_fit.1
    }

    /// Idle uncore power `P_uncore_idle(f) = α·f + γ`, watts.
    pub fn uncore_idle(&self, f_ghz: f64) -> f64 {
        self.uncore_idle_fit.0 * f_ghz + self.uncore_idle_fit.1
    }

    /// Peak memory-subsystem power at `f`, watts (`P̂_DRAM(f)`).
    pub fn p_dram_hat(&self, f_ghz: f64) -> f64 {
        self.p_dram_fit.0 * f_ghz + self.p_dram_fit.1
    }

    /// Whether an operational intensity is compute-bound at frequency `f`
    /// (Sec. IV-D: `I >= B^t_DRAM`).
    pub fn is_compute_bound(&self, oi: f64, f_ghz: f64) -> bool {
        oi >= self.time_balance(f_ghz)
    }

    /// Attainable performance at intensity `oi` and frequency `f`
    /// (the classic roofline `min(peak, oi · BW(f))`), flops/s.
    pub fn attainable(&self, oi: f64, f_ghz: f64) -> f64 {
        (oi * self.bandwidth(f_ghz)).min(self.peak_flops)
    }

    /// The calibration frequencies (from the bandwidth table).
    pub fn frequencies(&self) -> Vec<f64> {
        self.bw_table.iter().map(|&(f, _)| f).collect()
    }

    /// The *energy balance* `B^e_DRAM(f)` in flops per byte: the intensity
    /// at which flop energy equals byte energy (Choi et al.'s energy
    /// roofline), using the per-byte memory energy `M^p(f)`.
    pub fn energy_balance(&self, f_ghz: f64) -> f64 {
        self.miss_penalty_p(f_ghz).max(1e-18) / self.e_fpu.max(1e-18)
    }

    /// One point of Choi's smooth "arch curve": the energy per flop of a
    /// kernel with intensity `oi` at frequency `f` —
    /// `e(I) = e_FPU + M^p(f)/I` (flop energy plus amortized byte energy).
    pub fn arch_curve_energy_per_flop(&self, oi: f64, f_ghz: f64) -> f64 {
        self.e_fpu + self.miss_penalty_p(f_ghz) / oi.max(1e-12)
    }

    /// Samples the arch curve over a log-spaced intensity range,
    /// returning `(oi, J/flop)` pairs — the Fig. 6 power-roof data.
    pub fn arch_curve(&self, f_ghz: f64, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|i| {
                let oi = 10f64.powf(-2.0 + 6.0 * i as f64 / (points.max(2) - 1) as f64);
                (oi, self.arch_curve_energy_per_flop(oi, f_ghz))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_machine::{ExecutionEngine, Platform};

    fn model(p: Platform) -> RooflineModel {
        RooflineModel::calibrate(&ExecutionEngine::noiseless(p))
    }

    #[test]
    fn peak_flops_close_to_platform() {
        let plat = Platform::broadwell();
        let peak = plat.peak_flops(plat.cores);
        let m = model(plat);
        assert!((m.peak_flops / peak - 1.0).abs() < 0.06);
        assert!(m.peak_flops_1t < m.peak_flops);
    }

    #[test]
    fn bandwidth_table_monotone_then_flat() {
        let m = model(Platform::raptor_lake());
        let bws: Vec<f64> = m.bw_table.iter().map(|&(_, b)| b).collect();
        for w in bws.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "bandwidth must be non-decreasing in f");
        }
        // Balance shrinks as f rises (more bandwidth per flop).
        assert!(m.time_balance(0.8) > m.time_balance(4.6));
    }

    #[test]
    fn miss_penalty_fit_matches_ground_truth() {
        let plat = Platform::broadwell();
        let truth_a = plat.dram_latency.0;
        let m = model(plat.clone());
        // The fitted a/f slope recovers the platform latency shape,
        // scaled by the serialization factor (1/mlp for the chase).
        let scale = m.miss_t_fit.0 * 1e9 * plat.mlp / truth_a;
        assert!((scale - 1.0).abs() < 0.15, "scale {scale}");
        assert!(m.miss_penalty_t(1.2) > m.miss_penalty_t(2.8));
    }

    #[test]
    fn memory_power_rises_with_f() {
        let m = model(Platform::broadwell());
        assert!(m.p_dram_fit.0 > 0.0, "α̂ must be positive");
        assert!(m.p_dram_hat(2.8) > m.p_dram_hat(1.2));
        assert!(m.miss_penalty_p(2.8) > 0.0);
    }

    #[test]
    fn characterization_threshold_behaves() {
        let m = model(Platform::raptor_lake());
        let b = m.time_balance(4.6);
        assert!(m.is_compute_bound(b * 2.0, 4.6));
        assert!(!m.is_compute_bound(b / 2.0, 4.6));
        // A kernel CB at low f can be BB at high f is impossible (balance
        // shrinks with f) — but BB at low f can become CB... verify
        // monotonicity of the threshold itself.
        assert!(m.time_balance(0.8) >= m.time_balance(4.6));
    }

    #[test]
    fn arch_curve_monotone_and_asymptotic() {
        let m = model(Platform::broadwell());
        let f = 2.0;
        let curve = m.arch_curve(f, 24);
        // Energy per flop decreases with intensity and approaches e_FPU.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-18);
        }
        let last = curve.last().unwrap().1;
        assert!(
            last < m.e_fpu * 1.1,
            "high-OI energy/flop must approach e_FPU"
        );
        // The energy balance point is where both terms are equal.
        let b = m.energy_balance(f);
        let at_b = m.arch_curve_energy_per_flop(b, f);
        assert!((at_b / (2.0 * m.e_fpu) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let m = model(Platform::broadwell());
        let tiny = m.attainable(0.01, 2.8);
        assert!(tiny < m.peak_flops * 0.05);
        let huge = m.attainable(1e6, 2.8);
        assert_eq!(huge, m.peak_flops);
    }
}
