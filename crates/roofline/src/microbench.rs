//! Roofline microbenchmarks in the style of Choi et al.'s energy-roofline
//! ubenchmarks: synthetic workloads with controlled operational intensity,
//! expressed directly as machine counters (the machine model consumes
//! counters, so a microbenchmark is exactly its counter signature).

use polyufc_machine::KernelCounters;

/// A flop-only microbenchmark (peak-compute probe): no memory traffic.
pub fn flop_microbench(flops: u64, line_bytes: u64) -> KernelCounters {
    KernelCounters {
        name: format!("ubench_flops_{flops}"),
        flops,
        accesses: 0,
        hits: vec![0; 3],
        misses: vec![0; 3],
        dram_fills: 0,
        dram_writebacks: 0,
        line_bytes,
        parallel: true,
    }
}

/// A pure streaming microbenchmark (peak-bandwidth probe): every access
/// misses all levels; no arithmetic.
pub fn stream_microbench(bytes: u64, line_bytes: u64) -> KernelCounters {
    let lines = bytes / line_bytes;
    KernelCounters {
        name: format!("ubench_stream_{bytes}"),
        flops: 0,
        accesses: bytes / 8,
        hits: vec![0; 3],
        misses: vec![lines; 3],
        dram_fills: lines,
        dram_writebacks: 0,
        line_bytes,
        parallel: true,
    }
}

/// A dependent pointer chase (DRAM latency probe): serialized misses on a
/// single thread — the paper's miss-penalty microbenchmark.
pub fn pointer_chase(n_misses: u64, line_bytes: u64) -> KernelCounters {
    KernelCounters {
        name: format!("ubench_chase_{n_misses}"),
        flops: 0,
        accesses: n_misses,
        hits: vec![0; 3],
        misses: vec![n_misses; 3],
        dram_fills: n_misses,
        dram_writebacks: 0,
        line_bytes,
        parallel: false,
    }
}

/// An LLC-resident pointer chase (LLC hit latency probe): every access
/// misses the private levels and hits the LLC.
pub fn llc_chase(n_hits: u64, line_bytes: u64) -> KernelCounters {
    KernelCounters {
        name: format!("ubench_llc_chase_{n_hits}"),
        flops: 0,
        accesses: n_hits,
        hits: vec![0, 0, n_hits],
        misses: vec![n_hits, n_hits, 0],
        dram_fills: 0,
        dram_writebacks: 0,
        line_bytes,
        parallel: false,
    }
}

/// A mixed-intensity microbenchmark: streams `bytes` and performs
/// `oi · bytes` flops — one point on the roofline at intensity `oi`.
pub fn mixed_microbench(oi: f64, bytes: u64, line_bytes: u64) -> KernelCounters {
    let lines = bytes / line_bytes;
    KernelCounters {
        name: format!("ubench_mixed_{oi}"),
        flops: (oi * bytes as f64) as u64,
        accesses: bytes / 8,
        hits: vec![0; 3],
        misses: vec![lines; 3],
        dram_fills: lines,
        dram_writebacks: 0,
        line_bytes,
        parallel: true,
    }
}

/// The Choi-style intensity sweep used for calibration: intensities from
/// far below to far above any machine balance (the paper sweeps 0..10^6).
pub fn intensity_sweep() -> Vec<f64> {
    let mut v = vec![
        0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0, 1024.0,
    ];
    v.push(1_000_000.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_machine::{ExecutionEngine, Platform};

    #[test]
    fn flop_bench_hits_peak() {
        let plat = Platform::broadwell();
        let peak = plat.peak_flops(plat.cores);
        let eng = ExecutionEngine::noiseless(plat);
        let c = flop_microbench(1_000_000_000, 64);
        let r = eng.run_kernel(&c, 2.0);
        let achieved = c.flops as f64 / r.time_s;
        assert!(
            (achieved / peak - 1.0).abs() < 0.05,
            "achieved {achieved} vs peak {peak}"
        );
    }

    #[test]
    fn stream_bench_hits_bandwidth() {
        let plat = Platform::broadwell();
        let eng = ExecutionEngine::noiseless(plat.clone());
        let c = stream_microbench(1 << 30, 64);
        for f in [1.2, 2.0, 2.8] {
            let r = eng.run_kernel(&c, f);
            let bw = (1u64 << 30) as f64 / r.time_s;
            let expect = plat.dram_bandwidth(f);
            assert!(
                (bw / expect - 1.0).abs() < 0.1,
                "bw {bw} vs {expect} at {f}"
            );
        }
    }

    #[test]
    fn pointer_chase_reveals_latency_shape() {
        let plat = Platform::broadwell();
        let eng = ExecutionEngine::noiseless(plat);
        let c = pointer_chase(1_000_000, 64);
        let lo = eng.run_kernel(&c, 1.2);
        let hi = eng.run_kernel(&c, 2.8);
        // Latency per miss falls with uncore frequency.
        assert!(lo.time_s > hi.time_s);
    }

    #[test]
    fn intensity_sweep_spans_balance() {
        let s = intensity_sweep();
        assert!(s.first().unwrap() < &1.0);
        assert!(s.last().unwrap() >= &1e6);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
