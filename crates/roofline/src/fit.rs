//! Least-squares curve fitting: polynomial (normal equations + Gaussian
//! elimination), linear, and the reciprocal `a/x + b` form used for DRAM
//! miss penalties.

/// Fits a polynomial of the given degree, returning coefficients
/// `[c0, c1, ...]` for `c0 + c1·x + c2·x² + ...`.
///
/// # Panics
///
/// Panics if `xs` and `ys` differ in length or there are fewer points
/// than coefficients.
pub fn poly_fit(xs: &[f64], ys: &[f64], degree: usize) -> Vec<f64> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let n = degree + 1;
    assert!(xs.len() >= n, "need at least degree+1 points");
    // Normal equations A^T A c = A^T y with A the Vandermonde matrix.
    let mut ata = vec![vec![0.0; n]; n];
    let mut aty = vec![0.0; n];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0; 2 * n - 1];
        for i in 1..2 * n - 1 {
            powers[i] = powers[i - 1] * x;
        }
        for i in 0..n {
            for j in 0..n {
                ata[i][j] += powers[i + j];
            }
            aty[i] += powers[i] * y;
        }
    }
    solve(&mut ata, &mut aty)
}

/// Linear fit `y = slope·x + intercept`, returned as `(slope, intercept)`.
///
/// # Panics
///
/// Panics with fewer than two points.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let c = poly_fit(xs, ys, 1);
    (c[1], c[0])
}

/// Fits `y = a/x + b`, returned as `(a, b)` — the paper's DRAM miss
/// penalty shape `M^t(f) = a/f + b`.
///
/// # Panics
///
/// Panics if any `x` is zero or fewer than two points are given.
pub fn reciprocal_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert!(
        xs.iter().all(|&x| x != 0.0),
        "reciprocal fit needs nonzero x"
    );
    let inv: Vec<f64> = xs.iter().map(|&x| 1.0 / x).collect();
    let (a, b) = linear_fit(&inv, ys);
    (a, b)
}

/// Coefficient of determination `R²` of a prediction.
pub fn r_squared(ys: &[f64], preds: &[f64]) -> f64 {
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = ys.iter().zip(preds).map(|(y, p)| (y - p).powi(2)).sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Evaluates a polynomial (coefficients low-order first).
pub fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Partial pivoting.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-12, "singular normal equations");
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r][col] / d;
            let pivot_row = a[col].clone();
            for (c, pv) in pivot_row.iter().enumerate().skip(col) {
                a[r][c] -= factor * pv;
            }
            b[r] -= factor * b[col];
        }
    }
    (0..n).map(|i| b[i] / a[i][i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let (s, i) = linear_fit(&xs, &ys);
        assert!((s - 3.5).abs() < 1e-9);
        assert!((i + 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovers_quadratic() {
        let xs: Vec<f64> = (0..20).map(|x| x as f64 / 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x + 0.5 * x * x).collect();
        let c = poly_fit(&xs, &ys, 2);
        assert!((c[0] - 1.0).abs() < 1e-6);
        assert!((c[1] - 2.0).abs() < 1e-6);
        assert!((c[2] - 0.5).abs() < 1e-6);
        assert!((poly_eval(&c, 3.0) - (1.0 + 6.0 + 4.5)).abs() < 1e-6);
    }

    #[test]
    fn recovers_reciprocal() {
        let xs = [1.0, 1.5, 2.0, 2.5, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 40.0 / x + 7.0).collect();
        let (a, b) = reciprocal_fit(&xs, &ys);
        assert!((a - 40.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
    }

    #[test]
    fn r2_of_perfect_fit_is_one() {
        let ys = [1.0, 2.0, 3.0];
        assert!((r_squared(&ys, &ys) - 1.0).abs() < 1e-12);
        let preds = [2.0, 2.0, 2.0];
        assert!(r_squared(&ys, &preds) < 0.01);
    }

    #[test]
    fn noisy_fit_is_close() {
        let xs: Vec<f64> = (1..=40).map(|x| x as f64 / 4.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 5.0 * x + 1.0 + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let (s, i) = linear_fit(&xs, &ys);
        assert!((s - 5.0).abs() < 0.02);
        assert!((i - 1.0).abs() < 0.1);
    }
}
