//! Performance and power roofline models (Williams et al. performance
//! roofline; Choi et al. energy roofline), calibrated by one-time
//! microbenchmarking against the machine model — the paper relies on its
//! own microbenchmarks for both rooflines (footnote 3) because vendors
//! publish only performance rooflines.
//!
//! * [`fit`] — least-squares polynomial / linear / reciprocal curve
//!   fitting (the paper fits `M^t(f) = a/f + b` and linear power curves).
//! * [`microbench`] — synthetic flop-only, streaming, pointer-chasing and
//!   mixed-intensity microbenchmarks (Choi-style, intensities spanning
//!   the roofline).
//! * [`model`] — the calibrated [`RooflineModel`] with the Table I
//!   constants: `t_FPU`, machine balance `B^t_DRAM(f)`, `e_FPU`,
//!   `p̂_FPU`, `P̂_DRAM(f)` fits, `p_con`, and the DRAM miss penalty fits
//!   `M^t(f)`, `M^p(f)`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
pub mod microbench;
pub mod model;

pub use fit::{linear_fit, poly_fit, reciprocal_fit};
pub use microbench::{flop_microbench, mixed_microbench, pointer_chase, stream_microbench};
pub use model::RooflineModel;
