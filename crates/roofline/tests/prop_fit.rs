//! Property tests of the curve-fitting layer: exact recovery of noiseless
//! synthetic curves and stability under bounded noise.

use proptest::prelude::*;

use polyufc_roofline::fit::{poly_eval, r_squared};
use polyufc_roofline::{linear_fit, poly_fit, reciprocal_fit};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn linear_recovery(slope in -50.0f64..50.0, intercept in -100.0f64..100.0) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.7 + 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let (s, i) = linear_fit(&xs, &ys);
        prop_assert!((s - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((i - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
    }

    #[test]
    fn quadratic_recovery(c0 in -10.0f64..10.0, c1 in -10.0f64..10.0, c2 in -5.0f64..5.0) {
        let xs: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let c = poly_fit(&xs, &ys, 2);
        for (got, want) in c.iter().zip([c0, c1, c2]) {
            prop_assert!((got - want).abs() < 1e-5 * (1.0 + want.abs()), "{got} vs {want}");
        }
        // Evaluation agrees with the source polynomial on fresh points.
        let x = 9.25;
        prop_assert!((poly_eval(&c, x) - (c0 + c1 * x + c2 * x * x)).abs() < 1e-4 * (1.0 + c0.abs() + c1.abs() + c2.abs()));
    }

    #[test]
    fn reciprocal_recovery(a in 0.1f64..100.0, b in -10.0f64..10.0) {
        let xs: Vec<f64> = (1..12).map(|i| i as f64 * 0.4).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a / x + b).collect();
        let (ga, gb) = reciprocal_fit(&xs, &ys);
        prop_assert!((ga - a).abs() < 1e-6 * (1.0 + a));
        prop_assert!((gb - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    #[test]
    fn noisy_linear_r2_high(slope in 0.5f64..20.0, noise_seed in 0u64..1000) {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25 + 0.5).collect();
        // Deterministic pseudo-noise bounded at ±1% of the signal scale.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let n = (((i as u64 * 2654435761 + noise_seed) % 200) as f64 / 100.0 - 1.0) * 0.01;
                slope * x * (1.0 + n) + 3.0
            })
            .collect();
        let (s, i) = linear_fit(&xs, &ys);
        let preds: Vec<f64> = xs.iter().map(|&x| s * x + i).collect();
        prop_assert!(r_squared(&ys, &preds) > 0.99);
        prop_assert!((s - slope).abs() / slope < 0.05);
    }
}
