//! ML-PolyUFC (Sec. VI): multi-level, dialect-aware application of uncore
//! frequency caps.
//!
//! Analysis always happens at the affine level (the natural granularity
//! for the polyhedral machinery, Sec. VI-B); the *application* granularity
//! is configurable:
//!
//! * [`CapGranularity::Tensor`] — one cap per torch-level op (coarse:
//!   a single `sdpa` op hides CB → BB* → CB phase changes);
//! * [`CapGranularity::Linalg`] — one cap per linalg op (the paper's
//!   chosen trade-off between control granularity and switch overhead);
//! * [`CapGranularity::Affine`] — one cap per affine kernel (here equal
//!   to linalg granularity, since each structured op lowers to one
//!   nest; kept distinct for IRs where that is not true).
//!
//! The module also produces the Fig. 5 phase report: the CB/BB phase
//! sequence of a tensor graph at each dialect level.

use std::collections::BTreeMap;

use polyufc_ir::tensor::TensorGraph;
use polyufc_ir::types::ElemType;
use serde::{Deserialize, Serialize};

use crate::characterize::Boundedness;
use crate::pipeline::{Error, Pipeline, PipelineOutput};

/// The dialect level at which caps are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapGranularity {
    /// One cap per tensor (torch) op.
    Tensor,
    /// One cap per linalg op (the paper's choice).
    Linalg,
    /// One cap per affine kernel.
    Affine,
}

/// The CB/BB phase sequence at every dialect level (Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Tensor-level phases: `(tensor op name, class)` from aggregated OI.
    pub tensor: Vec<(String, Boundedness)>,
    /// Linalg-level phases.
    pub linalg: Vec<(String, Boundedness)>,
    /// Affine-level phases (per kernel).
    pub affine: Vec<(String, Boundedness)>,
}

impl PhaseReport {
    /// Renders a compact phase string like `"CB BB BB ... CB"`.
    pub fn phase_string(level: &[(String, Boundedness)]) -> String {
        level
            .iter()
            .map(|(_, c)| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// The multi-level driver.
#[derive(Debug, Clone)]
pub struct MlPolyUfc {
    /// The underlying pipeline (platform, rooflines, search config).
    pub pipeline: Pipeline,
    /// Cap-application granularity.
    pub granularity: CapGranularity,
}

impl MlPolyUfc {
    /// Creates a driver with the paper's default (linalg) granularity.
    pub fn new(pipeline: Pipeline) -> Self {
        MlPolyUfc {
            pipeline,
            granularity: CapGranularity::Linalg,
        }
    }

    /// Compiles a tensor graph with caps applied at the configured
    /// granularity.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile_affine`].
    pub fn compile(&self, graph: &TensorGraph, elem: ElemType) -> Result<PipelineOutput, Error> {
        let mut out = self.pipeline.compile_tensor(graph, elem)?;
        match self.granularity {
            CapGranularity::Linalg | CapGranularity::Affine => Ok(out),
            CapGranularity::Tensor => {
                // Aggregate caps per tensor op: min over CB groups, max
                // over BB groups (Sec. VII-A aggregation rule), using the
                // group's aggregate OI for the group class.
                let groups = group_by_tensor_op(graph, &out);
                let mut group_cap: BTreeMap<String, f64> = BTreeMap::new();
                for (g, idxs) in &groups {
                    let omega: f64 = idxs.iter().map(|&i| out.cache_stats[i].flops).sum();
                    let q: f64 = idxs.iter().map(|&i| out.cache_stats[i].q_dram_bytes).sum();
                    let oi = if q > 0.0 { omega / q } else { f64::INFINITY };
                    let f_ref = self.pipeline.platform.uncore_max_ghz;
                    let cb = self.pipeline.roofline.is_compute_bound(oi, f_ref);
                    let caps = idxs.iter().map(|&i| out.caps_ghz[i]);
                    let cap = if cb {
                        caps.fold(f64::INFINITY, f64::min)
                    } else {
                        caps.fold(0.0, f64::max)
                    };
                    group_cap.insert(g.clone(), self.pipeline.platform.clamp_uncore(cap));
                }
                // Rewrite caps to group caps, then rebuild the scf.
                for (g, idxs) in &groups {
                    for &i in idxs {
                        out.caps_ghz[i] = group_cap[g];
                    }
                }
                let plan = crate::capping::CapPlan::from_ghz(
                    out.optimized
                        .kernels
                        .iter()
                        .zip(&out.caps_ghz)
                        .map(|(k, &f)| (k.name.clone(), f)),
                );
                out.scf = crate::capping::remove_redundant_caps(&crate::capping::insert_caps(
                    &out.optimized,
                    &plan,
                ));
                Ok(out)
            }
        }
    }

    /// Produces the Fig. 5 phase report for a tensor graph.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile_affine`].
    pub fn phase_report(&self, graph: &TensorGraph, elem: ElemType) -> Result<PhaseReport, Error> {
        let out = self.pipeline.compile_tensor(graph, elem)?;
        let f_ref = self.pipeline.platform.uncore_max_ghz;
        let linalg: Vec<(String, Boundedness)> = out
            .characterizations
            .iter()
            .map(|c| (c.kernel.clone(), c.class))
            .collect();
        // Affine level: identical kernel set here, but re-derived from the
        // per-kernel stats to keep the level distinction explicit.
        let affine = linalg.clone();
        // Tensor level: aggregate OI per tensor op.
        let groups = group_by_tensor_op(graph, &out);
        let mut tensor = Vec::new();
        for op in &graph.ops {
            if let Some(idxs) = groups.get(&op.name) {
                let omega: f64 = idxs.iter().map(|&i| out.cache_stats[i].flops).sum();
                let q: f64 = idxs.iter().map(|&i| out.cache_stats[i].q_dram_bytes).sum();
                let oi = if q > 0.0 { omega / q } else { f64::INFINITY };
                let class = if self.pipeline.roofline.is_compute_bound(oi, f_ref) {
                    Boundedness::ComputeBound
                } else {
                    Boundedness::BandwidthBound
                };
                tensor.push((op.name.clone(), class));
            }
        }
        Ok(PhaseReport {
            tensor,
            linalg,
            affine,
        })
    }
}

/// Groups kernel indices by the tensor op whose lowering produced them
/// (name-prefix convention of the lowering: `<tensor op>_<suffix>`).
fn group_by_tensor_op(graph: &TensorGraph, out: &PipelineOutput) -> BTreeMap<String, Vec<usize>> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, k) in out.optimized.kernels.iter().enumerate() {
        let owner = graph
            .ops
            .iter()
            .map(|op| &op.name)
            .filter(|n| k.name == **n || k.name.starts_with(&format!("{n}_")))
            .max_by_key(|n| n.len());
        if let Some(o) = owner {
            groups.entry(o.clone()).or_default().push(i);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::tensor::{TensorOp, TensorOpKind};
    use polyufc_machine::Platform;

    fn sdpa_graph() -> TensorGraph {
        let mut g = TensorGraph::new("bert");
        g.push(TensorOp {
            name: "sdpa".into(),
            kind: TensorOpKind::Sdpa {
                b: 2,
                h: 12,
                s: 128,
                d: 64,
            },
            inputs: vec!["Q".into(), "K".into(), "V".into()],
            output: "O".into(),
        });
        g
    }

    #[test]
    fn fig5_phase_structure_cb_bb_cb() {
        let ml = MlPolyUfc::new(Pipeline::new(Platform::raptor_lake()));
        let rep = ml.phase_report(&sdpa_graph(), ElemType::F32).unwrap();
        assert_eq!(rep.linalg.len(), 9);
        assert_eq!(
            rep.linalg[0].1,
            Boundedness::ComputeBound,
            "Q·Kᵀ must be CB"
        );
        assert_eq!(rep.linalg[8].1, Boundedness::ComputeBound, "P·V must be CB");
        // The middle seven ops form the BB* region.
        let middle_bb = rep.linalg[1..8]
            .iter()
            .filter(|(_, c)| *c == Boundedness::BandwidthBound)
            .count();
        assert!(
            middle_bb >= 5,
            "most of the softmax chain must be BB, got {middle_bb}/7"
        );
        // At tensor level the whole op collapses into a single phase.
        assert_eq!(rep.tensor.len(), 1);
    }

    #[test]
    fn tensor_granularity_uses_one_cap() {
        let mut ml = MlPolyUfc::new(Pipeline::new(Platform::raptor_lake()));
        ml.granularity = CapGranularity::Tensor;
        let out = ml.compile(&sdpa_graph(), ElemType::F32).unwrap();
        assert_eq!(out.scf.cap_count(), 1, "one cap for the whole tensor op");
        ml.granularity = CapGranularity::Linalg;
        let out2 = ml.compile(&sdpa_graph(), ElemType::F32).unwrap();
        assert!(out2.scf.cap_count() >= out.scf.cap_count());
    }

    #[test]
    fn prefix_grouping_prefers_longest_owner() {
        // Two ops where one name prefixes the other: kernels must attach
        // to the longest matching owner.
        use polyufc_ir::tensor::TensorOp;
        let mut g = TensorGraph::new("pfx");
        g.push(TensorOp {
            name: "mm".into(),
            kind: TensorOpKind::MatMul {
                m: 16,
                n: 16,
                k: 16,
            },
            inputs: vec!["A".into(), "B".into()],
            output: "C".into(),
        });
        g.push(TensorOp {
            name: "mm_big".into(),
            kind: TensorOpKind::MatMul {
                m: 32,
                n: 32,
                k: 32,
            },
            inputs: vec!["D".into(), "E".into()],
            output: "F".into(),
        });
        let ml = MlPolyUfc::new(Pipeline::new(Platform::broadwell()));
        let rep = ml.phase_report(&g, ElemType::F32).unwrap();
        assert_eq!(rep.tensor.len(), 2, "both ops must own their kernels");
    }

    #[test]
    fn phase_string_renders() {
        let s = PhaseReport::phase_string(&[
            ("a".into(), Boundedness::ComputeBound),
            ("b".into(), Boundedness::BandwidthBound),
        ]);
        assert_eq!(s, "CB BB");
    }
}
