//! POLYUFC-SEARCH (Sec. VI-C): selection of the best uncore frequency
//! cap for a kernel, guided by its bottleneck characterization.
//!
//! The search space is the platform's 0.1 GHz frequency grid (≈39 steps
//! on RPL). Because Eqns. 4 and 10 are non-linear in `f_c` and `I`, the
//! objective is explored with a binary search over the grid (with a
//! small local refinement, since the measured bandwidth table makes the
//! objective only piecewise-smooth), plus the paper's ε trade-off rule:
//! for CB kernels a lower frequency is admissible only while the
//! performance loss does not exceed the bandwidth loss by more than ε;
//! for BB kernels a higher frequency is admissible only while the
//! performance gain tracks the bandwidth gain within ε.

use serde::{Deserialize, Serialize};

use crate::characterize::Boundedness;
use crate::model::ParametricModel;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Performance-only: maximize `Perf(f_c)`; ties break toward lower
    /// frequency (free energy savings).
    Performance,
    /// Energy-only: minimize `E(f_c)`.
    Energy,
    /// Energy-delay product (the paper's focus): minimize `E·T`.
    Edp,
}

/// One evaluated frequency during the search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchStep {
    /// Evaluated frequency (GHz).
    pub f_ghz: f64,
    /// Relative performance vs. the reference (max) frequency.
    pub delta_perf: f64,
    /// Relative bandwidth vs. the reference frequency.
    pub delta_bw: f64,
    /// Relative EDP vs. the reference frequency.
    pub delta_edp: f64,
    /// Whether the ε rule admitted this frequency.
    pub admissible: bool,
}

/// The outcome of POLYUFC-SEARCH for one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// Chosen cap (GHz).
    pub f_ghz: f64,
    /// Number of objective evaluations.
    pub steps: usize,
    /// Objective value at the chosen cap.
    pub objective_value: f64,
    /// The kernel's class (drives the search direction).
    pub class: Boundedness,
    /// Evaluation log.
    pub log: Vec<SearchStep>,
}

/// Runs POLYUFC-SEARCH for one kernel over the platform frequency grid.
///
/// `freqs` must be the ascending 0.1 GHz grid; `epsilon` is the paper's
/// tunable threshold (they evaluate with `1e-3`).
///
/// # Panics
///
/// Panics if `freqs` is empty.
pub fn search_cap(
    model: &ParametricModel<'_>,
    freqs: &[f64],
    objective: Objective,
    epsilon: f64,
) -> SearchResult {
    assert!(!freqs.is_empty(), "empty frequency grid");
    let f_ref = *freqs.last().expect("non-empty");
    let class = model.class_at(f_ref);
    let perf_ref = model.performance(f_ref);
    let bw_ref = model.bandwidth(f_ref);
    let edp_ref = model.edp(f_ref);

    let mut log: Vec<SearchStep> = Vec::new();
    let mut evals = 0usize;

    let admissible = |f: f64, log: &mut Vec<SearchStep>, evals: &mut usize| -> (bool, f64) {
        *evals += 1;
        let dp = model.performance(f) / perf_ref;
        let db = model.bandwidth(f) / bw_ref;
        let de = model.edp(f) / edp_ref;
        let ok = match class {
            // CB: allow lower f while perf loss tracks bw loss within ε.
            Boundedness::ComputeBound => (1.0 - dp) <= (1.0 - db) + epsilon,
            // BB: allow a setting only when perf gains align with bw gains.
            Boundedness::BandwidthBound => dp >= db - epsilon,
        };
        let value = match objective {
            Objective::Performance => -model.performance(f),
            Objective::Energy => model.energy(f),
            Objective::Edp => model.edp(f),
        };
        log.push(SearchStep {
            f_ghz: f,
            delta_perf: dp,
            delta_bw: db,
            delta_edp: de,
            admissible: ok,
        });
        (ok, value)
    };

    let score = |f: f64, log: &mut Vec<SearchStep>, evals: &mut usize| -> f64 {
        let (ok, v) = admissible(f, log, evals);
        if ok {
            v
        } else {
            f64::INFINITY
        }
    };

    // Binary search for the grid minimizer (terminates when the interval
    // collapses — "frequency stabilizes between iterations").
    let (mut lo, mut hi) = (0usize, freqs.len() - 1);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let a = score(freqs[mid], &mut log, &mut evals);
        let b = score(freqs[mid + 1], &mut log, &mut evals);
        if a <= b {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Local refinement around the stabilization point (the measured
    // bandwidth table is only piecewise-linear, so the objective can have
    // small local plateaus the bisection may land next to).
    let mut best_idx = lo;
    let mut best_val = score(freqs[lo], &mut log, &mut evals);
    let lo_r = lo.saturating_sub(3);
    let hi_r = (lo + 3).min(freqs.len() - 1);
    for i in lo_r..=hi_r {
        let v = score(freqs[i], &mut log, &mut evals);
        let better = v < best_val
            || (objective == Objective::Performance
                && (v - best_val).abs() <= epsilon * best_val.abs()
                && freqs[i] < freqs[best_idx]);
        if better {
            best_idx = i;
            best_val = v;
        }
    }
    // Fall back to the reference frequency if nothing was admissible.
    let (f_best, value) = if best_val.is_finite() {
        (freqs[best_idx], best_val)
    } else {
        let v = match objective {
            Objective::Performance => -model.performance(f_ref),
            Objective::Energy => model.energy(f_ref),
            Objective::Edp => model.edp(f_ref),
        };
        (f_ref, v)
    };
    SearchResult {
        f_ghz: f_best,
        steps: evals,
        objective_value: value,
        class,
        log,
    }
}

/// Exhaustive 0.1 GHz scan (the ablation baseline for the binary search):
/// returns the admissible grid minimizer and the number of evaluations.
pub fn scan_cap(
    model: &ParametricModel<'_>,
    freqs: &[f64],
    objective: Objective,
    epsilon: f64,
) -> SearchResult {
    assert!(!freqs.is_empty(), "empty frequency grid");
    let f_ref = *freqs.last().expect("non-empty");
    let class = model.class_at(f_ref);
    let perf_ref = model.performance(f_ref);
    let bw_ref = model.bandwidth(f_ref);
    let edp_ref = model.edp(f_ref);
    let mut log = Vec::new();
    let mut best: Option<(f64, f64)> = None;
    for &f in freqs {
        let dp = model.performance(f) / perf_ref;
        let db = model.bandwidth(f) / bw_ref;
        let de = model.edp(f) / edp_ref;
        let ok = match class {
            Boundedness::ComputeBound => (1.0 - dp) <= (1.0 - db) + epsilon,
            Boundedness::BandwidthBound => dp >= db - epsilon,
        };
        log.push(SearchStep {
            f_ghz: f,
            delta_perf: dp,
            delta_bw: db,
            delta_edp: de,
            admissible: ok,
        });
        if !ok {
            continue;
        }
        let v = match objective {
            Objective::Performance => -model.performance(f),
            Objective::Energy => model.energy(f),
            Objective::Edp => model.edp(f),
        };
        let replace = match best {
            None => true,
            Some((_, bv)) => {
                v < bv
                    || (objective == Objective::Performance && (v - bv).abs() <= epsilon * bv.abs())
            }
        };
        if replace {
            best = Some((f, v));
        }
    }
    let (f_best, value) = best.unwrap_or_else(|| {
        let v = match objective {
            Objective::Performance => -model.performance(f_ref),
            Objective::Energy => model.energy(f_ref),
            Objective::Edp => model.edp(f_ref),
        };
        (f_ref, v)
    });
    SearchResult {
        f_ghz: f_best,
        steps: freqs.len(),
        objective_value: value,
        class,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_cache::{KernelCacheStats, LevelStats};
    use polyufc_machine::{ExecutionEngine, Platform};
    use polyufc_roofline::RooflineModel;

    fn stats(flops: f64, q_dram: f64) -> KernelCacheStats {
        KernelCacheStats {
            levels: vec![LevelStats {
                accesses: 0.0,
                hits: 0.0,
                misses: q_dram / 64.0,
                fit_level: 0,
            }],
            cold_lines: q_dram / 64.0,
            q_dram_bytes: q_dram,
            flops,
            total_accesses: 0.0,
        }
    }

    fn setup() -> (Platform, RooflineModel) {
        let p = Platform::broadwell();
        let r = RooflineModel::calibrate(&ExecutionEngine::noiseless(p.clone()));
        (p, r)
    }

    #[test]
    fn cb_edp_search_picks_low_frequency() {
        let (p, r) = setup();
        let st = stats(1e12, 1e8); // deep CB
        let m = ParametricModel::new(&r, &st, true, p.cores as f64);
        let res = search_cap(&m, &p.uncore_freqs(), Objective::Edp, 1e-3);
        assert_eq!(res.class, Boundedness::ComputeBound);
        assert!(
            res.f_ghz <= 1.6,
            "deep CB should cap low, got {}",
            res.f_ghz
        );
    }

    #[test]
    fn bb_edp_search_picks_high_frequency() {
        let (p, r) = setup();
        let st = stats(1e9, 3.2e10); // deep BB
        let m = ParametricModel::new(&r, &st, true, p.cores as f64);
        let res = search_cap(&m, &p.uncore_freqs(), Objective::Edp, 1e-3);
        assert_eq!(res.class, Boundedness::BandwidthBound);
        assert!(
            res.f_ghz >= 2.0,
            "deep BB should cap high, got {}",
            res.f_ghz
        );
    }

    #[test]
    fn performance_objective_never_loses_much_perf() {
        let (p, r) = setup();
        for st in [stats(1e12, 1e8), stats(1e9, 3.2e10)] {
            let m = ParametricModel::new(&r, &st, true, p.cores as f64);
            let res = search_cap(&m, &p.uncore_freqs(), Objective::Performance, 1e-3);
            let perf_at = m.performance(res.f_ghz);
            let perf_max = m.performance(p.uncore_max_ghz);
            assert!(perf_at >= perf_max * 0.99, "{} vs {}", perf_at, perf_max);
        }
    }

    #[test]
    fn binary_matches_scan() {
        let (p, r) = setup();
        for st in [stats(1e12, 1e8), stats(1e10, 1e9), stats(1e9, 3.2e10)] {
            let m = ParametricModel::new(&r, &st, true, p.cores as f64);
            let fast = search_cap(&m, &p.uncore_freqs(), Objective::Edp, 1e-3);
            let slow = scan_cap(&m, &p.uncore_freqs(), Objective::Edp, 1e-3);
            let ratio = m.edp(fast.f_ghz) / m.edp(slow.f_ghz);
            assert!(
                ratio <= 1.02,
                "binary ({} GHz) must be near-optimal vs scan ({} GHz): {ratio}",
                fast.f_ghz,
                slow.f_ghz
            );
            assert!(
                fast.steps <= slow.steps,
                "binary must not evaluate more than the scan"
            );
        }
    }

    #[test]
    fn search_stays_in_range() {
        let (p, r) = setup();
        let st = stats(1e10, 1e10);
        let m = ParametricModel::new(&r, &st, true, p.cores as f64);
        for obj in [Objective::Performance, Objective::Energy, Objective::Edp] {
            let res = search_cap(&m, &p.uncore_freqs(), obj, 1e-3);
            assert!(res.f_ghz >= p.uncore_min_ghz - 1e-9);
            assert!(res.f_ghz <= p.uncore_max_ghz + 1e-9);
            assert!(!res.log.is_empty());
        }
    }

    #[test]
    fn epsilon_controls_cb_aggressiveness() {
        let (p, r) = setup();
        // Moderate CB: perf slightly degrades at the lowest frequencies.
        let st = stats(2e10, 1e9);
        let m = ParametricModel::new(&r, &st, true, p.cores as f64);
        let tight = scan_cap(&m, &p.uncore_freqs(), Objective::Energy, 1e-6);
        let loose = scan_cap(&m, &p.uncore_freqs(), Objective::Energy, 0.5);
        assert!(loose.f_ghz <= tight.f_ghz, "looser ε admits lower caps");
    }
}
