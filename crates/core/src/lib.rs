//! PolyUFC: polyhedral compilation meets roofline analysis for uncore
//! frequency capping — the paper's primary contribution.
//!
//! The crate ties the substrates together into the compilation flow of
//! Fig. 2/3:
//!
//! 1. Input programs (tensor graphs or affine programs) are lowered
//!    through the [`polyufc_ir`] dialects and optimized by the Pluto
//!    substitute ([`polyufc_pluto`]).
//! 2. PolyUFC-CM ([`polyufc_cache`]) computes cache misses, `Q_DRAM`,
//!    and the operational intensity `I = Ω / Q_DRAM` per kernel.
//! 3. [`characterize`] positions each kernel against the calibrated
//!    performance/power rooflines ([`polyufc_roofline`]) and labels it
//!    compute-bound (CB) or bandwidth-bound (BB).
//! 4. [`model`] provides the parametric estimates `T(f_c, I)`,
//!    `Perf(f_c, I)`, `BW(f_c, I)`, `P̂(f_s, I)`, `P(f_c, I)`,
//!    `E(f_c, I)` (paper Eqns. 2–11).
//! 5. [`search`] runs POLYUFC-SEARCH (binary search at 0.1 GHz
//!    granularity with the ε trade-off rule) to pick a cap per kernel
//!    for a chosen objective (performance / energy / EDP).
//! 6. [`capping`] embeds `set_uncore_cap` calls into the scf output and
//!    removes redundant caps by pattern rewriting; [`mlpolyufc`] applies
//!    the whole flow at tensor / linalg / affine granularity (Sec. VI).
//!
//! [`pipeline`] is the end-to-end driver with per-stage compile-time
//! accounting (Table IV).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capping;
pub mod characterize;
pub mod mlpolyufc;
pub mod model;
pub mod pipeline;
pub mod search;

pub use capping::{insert_caps, remove_redundant_caps, CapPlan};
pub use characterize::{characterize_kernel, Boundedness, Characterization};
pub use mlpolyufc::{CapGranularity, MlPolyUfc, PhaseReport};
pub use model::ParametricModel;
pub use pipeline::{
    CharacterizedProgram, CompileReport, CompileSession, Error, Pipeline, PipelineOutput,
};
pub use search::{search_cap, Objective, SearchResult};
