//! The end-to-end PolyUFC pipeline (Fig. 3) with per-stage compile-time
//! accounting (Table IV): preprocessing/extraction, the Pluto optimizer,
//! PolyUFC-CM + OI (stages 3a/3b), and characterization + search +
//! code generation (stages 4–6).

use std::fmt;
use std::time::Instant;

use polyufc_analysis::Analyzer;
use polyufc_cache::{AssocMode, CacheModel, KernelCacheStats, ModelError};
use polyufc_ir::affine::AffineProgram;
use polyufc_ir::lower::lower_tensor_to_linalg;
use polyufc_ir::scf::ScfProgram;
use polyufc_ir::tensor::TensorGraph;
use polyufc_ir::types::ElemType;
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_pluto::{PlutoOptimizer, PlutoReport};
use polyufc_roofline::RooflineModel;
use serde::{Deserialize, Serialize};

use crate::capping::{insert_caps, remove_redundant_caps, CapPlan};
use crate::characterize::{characterize_kernel, Characterization};
use crate::model::ParametricModel;
use crate::search::{search_cap, Objective, SearchResult};

/// Why a compilation failed.
#[derive(Debug)]
pub enum Error {
    /// A kernel could not be analyzed by the cache model.
    Model(ModelError),
    /// The pre-compilation static verifier found errors in the input
    /// program; the report carries every diagnostic with its witness.
    AnalysisRejected(polyufc_analysis::AnalysisReport),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(e) => write!(f, "{e}"),
            Error::AnalysisRejected(r) => {
                write!(
                    f,
                    "static verifier rejected `{}`:\n{}",
                    r.program,
                    r.render_text()
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        Error::Model(e)
    }
}

/// Per-stage compile times in microseconds (the Table IV columns).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompileReport {
    /// Kernels whose PolyUFC-CM analysis exceeded the solver budget and
    /// fell back to a compulsory-miss estimate with the cap reset to the
    /// maximum frequency (the paper's 30-minute-timeout behavior).
    pub fallback_kernels: Vec<String>,
    /// Warnings from the pre-compilation static verifier (rendered
    /// diagnostics; errors abort compilation instead).
    pub verify_warnings: Vec<String>,
    /// Pre-compilation static verification (bounds, races, IR lints).
    pub verify_us: u128,
    /// Stage 2 extraction / preprocessing.
    pub preprocess_us: u128,
    /// Stage 2 optimizer (Pluto).
    pub pluto_us: u128,
    /// Stages 3a–3b (PolyUFC-CM + OI).
    pub polyufc_cm_us: u128,
    /// Stages 4–6 (characterization, search, code generation).
    pub steps_4_6_us: u128,
    /// Presburger counting queries answered from the memoization cache
    /// during PolyUFC-CM analysis (Table IV compile-time saving).
    pub count_cache_hits: u64,
    /// Presburger counting queries that had to run the full counter.
    pub count_cache_misses: u64,
    /// Coupled components resolved by the closed-form symbolic counting
    /// layer (size-independent work) across all cache misses.
    pub count_symbolic: u64,
    /// Coupled components that fell back to the recursive enumerator.
    pub count_enumerated: u64,
    /// Cache entries discarded by the counting cache's capacity guard.
    pub count_cache_evictions: u64,
    /// Emptiness batches the verify gate issued through its shared
    /// Presburger context (one per access-pair / bounds sweep).
    pub emptiness_batches: u64,
    /// Individual emptiness checks inside those batches.
    pub emptiness_checks: u64,
    /// High-water mark of the verify gate's solver arena, in bytes.
    pub presburger_arena_bytes: u64,
    /// Polysum region splits fanned out across the worker pool during
    /// counting (0 when every count stayed sequential).
    pub count_parallel_splits: u64,
}

impl CompileReport {
    /// Total compile time.
    pub fn total_us(&self) -> u128 {
        self.verify_us + self.preprocess_us + self.pluto_us + self.polyufc_cm_us + self.steps_4_6_us
    }
}

/// Reusable per-worker compile state for long-running callers (the serve
/// daemon): the Presburger counting cache and the batched-emptiness
/// [`Context`](polyufc_presburger::Context) both persist across
/// compilations, so a hot daemon amortizes canonicalization, arena
/// growth, and repeated iteration-domain counts across requests instead
/// of rebuilding them per compile.
///
/// [`Pipeline::compile_affine`] uses a throwaway session; a daemon calls
/// [`Pipeline::compile_affine_in`] with one session per worker thread.
/// Reports stay per-compile: the pipeline snapshots the session's
/// counters around each call and records the deltas.
#[derive(Debug, Default)]
pub struct CompileSession {
    /// Memoized Presburger counting shared across compiles.
    pub count_cache: polyufc_presburger::CountCache,
    /// Persistent batched-emptiness solver context for the verify gate.
    pub ctx: polyufc_presburger::Context,
}

impl CompileSession {
    /// A fresh session with empty caches.
    pub fn new() -> Self {
        CompileSession::default()
    }
}

/// The ε- and objective-independent prefix of a compilation: the result
/// of stages 1–3 plus roofline characterization (verify, preprocessing,
/// Pluto, PolyUFC-CM + OI, characterize), which depend only on the input
/// program, the platform, and the associativity mode. POLYUFC-SEARCH and
/// code generation — the only stages that read `epsilon` and `objective`
/// — run in [`Pipeline::finish_characterized`].
///
/// Long-running callers (the serve daemon) cache these per
/// `(platform, assoc, program)`: a request that differs only in ε or
/// objective then skips the Pluto re-optimization that dominates warm
/// compile time and pays only the microsecond-scale search.
#[derive(Debug, Clone)]
pub struct CharacterizedProgram {
    /// The Pluto-optimized affine program.
    pub optimized: AffineProgram,
    /// Per-kernel PolyUFC-CM statistics (thread-sharing applied).
    pub cache_stats: Vec<KernelCacheStats>,
    /// Per-kernel roofline characterizations at the reference frequency.
    pub characterizations: Vec<Characterization>,
    /// What the optimizer did.
    pub pluto_report: PlutoReport,
    /// Stage 1–3 timings and counter deltas; `steps_4_6_us` holds only
    /// the characterization share until `finish_characterized` adds the
    /// search and code-generation time.
    pub report: CompileReport,
}

/// Everything the pipeline produces for one input program.
#[derive(Debug)]
pub struct PipelineOutput {
    /// The Pluto-optimized affine program (also the baseline binary).
    pub optimized: AffineProgram,
    /// The final scf program with embedded caps.
    pub scf: ScfProgram,
    /// Per-kernel PolyUFC-CM statistics.
    pub cache_stats: Vec<KernelCacheStats>,
    /// Per-kernel roofline characterizations.
    pub characterizations: Vec<Characterization>,
    /// Per-kernel search outcomes.
    pub search: Vec<SearchResult>,
    /// Chosen caps in GHz, per kernel.
    pub caps_ghz: Vec<f64>,
    /// Compile-time breakdown.
    pub report: CompileReport,
    /// What the optimizer did.
    pub pluto_report: PlutoReport,
}

/// The configured compilation pipeline for one platform.
///
/// ```
/// use polyufc::Pipeline;
/// use polyufc_machine::Platform;
/// use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
/// use polyufc_ir::types::ElemType;
/// use polyufc_presburger::LinExpr;
///
/// // A small streaming kernel...
/// let mut program = AffineProgram::new("copy");
/// let a = program.add_array("A", vec![4096], ElemType::F64);
/// let b = program.add_array("B", vec![4096], ElemType::F64);
/// program.kernels.push(AffineKernel {
///     name: "copy".into(),
///     loops: vec![Loop::range(4096)],
///     statements: vec![Statement {
///         name: "S".into(),
///         accesses: vec![
///             Access::read(a, vec![LinExpr::var(0)]),
///             Access::write(b, vec![LinExpr::var(0)]),
///         ],
///         flops: 1,
///     }],
/// });
///
/// // ...compiled end-to-end: Pluto, PolyUFC-CM, search, cap insertion.
/// let pipeline = Pipeline::new(Platform::broadwell());
/// let out = pipeline.compile_affine(&program)?;
/// assert_eq!(out.caps_ghz.len(), 1);
/// # Ok::<(), polyufc::pipeline::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Target platform (used for the frequency grid and concurrency).
    pub platform: Platform,
    /// Calibrated roofline model.
    pub roofline: RooflineModel,
    /// Cache-model associativity mode.
    pub assoc_mode: AssocMode,
    /// Search objective.
    pub objective: Objective,
    /// The ε threshold of POLYUFC-SEARCH (paper uses 1e-3).
    pub epsilon: f64,
    /// The Pluto stage configuration.
    pub pluto: PlutoOptimizer,
    /// Whether to apply the paper's thread-sharing heuristic to parallel
    /// kernels (sequential misses divided by the thread count).
    pub thread_sharing: bool,
    /// Cap-switch guard: a kernel receives its own cap only when its
    /// estimated runtime is at least this many cap-switch latencies (or
    /// the cap equals the one already in effect, which is free). Encodes
    /// the Sec. VII-F overhead argument; 0 disables the guard.
    pub cap_switch_guard: f64,
    /// Whether to run the static verifier (IR lints, bounds proofs, race
    /// detection on `parallel` flags) before compilation. On by default:
    /// textual and cgeist inputs are untrusted, and the builtin workloads
    /// are expected to verify cleanly. Errors abort compilation with
    /// [`Error::AnalysisRejected`]; warnings land in
    /// [`CompileReport::verify_warnings`].
    pub verify: bool,
}

impl Pipeline {
    /// Creates a pipeline for a platform, calibrating the rooflines by
    /// one-time microbenchmarking on its (noiseless) machine model.
    /// Calibration is cached per platform, so sweeps constructing many
    /// pipelines (one per evaluation point) microbenchmark each platform
    /// only once per process.
    pub fn new(platform: Platform) -> Self {
        let roofline =
            RooflineModel::calibrate_cached(&ExecutionEngine::noiseless(platform.clone()));
        Pipeline {
            platform,
            roofline,
            assoc_mode: AssocMode::SetAssociative,
            objective: Objective::Edp,
            epsilon: 1e-3,
            pluto: PlutoOptimizer::default(),
            thread_sharing: false,
            cap_switch_guard: 20.0,
            verify: true,
        }
    }

    /// Enables or disables the pre-compilation static verifier.
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Sets the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the associativity mode of PolyUFC-CM.
    pub fn with_assoc_mode(mut self, mode: AssocMode) -> Self {
        self.assoc_mode = mode;
        self
    }

    /// Compiles an affine program end-to-end.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AnalysisRejected`] if the static verifier finds
    /// errors in the input, or [`Error::Model`] if a kernel cannot be
    /// analyzed by the cache model.
    pub fn compile_affine(&self, input: &AffineProgram) -> Result<PipelineOutput, Error> {
        self.compile_affine_in(input, &mut CompileSession::new())
    }

    /// [`Pipeline::compile_affine`] against a caller-owned
    /// [`CompileSession`], so the Presburger counting cache and the
    /// verify gate's solver context persist across compilations (the
    /// serve daemon keeps one session per worker). The returned
    /// [`CompileReport`] counts only this compile's cache traffic and
    /// solver work (session counters are snapshot-deltaed).
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile_affine`].
    pub fn compile_affine_in(
        &self,
        input: &AffineProgram,
        session: &mut CompileSession,
    ) -> Result<PipelineOutput, Error> {
        let ch = self.characterize_affine_in(input, session)?;
        Ok(self.finish_characterized(ch))
    }

    /// Stages 1–3 plus characterization: everything in the pipeline that
    /// is independent of `epsilon` and `objective`. The result can be
    /// cached and re-finished under different search parameters via
    /// [`Pipeline::finish_characterized`]; the two calls compose to
    /// exactly [`Pipeline::compile_affine_in`].
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile_affine`].
    pub fn characterize_affine_in(
        &self,
        input: &AffineProgram,
        session: &mut CompileSession,
    ) -> Result<CharacterizedProgram, Error> {
        // Session counters are cumulative; snapshot them so the report
        // carries per-compile deltas regardless of session age.
        let batches0 = session.ctx.batches();
        let checks0 = session.ctx.checks();
        let cc0 = (
            session.count_cache.hits(),
            session.count_cache.misses(),
            session.count_cache.symbolic(),
            session.count_cache.enumerated(),
            session.count_cache.evictions(),
            session.count_cache.parallel_splits(),
        );

        // Stage 1: static verification (the `--verify` gate). Runs before
        // anything trusts the program's structure or `parallel` flags.
        let t_v = Instant::now();
        let mut verify_warnings = Vec::new();
        let mut verify_stats = polyufc_analysis::AnalysisStats::default();
        if self.verify {
            let report = Analyzer::new().analyze_in(input, &mut session.ctx);
            if report.has_errors() {
                return Err(Error::AnalysisRejected(report));
            }
            verify_stats = report.stats;
            verify_warnings = report.diagnostics.iter().map(|d| d.to_string()).collect();
        }
        let verify_us = t_v.elapsed().as_micros();

        // Stage 2a: preprocessing (validation / extraction).
        let t0 = Instant::now();
        input.validate().map_err(ModelError::Malformed)?;
        let preprocess_us = t0.elapsed().as_micros();

        // Stage 2b: Pluto.
        let t1 = Instant::now();
        let (optimized, pluto_report) = self.pluto.optimize(input);
        let pluto_us = t1.elapsed().as_micros();

        // Stages 3a/3b: PolyUFC-CM + OI.
        let t2 = Instant::now();
        let cm = CacheModel::new(self.platform.hierarchy.clone(), self.assoc_mode);
        let mut cache_stats = Vec::with_capacity(optimized.kernels.len());
        let mut fallback_kernels = Vec::new();
        // One counting cache across all kernels (and, via the session,
        // across compiles): iteration-domain queries recur heavily
        // between references, levels, sibling kernels, and repeat
        // requests for structurally similar programs.
        let count_cache = &mut session.count_cache;
        for k in &optimized.kernels {
            let mut st = match cm.analyze_kernel_cached(&optimized, k, count_cache) {
                Ok(st) => st,
                Err(ModelError::Presburger(_)) => {
                    // Solver budget exceeded (the paper's timeout case):
                    // fall back to a compulsory-miss estimate; the cap is
                    // reset to the maximum below.
                    fallback_kernels.push(k.name.clone());
                    fallback_stats(&optimized, k, self.platform.hierarchy.n_levels())
                }
                Err(e) => return Err(e.into()),
            };
            if self.thread_sharing && k.outer_parallel().is_some() {
                st = st.with_thread_sharing(self.platform.threads);
            }
            cache_stats.push(st);
        }
        let polyufc_cm_us = t2.elapsed().as_micros();

        // Stage 4a: roofline characterization at the reference frequency
        // (program- and platform-determined, independent of the search
        // parameters; its time is accounted to `steps_4_6_us`, which
        // `finish_characterized` completes).
        let t3 = Instant::now();
        let f_ref = self.platform.uncore_max_ghz;
        let characterizations: Vec<Characterization> = optimized
            .kernels
            .iter()
            .zip(&cache_stats)
            .map(|(k, st)| characterize_kernel(&k.name, st, &self.roofline, f_ref))
            .collect();
        let steps_4_6_us = t3.elapsed().as_micros();

        Ok(CharacterizedProgram {
            report: CompileReport {
                fallback_kernels,
                verify_warnings,
                verify_us,
                preprocess_us,
                pluto_us,
                polyufc_cm_us,
                steps_4_6_us,
                count_cache_hits: count_cache.hits() - cc0.0,
                count_cache_misses: count_cache.misses() - cc0.1,
                count_symbolic: count_cache.symbolic() - cc0.2,
                count_enumerated: count_cache.enumerated() - cc0.3,
                count_cache_evictions: count_cache.evictions() - cc0.4,
                // `analyze_in` reports the context's cumulative counters;
                // subtract the pre-compile snapshot so a session's Nth
                // request reports only its own solver traffic. (The arena
                // high-water mark is monotone and stays cumulative.)
                emptiness_batches: verify_stats.emptiness_batches.saturating_sub(batches0),
                emptiness_checks: verify_stats.emptiness_checks.saturating_sub(checks0),
                presburger_arena_bytes: verify_stats.peak_arena_bytes as u64,
                count_parallel_splits: count_cache.parallel_splits() - cc0.5,
            },
            optimized,
            cache_stats,
            characterizations,
            pluto_report,
        })
    }

    /// Stages 4–6 on a characterized program: POLYUFC-SEARCH under this
    /// pipeline's `objective`/`epsilon`, the cap-switch guard, and cap
    /// insertion. Composes with [`Pipeline::characterize_affine_in`] to
    /// exactly [`Pipeline::compile_affine_in`]; callers re-finishing a
    /// cached prefix must use a pipeline whose platform and associativity
    /// mode match the one that characterized it.
    pub fn finish_characterized(&self, ch: CharacterizedProgram) -> PipelineOutput {
        let CharacterizedProgram {
            optimized,
            cache_stats,
            characterizations,
            pluto_report,
            mut report,
        } = ch;
        let t3 = Instant::now();
        let freqs = self.platform.uncore_freqs();
        let conc = self.platform.cores as f64;
        let mut search = Vec::new();
        let mut caps_ghz = Vec::new();
        // Greedy switch-overhead guard: a new cap is only worth paying a
        // switch for if the kernel runs long enough; matching the cap
        // already in effect is free.
        let switch_s = self.platform.cap_switch_us * 1e-6;
        let mut current = self.platform.uncore_max_ghz;
        // Membership probe built once: the per-kernel `Vec::contains` scan
        // was O(kernels²) on ML graphs with hundreds of kernels.
        let fallback_set: std::collections::HashSet<&str> =
            report.fallback_kernels.iter().map(String::as_str).collect();
        for (k, st) in optimized.kernels.iter().zip(&cache_stats) {
            let pm = ParametricModel::new(&self.roofline, st, k.outer_parallel().is_some(), conc);
            let mut res = search_cap(&pm, &freqs, self.objective, self.epsilon);
            if fallback_set.contains(k.name.as_str()) {
                // Paper Sec. VII-F: kernels that overshoot the analysis
                // budget keep the maximum uncore frequency.
                res.f_ghz = self.platform.uncore_max_ghz;
            }
            let wanted = res.f_ghz;
            let est_t = pm.exec_time(wanted);
            let cap = if (wanted - current).abs() < 1e-9
                || self.cap_switch_guard <= 0.0
                || est_t >= self.cap_switch_guard * switch_s
            {
                current = wanted;
                wanted
            } else {
                current
            };
            caps_ghz.push(cap);
            search.push(res);
        }
        let plan = CapPlan::from_ghz(
            optimized
                .kernels
                .iter()
                .zip(&caps_ghz)
                .map(|(k, &f)| (k.name.clone(), f)),
        );
        let scf = remove_redundant_caps(&insert_caps(&optimized, &plan));
        report.steps_4_6_us += t3.elapsed().as_micros();

        PipelineOutput {
            optimized,
            scf,
            cache_stats,
            characterizations,
            search,
            caps_ghz,
            report,
            pluto_report,
        }
    }

    /// The static model's per-kernel expectations `T(f_c,I)` / `E(f_c,I)`
    /// at the *deployed* caps (`caps_ghz`, switch guard applied) — the
    /// reference a [`polyufc_machine::GuardedCapRuntime`] watchdog
    /// compares observed runs against. One entry per kernel, in program
    /// order, as plain data (the machine crate cannot see
    /// [`ParametricModel`]; the dependency points the other way).
    pub fn cap_predictions(&self, out: &PipelineOutput) -> Vec<polyufc_machine::CapPrediction> {
        let conc = self.platform.cores as f64;
        out.optimized
            .kernels
            .iter()
            .zip(&out.cache_stats)
            .zip(&out.caps_ghz)
            .map(|((k, st), &f)| {
                let pm =
                    ParametricModel::new(&self.roofline, st, k.outer_parallel().is_some(), conc);
                polyufc_machine::CapPrediction {
                    f_ghz: f,
                    time_s: pm.exec_time(f),
                    energy_j: pm.energy(f),
                }
            })
            .collect()
    }

    /// Compiles a tensor graph (torch entry point): lowers tensor →
    /// linalg → affine, then runs the affine pipeline.
    ///
    /// # Errors
    ///
    /// See [`Pipeline::compile_affine`].
    pub fn compile_tensor(
        &self,
        graph: &TensorGraph,
        elem: ElemType,
    ) -> Result<PipelineOutput, Error> {
        let lp = lower_tensor_to_linalg(graph, elem);
        let ap = lp.lower_to_affine();
        self.compile_affine(&ap)
    }
}

/// Conservative per-kernel statistics used when the full PolyUFC-CM
/// analysis exceeds its solver budget: trip counts from interval bounds,
/// compulsory misses assumed equal to the touched arrays' footprints.
fn fallback_stats(
    program: &AffineProgram,
    kernel: &polyufc_ir::affine::AffineKernel,
    n_levels: usize,
) -> KernelCacheStats {
    let mut points = 1.0f64;
    if let Ok(Some(iv)) = kernel.domain().basics()[0].var_intervals() {
        for bounds in iv.iter().take(kernel.depth()) {
            if let (Some(lo), Some(hi)) = bounds {
                points *= ((hi - lo + 1).max(0)) as f64;
            }
        }
    }
    let per_point_accesses: f64 = kernel
        .statements
        .iter()
        .map(|s| s.accesses.len() as f64)
        .sum();
    let per_point_flops: f64 = kernel.statements.iter().map(|s| s.flops as f64).sum();
    let mut arrays: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for s in &kernel.statements {
        for a in &s.accesses {
            arrays.insert(a.array.0);
        }
    }
    let cold_bytes: f64 = arrays
        .iter()
        .map(|&a| program.arrays[a].size_bytes() as f64)
        .sum();
    let cold_lines = (cold_bytes / 64.0).ceil();
    let total_accesses = points * per_point_accesses;
    let mut levels = Vec::with_capacity(n_levels);
    let mut prev = total_accesses;
    for _ in 0..n_levels {
        let misses = cold_lines.min(prev);
        levels.push(polyufc_cache::LevelStats {
            accesses: prev,
            hits: prev - misses,
            misses,
            fit_level: 0,
        });
        prev = misses;
    }
    KernelCacheStats {
        levels,
        cold_lines,
        q_dram_bytes: cold_lines * 64.0,
        flops: points * per_point_flops,
        total_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{Access, AffineKernel, Loop, Statement};
    use polyufc_presburger::LinExpr;

    fn matmul_program(n: usize) -> AffineProgram {
        let mut p = AffineProgram::new("gemm");
        let a = p.add_array("A", vec![n, n], ElemType::F64);
        let b = p.add_array("B", vec![n, n], ElemType::F64);
        let c = p.add_array("C", vec![n, n], ElemType::F64);
        let (vi, vj, vk) = (LinExpr::var(0), LinExpr::var(1), LinExpr::var(2));
        p.kernels.push(AffineKernel {
            name: "gemm".into(),
            loops: vec![Loop::range(n as i64); 3],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vk.clone()]),
                    Access::read(b, vec![vk, vj.clone()]),
                    Access::read(c, vec![vi.clone(), vj.clone()]),
                    Access::write(c, vec![vi, vj]),
                ],
                flops: 2,
            }],
        });
        p
    }

    fn mvt_like(n: usize) -> AffineProgram {
        let mut p = AffineProgram::new("mvt");
        let a = p.add_array("A", vec![n, n], ElemType::F64);
        let x = p.add_array("x", vec![n], ElemType::F64);
        let y = p.add_array("y", vec![n], ElemType::F64);
        let (vi, vj) = (LinExpr::var(0), LinExpr::var(1));
        p.kernels.push(AffineKernel {
            name: "mvt".into(),
            loops: vec![Loop::range(n as i64), Loop::range(n as i64)],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![vi.clone(), vj.clone()]),
                    Access::read(x, vec![vj]),
                    Access::read(y, vec![vi.clone()]),
                    Access::write(y, vec![vi]),
                ],
                flops: 2,
            }],
        });
        p
    }

    #[test]
    fn gemm_is_cb_and_capped_low() {
        let mut pipe = Pipeline::new(Platform::raptor_lake());
        pipe.cap_switch_guard = 0.0; // the kernel is small; test the search itself
        let out = pipe.compile_affine(&matmul_program(256)).unwrap();
        assert_eq!(out.characterizations.len(), 1);
        assert_eq!(
            out.characterizations[0].class,
            crate::characterize::Boundedness::ComputeBound
        );
        assert!(out.caps_ghz[0] < pipe.platform.uncore_max_ghz);
        assert_eq!(out.scf.cap_count(), 1);
        assert!(out.pluto_report.decisions[0].tiled);
    }

    #[test]
    fn mvt_is_bb_and_capped_high() {
        let pipe = Pipeline::new(Platform::broadwell());
        let out = pipe.compile_affine(&mvt_like(2048)).unwrap();
        assert_eq!(
            out.characterizations[0].class,
            crate::characterize::Boundedness::BandwidthBound
        );
        assert!(out.caps_ghz[0] >= 2.0, "BB cap {}", out.caps_ghz[0]);
    }

    #[test]
    fn report_accounts_all_stages() {
        let pipe = Pipeline::new(Platform::broadwell());
        let out = pipe.compile_affine(&matmul_program(128)).unwrap();
        let r = out.report;
        assert!(r.total_us() >= r.polyufc_cm_us);
        assert!(r.pluto_us > 0);
    }

    #[test]
    fn tensor_entry_point_compiles_sdpa() {
        use polyufc_ir::tensor::{TensorOp, TensorOpKind};
        let mut g = TensorGraph::new("bert_sdpa");
        g.push(TensorOp {
            name: "sdpa".into(),
            kind: TensorOpKind::Sdpa {
                b: 1,
                h: 4,
                s: 64,
                d: 32,
            },
            inputs: vec!["Q".into(), "K".into(), "V".into()],
            output: "O".into(),
        });
        let pipe = Pipeline::new(Platform::raptor_lake());
        let out = pipe.compile_tensor(&g, ElemType::F32).unwrap();
        assert_eq!(out.characterizations.len(), 9);
        // The generated scf has at most one cap per kernel, fewer after
        // the redundancy rewrite.
        assert!(out.scf.cap_count() <= 9);
        assert!(out.scf.kernel_count() == 9);
    }

    #[test]
    fn verify_gate_rejects_broken_input_with_diagnostics() {
        let mut p = matmul_program(32);
        // Mark the reduction loop parallel: the verifier must refuse.
        p.kernels[0].loops[2].parallel = true;
        let pipe = Pipeline::new(Platform::broadwell());
        match pipe.compile_affine(&p) {
            Err(Error::AnalysisRejected(r)) => {
                assert!(r.has_errors());
                assert!(r.diagnostics.iter().any(|d| d.pass == "race"));
            }
            other => panic!("expected AnalysisRejected, got {other:?}"),
        }
        // Same program compiles with the gate off (legacy trust mode) and
        // verifies after the flag is sanitized away.
        assert!(pipe.clone().with_verify(false).compile_affine(&p).is_ok());
        let warns = polyufc_analysis::sanitize_parallel(&mut p);
        assert_eq!(warns.len(), 1);
        let out = pipe.compile_affine(&p).unwrap();
        assert!(out.report.verify_warnings.is_empty());
    }

    #[test]
    fn verify_gate_rejects_out_of_bounds() {
        let mut p = matmul_program(32);
        p.kernels[0].statements[0].accesses[0].indices[0] = LinExpr::var(0) + LinExpr::constant(1);
        let pipe = Pipeline::new(Platform::broadwell());
        match pipe.compile_affine(&p) {
            Err(Error::AnalysisRejected(r)) => {
                assert!(r.diagnostics.iter().any(|d| d.pass == "bounds"));
            }
            other => panic!("expected AnalysisRejected, got {other:?}"),
        }
    }

    #[test]
    fn session_reuse_matches_fresh_compile_and_warms_caches() {
        let pipe = Pipeline::new(Platform::broadwell());
        let input = matmul_program(128);
        let fresh = pipe.compile_affine(&input).unwrap();

        let mut session = CompileSession::new();
        let first = pipe.compile_affine_in(&input, &mut session).unwrap();
        let second = pipe.compile_affine_in(&input, &mut session).unwrap();

        // Results are independent of session age.
        assert_eq!(fresh.caps_ghz, first.caps_ghz);
        assert_eq!(first.caps_ghz, second.caps_ghz);
        assert_eq!(format!("{}", first.scf), format!("{}", second.scf));

        // The second compile answers its counting queries from the warm
        // session cache, and its report is a per-compile delta (no
        // cumulative double counting).
        assert_eq!(
            first.report.count_cache_misses,
            fresh.report.count_cache_misses
        );
        assert!(second.report.count_cache_hits >= first.report.count_cache_misses);
        assert_eq!(second.report.count_cache_misses, 0);
        assert!(second.report.emptiness_batches <= first.report.emptiness_batches);
    }

    #[test]
    fn characterize_then_finish_matches_monolithic_compile() {
        let input = matmul_program(128);
        let mut pipe = Pipeline::new(Platform::broadwell());
        pipe.cap_switch_guard = 0.0;
        let whole = pipe.compile_affine(&input).unwrap();

        // One characterization prefix, re-finished under several search
        // parameters — each must match the monolithic pipeline exactly.
        let prefix = pipe
            .characterize_affine_in(&input, &mut CompileSession::new())
            .unwrap();
        for (objective, epsilon) in [
            (Objective::Edp, 1e-3),
            (Objective::Energy, 5e-3),
            (Objective::Performance, 1e-2),
        ] {
            let mut variant = pipe.clone().with_objective(objective);
            variant.epsilon = epsilon;
            let split = variant.finish_characterized(prefix.clone());
            let mono = variant.compile_affine(&input).unwrap();
            assert_eq!(split.caps_ghz, mono.caps_ghz);
            assert_eq!(
                split.search.iter().map(|s| s.steps).collect::<Vec<_>>(),
                mono.search.iter().map(|s| s.steps).collect::<Vec<_>>()
            );
            assert_eq!(format!("{}", split.scf), format!("{}", mono.scf));
            assert_eq!(split.report.fallback_kernels, mono.report.fallback_kernels);
        }
        // And the default-parameter composition reproduces the original.
        let recomposed = pipe.finish_characterized(prefix);
        assert_eq!(recomposed.caps_ghz, whole.caps_ghz);
        assert_eq!(format!("{}", recomposed.scf), format!("{}", whole.scf));
    }

    #[test]
    fn capped_program_beats_baseline_edp() {
        // The headline end-to-end property: PolyUFC's output must not be
        // worse than the stock-driver baseline in EDP.
        let plat = Platform::broadwell();
        let pipe = Pipeline::new(plat.clone());
        let input = matmul_program(512);
        let out = pipe.compile_affine(&input).unwrap();
        let eng = ExecutionEngine::noiseless(plat);
        let counters: Vec<_> = out
            .optimized
            .kernels
            .iter()
            .map(|k| polyufc_machine::measure_kernel(&eng.platform, &out.optimized, k))
            .collect();
        let capped = eng.run_scf(&out.scf, &counters);
        let baseline = polyufc_machine::UfsDriver::stock().run_baseline(&eng, &counters);
        assert!(
            capped.edp() <= baseline.edp() * 1.02,
            "capped {} vs baseline {}",
            capped.edp(),
            baseline.edp()
        );
    }
}
