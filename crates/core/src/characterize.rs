//! Kernel characterization against the performance and power rooflines
//! (paper Sec. IV-D): the bound-and-bottleneck label plus the gaps to the
//! hardware peaks that make the characterization "more than
//! classification" (paper footnote 18).

use polyufc_cache::KernelCacheStats;
use polyufc_roofline::RooflineModel;
use serde::{Deserialize, Serialize};

/// Compute-bound or bandwidth-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Boundedness {
    /// `I >= B^t_DRAM`: limited by compute throughput.
    ComputeBound,
    /// `I < B^t_DRAM`: limited by memory bandwidth.
    BandwidthBound,
}

impl std::fmt::Display for Boundedness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Boundedness::ComputeBound => write!(f, "CB"),
            Boundedness::BandwidthBound => write!(f, "BB"),
        }
    }
}

/// The full characterization of one kernel at a reference uncore
/// frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// Kernel name.
    pub kernel: String,
    /// Operational intensity `I` (flops/byte, Eqn. 1).
    pub oi: f64,
    /// Machine balance `B^t_DRAM` at the reference frequency.
    pub balance: f64,
    /// The label.
    pub class: Boundedness,
    /// Attainable performance at `I` (roofline ceiling), flops/s.
    pub attainable_flops: f64,
    /// Distance of `I` to the balance point, in flops/byte (positive =
    /// reuse headroom beyond CB threshold; negative = missing reuse).
    pub reuse_gap: f64,
    /// Fraction of peak compute attainable at `I` (1.0 for CB kernels).
    pub peak_fraction: f64,
}

/// Characterizes a kernel from its cache statistics at the reference
/// (maximum) uncore frequency — the paper characterizes at max uncore.
pub fn characterize_kernel(
    name: &str,
    stats: &KernelCacheStats,
    roofline: &RooflineModel,
    f_ref_ghz: f64,
) -> Characterization {
    let oi = stats.operational_intensity();
    let balance = roofline.time_balance(f_ref_ghz);
    let class = if oi >= balance {
        Boundedness::ComputeBound
    } else {
        Boundedness::BandwidthBound
    };
    let attainable = roofline.attainable(oi, f_ref_ghz);
    Characterization {
        kernel: name.to_string(),
        oi,
        balance,
        class,
        attainable_flops: attainable,
        reuse_gap: oi - balance,
        peak_fraction: attainable / roofline.peak_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_cache::LevelStats;
    use polyufc_machine::{ExecutionEngine, Platform};

    fn stats(flops: f64, q_dram: f64) -> KernelCacheStats {
        KernelCacheStats {
            levels: vec![LevelStats {
                accesses: 0.0,
                hits: 0.0,
                misses: q_dram / 64.0,
                fit_level: 0,
            }],
            cold_lines: q_dram / 64.0,
            q_dram_bytes: q_dram,
            flops,
            total_accesses: 0.0,
        }
    }

    #[test]
    fn high_oi_is_cb_low_oi_is_bb() {
        let rl = RooflineModel::calibrate(&ExecutionEngine::noiseless(Platform::raptor_lake()));
        let f = 4.6;
        let cb = characterize_kernel("k", &stats(1e12, 1e9), &rl, f); // OI = 1000
        assert_eq!(cb.class, Boundedness::ComputeBound);
        assert!((cb.peak_fraction - 1.0).abs() < 1e-9);
        let bb = characterize_kernel("k", &stats(1e9, 1e10), &rl, f); // OI = 0.1
        assert_eq!(bb.class, Boundedness::BandwidthBound);
        assert!(bb.peak_fraction < 0.2);
        assert!(bb.reuse_gap < 0.0 && cb.reuse_gap > 0.0);
    }

    #[test]
    fn boundary_is_the_balance_point() {
        let rl = RooflineModel::calibrate(&ExecutionEngine::noiseless(Platform::broadwell()));
        let f = 2.8;
        let b = rl.time_balance(f);
        let just_cb = characterize_kernel("k", &stats(b * 1e9 * 1.01, 1e9), &rl, f);
        let just_bb = characterize_kernel("k", &stats(b * 1e9 * 0.99, 1e9), &rl, f);
        assert_eq!(just_cb.class, Boundedness::ComputeBound);
        assert_eq!(just_bb.class, Boundedness::BandwidthBound);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Boundedness::ComputeBound.to_string(), "CB");
        assert_eq!(Boundedness::BandwidthBound.to_string(), "BB");
    }
}
