//! Code generation for uncore frequency caps (Sec. VII-A): insertion of
//! `set_uncore_cap` runtime calls before each top-level op, and the
//! pattern-rewrite pass that removes redundant caps.

use polyufc_ir::affine::AffineProgram;
use polyufc_ir::scf::{ScfOp, ScfProgram};
use serde::{Deserialize, Serialize};

/// The cap plan: one frequency per kernel (MHz, matching the runtime
/// call's argument).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapPlan {
    /// `(kernel name, cap in MHz)` in program order.
    pub caps_mhz: Vec<(String, u32)>,
}

impl CapPlan {
    /// Builds a plan from GHz values.
    pub fn from_ghz(caps: impl IntoIterator<Item = (String, f64)>) -> Self {
        CapPlan {
            caps_mhz: caps
                .into_iter()
                .map(|(n, f)| (n, (f * 1000.0).round() as u32))
                .collect(),
        }
    }
}

/// Lowers an affine program to scf with one `set_uncore_cap` call before
/// each kernel, per the plan.
///
/// # Panics
///
/// Panics if the plan's length differs from the kernel count.
pub fn insert_caps(program: &AffineProgram, plan: &CapPlan) -> ScfProgram {
    assert_eq!(
        program.kernels.len(),
        plan.caps_mhz.len(),
        "plan must cover every kernel"
    );
    let mut ops = Vec::with_capacity(program.kernels.len() * 2);
    for (k, (name, mhz)) in program.kernels.iter().zip(&plan.caps_mhz) {
        debug_assert_eq!(&k.name, name, "plan order must match program order");
        ops.push(ScfOp::SetUncoreCap { mhz: *mhz });
        ops.push(ScfOp::Kernel(k.clone()));
    }
    ScfProgram {
        name: program.name.clone(),
        arrays: program.arrays.clone(),
        ops,
    }
}

/// The redundant-cap rewrite: drops a cap call when the requested
/// frequency is already in effect, and collapses back-to-back cap calls
/// (only the last takes effect before the next kernel).
pub fn remove_redundant_caps(scf: &ScfProgram) -> ScfProgram {
    let mut out = Vec::with_capacity(scf.ops.len());
    let mut current: Option<u32> = None;
    let mut pending: Option<u32> = None;
    for op in &scf.ops {
        match op {
            ScfOp::SetUncoreCap { mhz } => {
                pending = Some(*mhz);
            }
            ScfOp::Kernel(k) => {
                if let Some(mhz) = pending.take() {
                    if current != Some(mhz) {
                        out.push(ScfOp::SetUncoreCap { mhz });
                        current = Some(mhz);
                    }
                }
                out.push(ScfOp::Kernel(k.clone()));
            }
        }
    }
    // A trailing cap with no kernel after it is dead; drop it.
    ScfProgram {
        name: scf.name.clone(),
        arrays: scf.arrays.clone(),
        ops: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_ir::affine::{AffineKernel, Loop};

    fn kernel(name: &str) -> AffineKernel {
        AffineKernel {
            name: name.into(),
            loops: vec![Loop::range(4)],
            statements: vec![],
        }
    }

    fn program(names: &[&str]) -> AffineProgram {
        let mut p = AffineProgram::new("p");
        for n in names {
            p.kernels.push(kernel(n));
        }
        p
    }

    #[test]
    fn caps_inserted_per_kernel() {
        let p = program(&["a", "b"]);
        let plan = CapPlan::from_ghz(vec![("a".into(), 1.2), ("b".into(), 2.8)]);
        let scf = insert_caps(&p, &plan);
        assert_eq!(scf.cap_count(), 2);
        assert_eq!(scf.kernel_count(), 2);
        let kc = scf.kernels_with_caps();
        assert_eq!(kc[0].0, Some(1200));
        assert_eq!(kc[1].0, Some(2800));
    }

    #[test]
    fn redundant_caps_removed() {
        let p = program(&["a", "b", "c"]);
        let plan = CapPlan::from_ghz(vec![
            ("a".into(), 1.2),
            ("b".into(), 1.2),
            ("c".into(), 2.8),
        ]);
        let scf = remove_redundant_caps(&insert_caps(&p, &plan));
        assert_eq!(scf.cap_count(), 2, "b's cap equals a's and must be dropped");
        let kc = scf.kernels_with_caps();
        assert_eq!(kc[0].0, Some(1200));
        assert_eq!(kc[1].0, Some(1200));
        assert_eq!(kc[2].0, Some(2800));
    }

    #[test]
    fn back_to_back_caps_collapse() {
        let mut scf = ScfProgram {
            name: "x".into(),
            arrays: vec![],
            ops: vec![
                ScfOp::SetUncoreCap { mhz: 1200 },
                ScfOp::SetUncoreCap { mhz: 2000 },
                ScfOp::Kernel(kernel("a")),
                ScfOp::SetUncoreCap { mhz: 2000 },
                ScfOp::Kernel(kernel("b")),
                ScfOp::SetUncoreCap { mhz: 900 },
            ],
        };
        scf = remove_redundant_caps(&scf);
        assert_eq!(scf.cap_count(), 1);
        let kc = scf.kernels_with_caps();
        assert_eq!(kc[0].0, Some(2000));
        assert_eq!(kc[1].0, Some(2000));
    }

    #[test]
    fn semantics_preserved_under_rewrite() {
        let p = program(&["a", "b", "c", "d"]);
        let plan = CapPlan::from_ghz(vec![
            ("a".into(), 2.0),
            ("b".into(), 2.0),
            ("c".into(), 1.4),
            ("d".into(), 1.4),
        ]);
        let before = insert_caps(&p, &plan);
        let after = remove_redundant_caps(&before);
        let eff_before: Vec<Option<u32>> =
            before.kernels_with_caps().iter().map(|(c, _)| *c).collect();
        let eff_after: Vec<Option<u32>> =
            after.kernels_with_caps().iter().map(|(c, _)| *c).collect();
        assert_eq!(eff_before, eff_after);
        assert!(after.cap_count() < before.cap_count());
    }
}
