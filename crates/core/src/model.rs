//! The parametric performance / bandwidth / power / energy model of
//! Sec. V: every estimate is a function of the uncore frequency cap `f_c`
//! and the (statically computed) operational intensity `I`.
//!
//! Equation map (paper → code):
//!
//! * Eqn. 2 `T = T^Ω + T^Q` → [`ParametricModel::exec_time_additive`]
//!   (paper-literal); [`ParametricModel::exec_time`] is the bounded-overlap
//!   default (see DESIGN.md).
//! * Eqn. 3 `T^Ω = Ω·t_FPU` → compute term (single-thread peak when the
//!   kernel is not parallelized).
//! * Eqn. 4 `T^Q` → per-level hit traffic at the fitted hit latencies
//!   plus `Q_DRAM · M^t(f_c)`, overlapped by the measured memory
//!   concurrency; the bandwidth roof `Q_DRAM / BW(f_c)` bounds it below.
//! * Eqns. 5/6 `Perf`, `BW` → [`ParametricModel::performance`],
//!   [`ParametricModel::bandwidth`].
//! * Eqn. 8 `P̂(f_s, I)` → [`ParametricModel::peak_power`].
//! * Eqn. 10 `P(f_c, I)` → [`ParametricModel::avg_power`] (the CB branch
//!   derates memory power by `B/I`, the BB branch derates FPU power by
//!   `I/B`).
//! * Eqn. 11 `E = Ω·e_FPU + T^Q·P` → [`ParametricModel::energy`]; EDP is
//!   [`ParametricModel::edp`].

use polyufc_cache::KernelCacheStats;
use polyufc_roofline::RooflineModel;

use crate::characterize::Boundedness;

/// The per-kernel parametric model: roofline constants + PolyUFC-CM
/// statistics, with `f_c` as the free parameter.
#[derive(Debug, Clone)]
pub struct ParametricModel<'a> {
    /// Calibrated roofline constants.
    pub roofline: &'a RooflineModel,
    /// Static cache statistics of the kernel.
    pub stats: &'a KernelCacheStats,
    /// Whether the kernel runs on all cores (Pluto-parallel outer loop).
    pub parallel: bool,
    /// Cross-core memory concurrency (the number of cores). Per-core
    /// memory-level parallelism is already baked into the calibrated
    /// `M^t(f)` / `H_LLC(f)` fits, which are measured through the machine
    /// like any microbenchmark.
    pub concurrency: f64,
}

impl<'a> ParametricModel<'a> {
    /// Builds a model for one kernel.
    pub fn new(
        roofline: &'a RooflineModel,
        stats: &'a KernelCacheStats,
        parallel: bool,
        concurrency: f64,
    ) -> Self {
        ParametricModel {
            roofline,
            stats,
            parallel,
            concurrency: concurrency.max(1.0),
        }
    }

    /// Operational intensity `I`.
    pub fn oi(&self) -> f64 {
        self.stats.operational_intensity()
    }

    /// Compute time `T^Ω = Ω · t_FPU` (Eqn. 3).
    pub fn compute_time(&self) -> f64 {
        let peak = if self.parallel {
            self.roofline.peak_flops
        } else {
            self.roofline.peak_flops_1t
        };
        self.stats.flops / peak
    }

    /// Memory time `T^Q(f_c)` (Eqn. 4): level-wise hit service plus the
    /// DRAM miss penalty, overlapped by the memory concurrency, bounded
    /// below by the bandwidth roof.
    pub fn memory_time(&self, f_c: f64) -> f64 {
        let n = self.stats.levels.len();
        let llc_hits = if n >= 1 {
            self.stats.levels[n - 1].hits
        } else {
            0.0
        };
        let dram_misses = self.stats.levels.last().map(|l| l.misses).unwrap_or(0.0);
        let serial = llc_hits * self.roofline.llc_hit_latency(f_c)
            + dram_misses * self.roofline.miss_penalty_t(f_c);
        let conc = if self.parallel { self.concurrency } else { 1.0 };
        let t_lat = serial / conc;
        let t_bw = self.stats.q_dram_bytes / self.roofline.bandwidth(f_c);
        t_lat.max(t_bw)
    }

    /// Total execution time `T(f_c, I)`: bounded-overlap combination of
    /// the compute and memory phases. Out-of-order cores overlap the two
    /// almost fully, so the default is `max(T^Ω, T^Q)` plus a small
    /// non-overlapped residue; the paper's literal additive Eqn. 2 is
    /// available as [`ParametricModel::exec_time_additive`] and compared
    /// in the ablation benches.
    pub fn exec_time(&self, f_c: f64) -> f64 {
        let tc = self.compute_time();
        let tm = self.memory_time(f_c);
        tc.max(tm) + 0.04 * tc.min(tm)
    }

    /// The paper's additive Eqn. 2: `T = T^Ω + T^Q` (ablation variant;
    /// overestimates CB kernels' sensitivity to the uncore frequency).
    pub fn exec_time_additive(&self, f_c: f64) -> f64 {
        self.compute_time() + self.memory_time(f_c)
    }

    /// Performance `Perf(f_c, I) = Ω / T` (Eqn. 5), flops/s.
    pub fn performance(&self, f_c: f64) -> f64 {
        self.stats.flops / self.exec_time(f_c).max(1e-15)
    }

    /// Achieved bandwidth `BW(f_c, I) = Q_DRAM / T` (Eqn. 6), bytes/s.
    pub fn bandwidth(&self, f_c: f64) -> f64 {
        self.stats.q_dram_bytes / self.exec_time(f_c).max(1e-15)
    }

    /// The kernel's class at frequency `f`.
    pub fn class_at(&self, f: f64) -> Boundedness {
        if self.oi() >= self.roofline.time_balance(f) {
            Boundedness::ComputeBound
        } else {
            Boundedness::BandwidthBound
        }
    }

    /// Peak (ceiling) power `P̂(f_s, I)` (Eqn. 8), watts.
    pub fn peak_power(&self, f_s: f64) -> f64 {
        let b = self.roofline.time_balance(f_s);
        let i = self.oi().max(1e-9);
        let pd = self.roofline.p_dram_hat(f_s);
        let pf = self.roofline.p_hat_fpu;
        let dynamic = match self.class_at(f_s) {
            Boundedness::ComputeBound => pd * (b / i) + pf,
            Boundedness::BandwidthBound => pd + pf * (i / b),
        };
        self.roofline.p_con + dynamic
    }

    /// Average power `P(f_c, I)` (Eqn. 10), watts.
    ///
    /// Structure: constant power, the uncore's frequency-dependent idle
    /// power (over-provisioning cost — what CB capping saves), the
    /// *active* memory power `BW_max(f)·M^p(f) − P_idle(f)` derated by
    /// `B/I` for CB kernels, and the FPU power derated by `I/B` for BB
    /// kernels — the Eqn. 10 case split.
    pub fn avg_power(&self, f_c: f64) -> f64 {
        let b = self.roofline.time_balance(f_c);
        let i = self.oi().max(1e-9);
        let p_idle = self.roofline.uncore_idle(f_c);
        // Full-rate memory power: the measured streaming-power fit
        // P̂_DRAM(f) = α·f + γ (equivalent to the paper's Q·M^p(f) term at
        // full bandwidth, but monotone in f even past the bandwidth knee,
        // where the per-byte fit M^p(f) inverts its slope).
        let p_mem_active = (self.roofline.p_dram_hat(f_c) - p_idle).max(0.0);
        let pf = self.roofline.p_hat_fpu * if self.parallel { 1.0 } else { 0.25 };
        let dynamic = match self.class_at(f_c) {
            Boundedness::ComputeBound => p_mem_active * (b / i).min(1.0) + pf,
            Boundedness::BandwidthBound => p_mem_active + pf * (i / b).min(1.0),
        };
        self.roofline.p_con + p_idle + dynamic
    }

    /// Total energy `E(f_c, I)` (Eqn. 11): the flop energy `Ω·e_FPU`
    /// plus the non-FPU power integrated over the whole run. Because
    /// `Ω·e_FPU` equals the FPU power over the compute phase, this
    /// degenerates to `P·T` for fully compute-bound kernels and to the
    /// paper's `Ω·e_FPU + T^Q·P` shape when phases do not overlap.
    pub fn energy(&self, f_c: f64) -> f64 {
        let t = self.exec_time(f_c);
        let p = self.avg_power(f_c);
        // The FPU share already inside avg_power.
        let pf = self.roofline.p_hat_fpu * if self.parallel { 1.0 } else { 0.25 };
        let fpu_share = match self.class_at(f_c) {
            Boundedness::ComputeBound => pf,
            Boundedness::BandwidthBound => {
                pf * (self.oi() / self.roofline.time_balance(f_c)).min(1.0)
            }
        };
        let flop_energy = self.stats.flops * self.roofline.e_fpu;
        flop_energy + (p - fpu_share).max(0.0) * t
    }

    /// Energy-delay product `EDP(f_c) = E · T`.
    pub fn edp(&self, f_c: f64) -> f64 {
        self.energy(f_c) * self.exec_time(f_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyufc_cache::LevelStats;
    use polyufc_machine::{ExecutionEngine, Platform};

    fn stats(flops: f64, q_dram: f64, llc_hits: f64) -> KernelCacheStats {
        KernelCacheStats {
            levels: vec![
                LevelStats {
                    accesses: 0.0,
                    hits: 0.0,
                    misses: q_dram / 64.0,
                    fit_level: 0,
                },
                LevelStats {
                    accesses: 0.0,
                    hits: llc_hits,
                    misses: q_dram / 64.0,
                    fit_level: 0,
                },
            ],
            cold_lines: q_dram / 64.0,
            q_dram_bytes: q_dram,
            flops,
            total_accesses: 0.0,
        }
    }

    fn rl(p: Platform) -> RooflineModel {
        RooflineModel::calibrate(&ExecutionEngine::noiseless(p))
    }

    #[test]
    fn cb_time_flat_in_f() {
        let r = rl(Platform::broadwell());
        let st = stats(1e11, 1e8, 0.0); // OI = 1000: deep CB
        let m = ParametricModel::new(&r, &st, true, 96.0);
        let t_lo = m.exec_time(1.2);
        let t_hi = m.exec_time(2.8);
        assert!(
            (t_lo - t_hi).abs() / t_hi < 0.1,
            "CB time nearly flat: {t_lo} vs {t_hi}"
        );
    }

    #[test]
    fn bb_time_falls_with_f() {
        let r = rl(Platform::broadwell());
        let st = stats(1e9, 3.2e10, 0.0); // OI ≈ 0.03: deep BB
        let m = ParametricModel::new(&r, &st, true, 96.0);
        assert!(m.exec_time(2.8) < m.exec_time(1.2) * 0.6);
        // Bandwidth estimate approaches the measured roof.
        let bw = m.bandwidth(2.8);
        assert!(bw <= r.bandwidth(2.8) * 1.01);
        assert!(bw >= r.bandwidth(2.8) * 0.5);
    }

    #[test]
    fn power_rises_with_f_for_bb() {
        let r = rl(Platform::broadwell());
        let st = stats(1e9, 3.2e10, 0.0);
        let m = ParametricModel::new(&r, &st, true, 96.0);
        assert!(m.avg_power(2.8) > m.avg_power(1.2));
        assert!(m.peak_power(2.8) > m.peak_power(1.2));
    }

    #[test]
    fn cb_energy_rises_with_f() {
        // For CB kernels time is flat but uncore power rises: energy up.
        let r = rl(Platform::broadwell());
        let st = stats(1e11, 1e8, 1e6);
        let m = ParametricModel::new(&r, &st, true, 96.0);
        assert!(
            m.energy(2.8) > m.energy(1.2),
            "CB energy: {} @2.8 vs {} @1.2",
            m.energy(2.8),
            m.energy(1.2)
        );
    }

    #[test]
    fn bb_edp_minimum_interior_or_high() {
        let r = rl(Platform::broadwell());
        let st = stats(1e9, 3.2e10, 0.0);
        let m = ParametricModel::new(&r, &st, true, 96.0);
        let freqs: Vec<f64> = (12..=28).map(|x| x as f64 / 10.0).collect();
        let best = freqs
            .iter()
            .copied()
            .min_by(|a, b| m.edp(*a).partial_cmp(&m.edp(*b)).unwrap())
            .unwrap();
        assert!(
            best >= 1.8,
            "BB EDP optimum should be at higher f, got {best}"
        );
    }

    #[test]
    fn model_tracks_machine_for_bb_kernel() {
        // Build a real streaming kernel, measure it on the machine, and
        // compare the model's absolute time at several frequencies.
        use polyufc_ir::affine::{Access, AffineKernel, AffineProgram, Loop, Statement};
        use polyufc_ir::types::ElemType;
        use polyufc_presburger::LinExpr;
        let mut p = AffineProgram::new("stream");
        let n = 4_000_000usize;
        let a = p.add_array("A", vec![n], ElemType::F64);
        let b = p.add_array("B", vec![n], ElemType::F64);
        let mut l = Loop::range(n as i64);
        l.parallel = true;
        let k = AffineKernel {
            name: "stream".into(),
            loops: vec![l],
            statements: vec![Statement {
                name: "S".into(),
                accesses: vec![
                    Access::read(a, vec![LinExpr::var(0)]),
                    Access::write(b, vec![LinExpr::var(0)]),
                ],
                flops: 1,
            }],
        };
        p.kernels.push(k.clone());
        let plat = Platform::broadwell();
        let eng = ExecutionEngine::noiseless(plat.clone());
        let r = RooflineModel::calibrate(&eng);
        let cm = polyufc_cache::CacheModel::new(
            plat.hierarchy.clone(),
            polyufc_cache::AssocMode::SetAssociative,
        );
        let st = cm.analyze_kernel(&p, &k).unwrap();
        let m = ParametricModel::new(&r, &st, true, plat.cores as f64);
        let counters = polyufc_machine::measure_kernel(&plat, &p, &k);
        for f in [1.2, 2.0, 2.8] {
            let hw = eng.run_kernel(&counters, f);
            let est = m.exec_time(f);
            let ratio = est / hw.time_s;
            assert!(
                (0.4..2.5).contains(&ratio),
                "time est {est} vs hw {} at f={f} (ratio {ratio})",
                hw.time_s
            );
        }
    }
}
