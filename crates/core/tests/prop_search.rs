//! Property tests of POLYUFC-SEARCH over random kernel signatures: the
//! binary search must stay inside the grid, never beat physics, and track
//! the exhaustive scan.

use proptest::prelude::*;

use polyufc::search::scan_cap;
use polyufc::{search_cap, Objective, ParametricModel};
use polyufc_cache::{KernelCacheStats, LevelStats};
use polyufc_machine::{ExecutionEngine, Platform};
use polyufc_roofline::RooflineModel;

fn stats(flops: f64, q_dram: f64, llc_hits: f64) -> KernelCacheStats {
    KernelCacheStats {
        levels: vec![
            LevelStats {
                accesses: 0.0,
                hits: 0.0,
                misses: q_dram / 64.0,
                fit_level: 0,
            },
            LevelStats {
                accesses: 0.0,
                hits: llc_hits,
                misses: q_dram / 64.0,
                fit_level: 0,
            },
        ],
        cold_lines: q_dram / 64.0,
        q_dram_bytes: q_dram,
        flops,
        total_accesses: 0.0,
    }
}

fn roofline() -> &'static RooflineModel {
    use std::sync::OnceLock;
    static RL: OnceLock<RooflineModel> = OnceLock::new();
    RL.get_or_init(|| RooflineModel::calibrate(&ExecutionEngine::noiseless(Platform::broadwell())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_result_valid_and_near_scan(
        flops_exp in 6.0f64..12.0,
        q_exp in 5.0f64..10.5,
        llc_exp in 0.0f64..7.0,
        parallel in any::<bool>(),
        obj_ix in 0usize..3,
    ) {
        let plat = Platform::broadwell();
        let rl = roofline();
        let st = stats(10f64.powf(flops_exp), 10f64.powf(q_exp), 10f64.powf(llc_exp));
        let pm = ParametricModel::new(rl, &st, parallel, plat.cores as f64);
        let obj = [Objective::Performance, Objective::Energy, Objective::Edp][obj_ix];
        let freqs = plat.uncore_freqs();
        let fast = search_cap(&pm, &freqs, obj, 1e-3);
        let slow = scan_cap(&pm, &freqs, obj, 1e-3);

        // In range and on the grid.
        prop_assert!(freqs.iter().any(|&f| (f - fast.f_ghz).abs() < 1e-9));
        // Binary search near-matches the exhaustive scan on its objective.
        let val = |f: f64| match obj {
            Objective::Performance => -pm.performance(f),
            Objective::Energy => pm.energy(f),
            Objective::Edp => pm.edp(f),
        };
        let (a, b) = (val(fast.f_ghz), val(slow.f_ghz));
        prop_assert!(a <= b.abs() * 0.05 + b, "binary {a} vs scan {b} (obj {obj:?})");
        // Fewer evaluations than the scan.
        prop_assert!(fast.steps <= slow.steps);
        // Logged steps are all real grid frequencies.
        for s in &fast.log {
            prop_assert!(freqs.iter().any(|&f| (f - s.f_ghz).abs() < 1e-9));
        }
    }

    #[test]
    fn deep_cb_caps_at_or_below_deep_bb(
        scale in 1.0f64..100.0,
    ) {
        let plat = Platform::broadwell();
        let rl = roofline();
        let conc = plat.cores as f64;
        let cb = stats(1e12 * scale, 1e8, 0.0);
        let bb = stats(1e8, 1e10 * scale, 0.0);
        let freqs = plat.uncore_freqs();
        let f_cb = search_cap(&ParametricModel::new(rl, &cb, true, conc), &freqs, Objective::Edp, 1e-3).f_ghz;
        let f_bb = search_cap(&ParametricModel::new(rl, &bb, true, conc), &freqs, Objective::Edp, 1e-3).f_ghz;
        prop_assert!(f_cb <= f_bb + 1e-9, "CB cap {f_cb} should not exceed BB cap {f_bb}");
    }

    #[test]
    fn model_quantities_positive_and_finite(
        flops_exp in 5.0f64..12.0,
        q_exp in 4.0f64..10.0,
    ) {
        let plat = Platform::broadwell();
        let rl = roofline();
        let st = stats(10f64.powf(flops_exp), 10f64.powf(q_exp), 1e4);
        let pm = ParametricModel::new(rl, &st, true, plat.cores as f64);
        for &f in &plat.uncore_freqs() {
            for v in [pm.exec_time(f), pm.energy(f), pm.edp(f), pm.avg_power(f), pm.peak_power(f)] {
                prop_assert!(v.is_finite() && v > 0.0, "non-physical value {v} at f={f}");
            }
            prop_assert!(pm.performance(f) > 0.0);
        }
    }
}
